//! Rule-based structural description of topologies (§3.2.2).
//!
//! The paper's NetlistTuple generator "produces the corresponding
//! structural description of the netlist based on a rule-based connection
//! type and position matching". This module implements that matcher: each
//! placed connection is rendered as an English sentence that names the
//! connection type's engineering role and the position it occupies, and
//! the skeleton is summarized with its stage parameters. The resulting
//! text is what aligns netlist structure with the opamp vocabulary of the
//! pre-training corpus.

use crate::connection::ConnectionType;
use crate::position::Position;
use crate::topology::{Placement, Topology};
use crate::value::format_si;

/// Renders the full natural-language description of a topology.
///
/// # Example
///
/// ```
/// use artisan_circuit::{Topology, describe};
///
/// let text = describe::describe_topology(&Topology::nmc_example());
/// assert!(text.contains("three-stage"));
/// assert!(text.contains("nested Miller"));
/// ```
pub fn describe_topology(topo: &Topology) -> String {
    let mut parts: Vec<String> = Vec::new();
    parts.push(describe_skeleton(topo));

    // Recognize the canonical compensation schemes first: they give the
    // description its headline architecture name.
    if let Some(arch) = recognize_architecture(topo) {
        parts.push(arch);
    }

    for p in topo.placements() {
        if p.connection == ConnectionType::Open {
            continue;
        }
        parts.push(describe_placement(p));
    }

    parts.push(format!(
        "The output drives a load of {}Ohm in parallel with {}F.",
        format_si(topo.skeleton.rl.value()),
        format_si(topo.skeleton.cl.value()),
    ));
    parts.join(" ")
}

/// Describes the three-stage core.
pub fn describe_skeleton(topo: &Topology) -> String {
    let s = &topo.skeleton;
    format!(
        "This is a three-stage operational amplifier. \
         The first stage is an inverting transconductance stage with gm1 = {}S, \
         output resistance {}Ohm and parasitic capacitance {}F; \
         the second stage is non-inverting with gm2 = {}S; \
         the third stage is an inverting output stage with gm3 = {}S.",
        format_si(s.stage1.gm.value()),
        format_si(s.stage1.ro.value()),
        format_si(s.stage1.cp.value()),
        format_si(s.stage2.gm.value()),
        format_si(s.stage3.gm.value()),
    )
}

/// Names the overall compensation architecture when the placement pattern
/// matches a canonical scheme (NMC, DFC-NMC, single Miller, feedforward).
pub fn recognize_architecture(topo: &Topology) -> Option<String> {
    use ConnectionType as Ct;
    let outer = topo.connection_at(Position::N1ToOut);
    let inner = topo.connection_at(Position::N2ToOut);
    let shunt1 = topo.connection_at(Position::ShuntN1);
    let ff_out = topo.connection_at(Position::InToOut);

    let outer_miller = matches!(outer, Ct::MillerCapacitor | Ct::SeriesRc);
    let inner_miller = matches!(inner, Ct::MillerCapacitor | Ct::SeriesRc);
    let has_dfc = matches!(shunt1, Ct::Dfc | Ct::DfcWithR)
        || matches!(
            topo.connection_at(Position::ShuntN2),
            Ct::Dfc | Ct::DfcWithR
        );

    if outer_miller && inner_miller {
        Some(
            "It uses the nested Miller compensation (NMC) architecture: two nested \
             Miller capacitors, Cm1 and Cm2, control the dominant and non-dominant \
             poles, respectively."
                .to_string(),
        )
    } else if outer_miller && has_dfc {
        Some(
            "It uses the damping-factor-control (DFC) compensation architecture: a \
             gain stage with a local feedback capacitor damps the non-dominant \
             complex pole pair, enabling large capacitive loads."
                .to_string(),
        )
    } else if outer_miller && matches!(ff_out, Ct::PosGm | Ct::PosGmParallelC) {
        Some(
            "It combines Miller compensation with a feedforward transconductance \
             path from the input to the output, creating a left-half-plane zero."
                .to_string(),
        )
    } else if outer_miller {
        Some("It uses simple (single) Miller compensation around the last two stages.".to_string())
    } else {
        None
    }
}

/// Renders one placed connection as a sentence.
pub fn describe_placement(p: &Placement) -> String {
    let role = connection_role(p.connection);
    let values = describe_values(p);
    format!(
        "A {role} is placed on the {}{}.",
        p.position.engineering_name(),
        values
    )
}

fn describe_values(p: &Placement) -> String {
    let mut vals: Vec<String> = Vec::new();
    if p.connection.needs_r() {
        if let Some(r) = p.params.r {
            vals.push(format!("R = {}Ohm", format_si(r.value())));
        }
    }
    if p.connection.needs_c() {
        if let Some(c) = p.params.c {
            vals.push(format!("C = {}F", format_si(c.value())));
        }
    }
    if p.connection.needs_gm() {
        if let Some(gm) = p.params.gm {
            vals.push(format!("gm = {}S", format_si(gm.value())));
        }
    }
    if vals.is_empty() {
        String::new()
    } else {
        format!(" ({})", vals.join(", "))
    }
}

/// The engineering role sentence fragment for each of the 25 connection
/// types — the heart of the rule-based annotator.
pub fn connection_role(conn: ConnectionType) -> &'static str {
    use ConnectionType as Ct;
    match conn {
        Ct::Open => "direct open circuit",
        Ct::Resistor => "resistor",
        Ct::MillerCapacitor => "Miller compensation capacitor",
        Ct::SeriesRc => "Miller capacitor with a series nulling resistor",
        Ct::ParallelRc => "parallel RC network",
        Ct::PosGm => "non-inverting feedforward transconductance stage",
        Ct::NegGm => "inverting transconductance stage",
        Ct::PosGmSeriesR => {
            "non-inverting transconductance stage coupled through a series resistor"
        }
        Ct::NegGmSeriesR => "inverting transconductance stage coupled through a series resistor",
        Ct::PosGmSeriesC => {
            "non-inverting transconductance stage coupled through a series capacitor"
        }
        Ct::NegGmSeriesC => "inverting transconductance stage coupled through a series capacitor",
        Ct::PosGmParallelC => {
            "non-inverting transconductance stage with a parallel bypass capacitor"
        }
        Ct::NegGmParallelC => "inverting transconductance stage with a parallel bypass capacitor",
        Ct::PosGmParallelRc => "non-inverting transconductance stage with a parallel RC network",
        Ct::NegGmParallelRc => "inverting transconductance stage with a parallel RC network",
        Ct::BufferedC => "voltage-buffered Miller capacitor",
        Ct::CurrentBufferedC => "current-buffered Miller capacitor",
        Ct::BufferedSeriesRc => "voltage-buffered series RC compensation network",
        Ct::CurrentBufferedSeriesRc => "current-buffered series RC compensation network",
        Ct::Dfc => "damping-factor-control block (gain stage with a feedback capacitor)",
        Ct::DfcWithR => "damping-factor-control block with a nulling resistor in its feedback path",
        Ct::PosGmCascode => "cascoded non-inverting transconductance stage",
        Ct::NegGmCascode => "cascoded inverting transconductance stage",
        Ct::RcTNetwork => "RC T-network with a grounded capacitor tap",
        Ct::CrossGmPair => "cross-coupled transconductance pair",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::ConnectionParams;
    use crate::Topology;

    #[test]
    fn nmc_is_recognized() {
        let text = describe_topology(&Topology::nmc_example());
        assert!(text.contains("nested Miller compensation"), "{text}");
        assert!(text.contains("Cm1"));
        assert!(text.contains("10pF"));
    }

    #[test]
    fn dfc_is_recognized() {
        let text = describe_topology(&Topology::dfc_example());
        assert!(text.contains("damping-factor-control"), "{text}");
        assert!(text.contains("1nF"), "{text}");
    }

    #[test]
    fn bare_skeleton_has_no_architecture_sentence() {
        assert!(recognize_architecture(&Topology::default()).is_none());
    }

    #[test]
    fn single_miller_recognized() {
        let mut t = Topology::default();
        t.place(Placement::new(
            Position::N1ToOut,
            ConnectionType::MillerCapacitor,
            ConnectionParams::c(2e-12),
        ))
        .unwrap();
        let arch = recognize_architecture(&t).unwrap();
        assert!(arch.contains("simple"), "{arch}");
    }

    #[test]
    fn feedforward_architecture_recognized() {
        let mut t = Topology::default();
        t.place(Placement::new(
            Position::N1ToOut,
            ConnectionType::MillerCapacitor,
            ConnectionParams::c(2e-12),
        ))
        .unwrap();
        t.place(Placement::new(
            Position::InToOut,
            ConnectionType::PosGm,
            ConnectionParams::gm(80e-6),
        ))
        .unwrap();
        let arch = recognize_architecture(&t).unwrap();
        assert!(arch.contains("feedforward"), "{arch}");
    }

    #[test]
    fn every_type_has_a_role() {
        for t in ConnectionType::ALL {
            assert!(!connection_role(t).is_empty());
        }
        // Roles are distinct enough to disambiguate the structure.
        let roles: std::collections::BTreeSet<&str> = ConnectionType::ALL
            .iter()
            .map(|&t| connection_role(t))
            .collect();
        assert_eq!(roles.len(), 25);
    }

    #[test]
    fn placement_description_includes_values() {
        let p = Placement::new(
            Position::N2ToOut,
            ConnectionType::SeriesRc,
            ConnectionParams::rc(2e3, 3e-12),
        );
        let s = describe_placement(&p);
        assert!(s.contains("2kOhm"), "{s}");
        assert!(s.contains("3pF"), "{s}");
        assert!(s.contains("inner compensation"), "{s}");
    }

    #[test]
    fn skeleton_description_names_all_three_stages() {
        let s = describe_skeleton(&Topology::nmc_example());
        assert!(s.contains("gm1"));
        assert!(s.contains("gm2"));
        assert!(s.contains("gm3"));
    }
}
