use std::fmt;

/// A circuit node.
///
/// The five initial nodes of the paper's Fig. 1(a) skeleton get dedicated
/// variants; connection types that elaborate into multi-element networks
/// (series RC, buffered Miller paths, the DFC block) allocate [`Node::Internal`]
/// nodes through a [`NodeAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Node {
    /// The AC ground / reference node (SPICE node `0`).
    Ground,
    /// The differential input node `in`.
    Input,
    /// Output of the first stage.
    N1,
    /// Output of the second stage.
    N2,
    /// The opamp output node `out`.
    Output,
    /// An internal node created while elaborating a compound connection.
    Internal(u32),
}

impl Node {
    /// The canonical netlist name of the node (`0`, `in`, `n1`, `n2`,
    /// `out`, `x<k>`).
    pub fn name(self) -> String {
        match self {
            Node::Ground => "0".to_string(),
            Node::Input => "in".to_string(),
            Node::N1 => "n1".to_string(),
            Node::N2 => "n2".to_string(),
            Node::Output => "out".to_string(),
            Node::Internal(k) => format!("x{k}"),
        }
    }

    /// Parses a canonical node name back into a [`Node`]. Returns `None`
    /// for unknown names.
    pub fn parse(name: &str) -> Option<Node> {
        match name {
            "0" | "gnd" => Some(Node::Ground),
            "in" => Some(Node::Input),
            "n1" => Some(Node::N1),
            "n2" => Some(Node::N2),
            "out" => Some(Node::Output),
            other => other
                .strip_prefix('x')
                .and_then(|k| k.parse::<u32>().ok())
                .map(Node::Internal),
        }
    }

    /// Human-readable role of the node, used by the description generator.
    pub fn role(self) -> &'static str {
        match self {
            Node::Ground => "the AC ground",
            Node::Input => "the differential input",
            Node::N1 => "the first-stage output",
            Node::N2 => "the second-stage output",
            Node::Output => "the opamp output",
            Node::Internal(_) => "an internal node",
        }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Allocates fresh internal nodes during topology elaboration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeAllocator {
    next: u32,
}

impl NodeAllocator {
    /// Creates an allocator starting at `x0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh internal node.
    pub fn fresh(&mut self) -> Node {
        let n = Node::Internal(self.next);
        self.next += 1;
        n
    }

    /// Number of internal nodes handed out so far.
    pub fn count(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for node in [
            Node::Ground,
            Node::Input,
            Node::N1,
            Node::N2,
            Node::Output,
            Node::Internal(7),
        ] {
            assert_eq!(Node::parse(&node.name()), Some(node));
        }
        assert_eq!(Node::parse("gnd"), Some(Node::Ground));
        assert_eq!(Node::parse("bogus"), None);
        assert_eq!(Node::parse("xq"), None);
    }

    #[test]
    fn allocator_hands_out_distinct_nodes() {
        let mut alloc = NodeAllocator::new();
        let a = alloc.fresh();
        let b = alloc.fresh();
        assert_ne!(a, b);
        assert_eq!(alloc.count(), 2);
    }

    #[test]
    fn roles_are_descriptive() {
        assert!(Node::N1.role().contains("first-stage"));
        assert!(Node::Output.role().contains("output"));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Node::Internal(3).to_string(), "x3");
        assert_eq!(Node::Ground.to_string(), "0");
    }
}
