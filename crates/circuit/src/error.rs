use std::fmt;

/// Error type for circuit construction and netlist parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A connection type was placed at a position that does not admit it
    /// (e.g. a passive resistor across the differential input).
    IllegalPlacement {
        /// The offending position's display name.
        position: String,
        /// The offending connection type's display name.
        connection: String,
    },
    /// The same position was assigned twice in one topology.
    DuplicatePlacement(String),
    /// A component value is non-physical (zero, negative, NaN, …).
    InvalidValue {
        /// What the value was for, e.g. `"gm of stage 2"`.
        what: String,
        /// The offending value.
        value: f64,
    },
    /// A netlist line could not be parsed.
    ParseError {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// The netlist references a node that was never declared.
    UnknownNode(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::IllegalPlacement {
                position,
                connection,
            } => write!(
                f,
                "connection type {connection} is not legal at position {position}"
            ),
            CircuitError::DuplicatePlacement(pos) => {
                write!(f, "position {pos} assigned more than once")
            }
            CircuitError::InvalidValue { what, value } => {
                write!(f, "invalid value {value} for {what}")
            }
            CircuitError::ParseError { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
            CircuitError::UnknownNode(name) => write!(f, "unknown node {name}"),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CircuitError::IllegalPlacement {
            position: "P4".into(),
            connection: "Resistor".into(),
        };
        assert!(e.to_string().contains("P4"));
        let e = CircuitError::ParseError {
            line: 7,
            message: "bad value".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = CircuitError::InvalidValue {
            what: "gm".into(),
            value: -1.0,
        };
        assert!(e.to_string().contains("-1"));
        assert!(CircuitError::UnknownNode("x9".into())
            .to_string()
            .contains("x9"));
        assert!(CircuitError::DuplicatePlacement("P1".into())
            .to_string()
            .contains("P1"));
    }
}
