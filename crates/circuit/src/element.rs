use crate::node::Node;
use crate::units::{Farads, Ohms, Siemens};
use crate::value::format_si;
use std::fmt;

/// A primitive small-signal element.
///
/// Topologies elaborate into flat lists of these three primitives, which is
/// all the behavioural level of Fig. 1(b) needs: every stage is a VCCS with
/// a parallel RC load, every compensation device is an R, C, or auxiliary
/// VCCS.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Resistor between `a` and `b`.
    Resistor {
        /// Instance label, e.g. `"Ro1"`.
        label: String,
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Resistance.
        ohms: Ohms,
    },
    /// Capacitor between `a` and `b`.
    Capacitor {
        /// Instance label, e.g. `"Cm1"`.
        label: String,
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Capacitance.
        farads: Farads,
    },
    /// Voltage-controlled current source: current `gm·(v(ctrl_p) −
    /// v(ctrl_n))` flows from `out_p` to `out_n` **inside** the source,
    /// i.e. it is injected *into* `out_n` and drawn *from* `out_p`
    /// following SPICE `G` element polarity.
    Vccs {
        /// Instance label, e.g. `"G1"`.
        label: String,
        /// Positive output terminal.
        out_p: Node,
        /// Negative output terminal.
        out_n: Node,
        /// Positive controlling node.
        ctrl_p: Node,
        /// Negative controlling node.
        ctrl_n: Node,
        /// Transconductance (signed polarity is expressed through the
        /// terminal ordering, `gm` itself is positive).
        gm: Siemens,
    },
}

impl Element {
    /// The instance label.
    pub fn label(&self) -> &str {
        match self {
            Element::Resistor { label, .. }
            | Element::Capacitor { label, .. }
            | Element::Vccs { label, .. } => label,
        }
    }

    /// All nodes this element touches.
    pub fn nodes(&self) -> Vec<Node> {
        match self {
            Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => vec![*a, *b],
            Element::Vccs {
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                ..
            } => vec![*out_p, *out_n, *ctrl_p, *ctrl_n],
        }
    }

    /// Renders the element as one SPICE-like netlist line.
    pub fn to_netlist_line(&self) -> String {
        match self {
            Element::Resistor { label, a, b, ohms } => {
                format!("{label} {a} {b} {}", format_si(ohms.value()))
            }
            Element::Capacitor {
                label,
                a,
                b,
                farads,
            } => format!("{label} {a} {b} {}", format_si(farads.value())),
            Element::Vccs {
                label,
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                gm,
            } => format!(
                "{label} {out_p} {out_n} {ctrl_p} {ctrl_n} {}",
                format_si(gm.value())
            ),
        }
    }

    /// Returns the component value in base units (ohms, farads, or
    /// siemens).
    pub fn value(&self) -> f64 {
        match self {
            Element::Resistor { ohms, .. } => ohms.value(),
            Element::Capacitor { farads, .. } => farads.value(),
            Element::Vccs { gm, .. } => gm.value(),
        }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_netlist_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Element {
        Element::Resistor {
            label: "Ro1".into(),
            a: Node::N1,
            b: Node::Ground,
            ohms: Ohms(1.2e6),
        }
    }

    #[test]
    fn netlist_lines() {
        assert_eq!(r().to_netlist_line(), "Ro1 n1 0 1.2meg");
        let c = Element::Capacitor {
            label: "Cm1".into(),
            a: Node::Output,
            b: Node::N1,
            farads: Farads(4e-12),
        };
        assert_eq!(c.to_netlist_line(), "Cm1 out n1 4p");
        let g = Element::Vccs {
            label: "G1".into(),
            out_p: Node::N1,
            out_n: Node::Ground,
            ctrl_p: Node::Input,
            ctrl_n: Node::Ground,
            gm: Siemens(25.1e-6),
        };
        assert_eq!(g.to_netlist_line(), "G1 n1 0 in 0 25.1u");
    }

    #[test]
    fn nodes_enumerated() {
        assert_eq!(r().nodes(), vec![Node::N1, Node::Ground]);
    }

    #[test]
    fn label_and_value_access() {
        assert_eq!(r().label(), "Ro1");
        assert_eq!(r().value(), 1.2e6);
    }

    #[test]
    fn display_equals_netlist_line() {
        assert_eq!(r().to_string(), r().to_netlist_line());
    }
}
