use crate::element::Element;
use crate::node::{Node, NodeAllocator};
use crate::units::{Farads, Ohms, Siemens};

/// Default transconductance of the ideal voltage buffer used by the
/// buffered-Miller connection types (a source-follower behaves as a VCCS
/// of its own gm loaded by the path it drives).
pub const BUFFER_GM: f64 = 1e-3;

/// Intrinsic voltage gain `gm·ro` assumed for auxiliary transconductance
/// stages; sets their lumped output resistance `ro = GAIN/gm`.
pub const AUX_INTRINSIC_GAIN: f64 = 50.0;

/// Intrinsic gain for cascoded auxiliary stages.
pub const CASCODE_INTRINSIC_GAIN: f64 = 400.0;

/// The 25 optional connection types of §3.2.2.
///
/// Every tunable position of the three-stage skeleton carries exactly one
/// of these. The set spans the compensation vocabulary of the multistage
/// amplifier literature (Leung & Mok 2001; Riad et al. 2019): passive
/// Miller networks, nulling resistors, feedforward and feedback
/// transconductance stages (with the series/parallel passive combinations
/// that black-box optimizers like BOBO/RLBO produce — the paper's Fig. 6
/// calls these out as typically uninterpretable), voltage- and
/// current-buffered Miller paths, and the damping-factor-control (DFC)
/// block used to drive large capacitive loads.
///
/// # Example
///
/// ```
/// use artisan_circuit::ConnectionType;
///
/// assert_eq!(ConnectionType::ALL.len(), 25);
/// assert!(ConnectionType::MillerCapacitor.is_passive());
/// assert!(ConnectionType::Dfc.is_active());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConnectionType {
    /// No connection.
    Open,
    /// A plain resistor.
    Resistor,
    /// A plain capacitor — the Miller compensation workhorse.
    MillerCapacitor,
    /// Capacitor with a series nulling resistor.
    SeriesRc,
    /// Resistor and capacitor in parallel.
    ParallelRc,
    /// Non-inverting (feedforward) transconductance stage.
    PosGm,
    /// Inverting transconductance stage.
    NegGm,
    /// Non-inverting gm stage with a series resistor at its output.
    PosGmSeriesR,
    /// Inverting gm stage with a series resistor at its output.
    NegGmSeriesR,
    /// Non-inverting gm stage coupled through a series capacitor.
    PosGmSeriesC,
    /// Inverting gm stage coupled through a series capacitor.
    NegGmSeriesC,
    /// Non-inverting gm stage with a parallel bypass capacitor.
    PosGmParallelC,
    /// Inverting gm stage with a parallel bypass capacitor.
    NegGmParallelC,
    /// Non-inverting gm stage with a parallel RC network.
    PosGmParallelRc,
    /// Inverting gm stage with a parallel RC network.
    NegGmParallelRc,
    /// Voltage-buffered Miller capacitor (source-follower in the path).
    BufferedC,
    /// Current-buffered Miller capacitor (common-gate in the path).
    CurrentBufferedC,
    /// Voltage buffer followed by a series RC network.
    BufferedSeriesRc,
    /// Current buffer in series with an RC network.
    CurrentBufferedSeriesRc,
    /// Damping-factor-control block: an inverting gain stage with a local
    /// feedback capacitor, acting as a frequency-dependent capacitor.
    Dfc,
    /// DFC block with an additional nulling resistor in its feedback path.
    DfcWithR,
    /// Non-inverting cascoded gm stage (high output resistance).
    PosGmCascode,
    /// Inverting cascoded gm stage (high output resistance).
    NegGmCascode,
    /// R–C–R T-network with the capacitor tapped to ground.
    RcTNetwork,
    /// Cross-coupled transconductance pair between the two terminals.
    CrossGmPair,
}

impl ConnectionType {
    /// Every connection type, in canonical order. Length is exactly 25,
    /// the figure quoted in §3.2.2 of the paper.
    pub const ALL: [ConnectionType; 25] = [
        ConnectionType::Open,
        ConnectionType::Resistor,
        ConnectionType::MillerCapacitor,
        ConnectionType::SeriesRc,
        ConnectionType::ParallelRc,
        ConnectionType::PosGm,
        ConnectionType::NegGm,
        ConnectionType::PosGmSeriesR,
        ConnectionType::NegGmSeriesR,
        ConnectionType::PosGmSeriesC,
        ConnectionType::NegGmSeriesC,
        ConnectionType::PosGmParallelC,
        ConnectionType::NegGmParallelC,
        ConnectionType::PosGmParallelRc,
        ConnectionType::NegGmParallelRc,
        ConnectionType::BufferedC,
        ConnectionType::CurrentBufferedC,
        ConnectionType::BufferedSeriesRc,
        ConnectionType::CurrentBufferedSeriesRc,
        ConnectionType::Dfc,
        ConnectionType::DfcWithR,
        ConnectionType::PosGmCascode,
        ConnectionType::NegGmCascode,
        ConnectionType::RcTNetwork,
        ConnectionType::CrossGmPair,
    ];

    /// Short mnemonic used in netlist comments and dataset annotations.
    pub fn code(self) -> &'static str {
        match self {
            ConnectionType::Open => "open",
            ConnectionType::Resistor => "r",
            ConnectionType::MillerCapacitor => "c",
            ConnectionType::SeriesRc => "rc_series",
            ConnectionType::ParallelRc => "rc_parallel",
            ConnectionType::PosGm => "gm+",
            ConnectionType::NegGm => "gm-",
            ConnectionType::PosGmSeriesR => "gm+_r",
            ConnectionType::NegGmSeriesR => "gm-_r",
            ConnectionType::PosGmSeriesC => "gm+_c",
            ConnectionType::NegGmSeriesC => "gm-_c",
            ConnectionType::PosGmParallelC => "gm+||c",
            ConnectionType::NegGmParallelC => "gm-||c",
            ConnectionType::PosGmParallelRc => "gm+||rc",
            ConnectionType::NegGmParallelRc => "gm-||rc",
            ConnectionType::BufferedC => "buf_c",
            ConnectionType::CurrentBufferedC => "cbuf_c",
            ConnectionType::BufferedSeriesRc => "buf_rc",
            ConnectionType::CurrentBufferedSeriesRc => "cbuf_rc",
            ConnectionType::Dfc => "dfc",
            ConnectionType::DfcWithR => "dfc_r",
            ConnectionType::PosGmCascode => "gm+_casc",
            ConnectionType::NegGmCascode => "gm-_casc",
            ConnectionType::RcTNetwork => "rcr_t",
            ConnectionType::CrossGmPair => "gm_cross",
        }
    }

    /// Parses a mnemonic back into its type.
    pub fn from_code(code: &str) -> Option<ConnectionType> {
        ConnectionType::ALL
            .iter()
            .copied()
            .find(|t| t.code() == code)
    }

    /// True for connections built only from R and C.
    pub fn is_passive(self) -> bool {
        matches!(
            self,
            ConnectionType::Open
                | ConnectionType::Resistor
                | ConnectionType::MillerCapacitor
                | ConnectionType::SeriesRc
                | ConnectionType::ParallelRc
                | ConnectionType::RcTNetwork
        )
    }

    /// True for connections containing at least one transconductance
    /// stage or buffer (everything that burns bias current).
    pub fn is_active(self) -> bool {
        !self.is_passive()
    }

    /// True when the elaborated network needs a resistor value.
    pub fn needs_r(self) -> bool {
        matches!(
            self,
            ConnectionType::Resistor
                | ConnectionType::SeriesRc
                | ConnectionType::ParallelRc
                | ConnectionType::PosGmSeriesR
                | ConnectionType::NegGmSeriesR
                | ConnectionType::PosGmParallelRc
                | ConnectionType::NegGmParallelRc
                | ConnectionType::BufferedSeriesRc
                | ConnectionType::CurrentBufferedSeriesRc
                | ConnectionType::DfcWithR
                | ConnectionType::RcTNetwork
        )
    }

    /// True when the elaborated network needs a capacitor value.
    pub fn needs_c(self) -> bool {
        matches!(
            self,
            ConnectionType::MillerCapacitor
                | ConnectionType::SeriesRc
                | ConnectionType::ParallelRc
                | ConnectionType::PosGmSeriesC
                | ConnectionType::NegGmSeriesC
                | ConnectionType::PosGmParallelC
                | ConnectionType::NegGmParallelC
                | ConnectionType::PosGmParallelRc
                | ConnectionType::NegGmParallelRc
                | ConnectionType::BufferedC
                | ConnectionType::CurrentBufferedC
                | ConnectionType::BufferedSeriesRc
                | ConnectionType::CurrentBufferedSeriesRc
                | ConnectionType::Dfc
                | ConnectionType::DfcWithR
                | ConnectionType::RcTNetwork
        )
    }

    /// True when the elaborated network needs a transconductance value.
    pub fn needs_gm(self) -> bool {
        self.is_active()
            && !matches!(
                self,
                ConnectionType::BufferedC
                    | ConnectionType::BufferedSeriesRc
                    | ConnectionType::CurrentBufferedC
                    | ConnectionType::CurrentBufferedSeriesRc
            )
            || matches!(
                self,
                ConnectionType::CurrentBufferedC | ConnectionType::CurrentBufferedSeriesRc
            )
    }

    /// Additional static bias current drawn by the connection, as a
    /// multiple of `gm / (gm/Id)`; buffers cost one unit of [`BUFFER_GM`]
    /// at the buffer's own ratio. Used by the power model in
    /// `artisan-sim`.
    pub fn bias_stage_count(self) -> usize {
        match self {
            ConnectionType::Open
            | ConnectionType::Resistor
            | ConnectionType::MillerCapacitor
            | ConnectionType::SeriesRc
            | ConnectionType::ParallelRc
            | ConnectionType::RcTNetwork => 0,
            ConnectionType::CrossGmPair => 2,
            _ => 1,
        }
    }
}

impl std::fmt::Display for ConnectionType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Component values for one placed connection.
///
/// Only the fields the connection type [`ConnectionType::needs_r`] /
/// `needs_c` / `needs_gm` are consulted; the rest may stay `None`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConnectionParams {
    /// Resistance, when the type includes a resistor.
    pub r: Option<Ohms>,
    /// Capacitance, when the type includes a capacitor.
    pub c: Option<Farads>,
    /// Transconductance, when the type includes a gm stage.
    pub gm: Option<Siemens>,
}

impl ConnectionParams {
    /// No values — suitable only for [`ConnectionType::Open`].
    pub fn none() -> Self {
        Self::default()
    }

    /// Only a resistance.
    pub fn r(ohms: f64) -> Self {
        ConnectionParams {
            r: Some(Ohms(ohms)),
            ..Default::default()
        }
    }

    /// Only a capacitance.
    pub fn c(farads: f64) -> Self {
        ConnectionParams {
            c: Some(Farads(farads)),
            ..Default::default()
        }
    }

    /// Only a transconductance.
    pub fn gm(siemens: f64) -> Self {
        ConnectionParams {
            gm: Some(Siemens(siemens)),
            ..Default::default()
        }
    }

    /// Resistance and capacitance.
    pub fn rc(ohms: f64, farads: f64) -> Self {
        ConnectionParams {
            r: Some(Ohms(ohms)),
            c: Some(Farads(farads)),
            gm: None,
        }
    }

    /// All three values.
    pub fn full(ohms: f64, farads: f64, siemens: f64) -> Self {
        ConnectionParams {
            r: Some(Ohms(ohms)),
            c: Some(Farads(farads)),
            gm: Some(Siemens(siemens)),
        }
    }

    fn r_or_default(&self) -> f64 {
        self.r.map(Ohms::value).unwrap_or(10e3)
    }

    fn c_or_default(&self) -> f64 {
        self.c.map(Farads::value).unwrap_or(1e-12)
    }

    fn gm_or_default(&self) -> f64 {
        self.gm.map(Siemens::value).unwrap_or(50e-6)
    }
}

/// Elaborates a placed connection into primitive elements between `a` and
/// `b`, allocating internal nodes as needed. `prefix` namespaces instance
/// labels (e.g. `"p1"` yields `Rp1`, `Ccp1`, `Gp1`, …). Connection
/// capacitors are labelled `Cc` so they can never collide with the
/// skeleton's parasitic capacitors `Cp1`–`Cp3` (positions `p1`–`p3`
/// would otherwise both produce a `Cp3`).
///
/// The elaborations follow the small-signal conventions of Fig. 1(b):
/// auxiliary gm stages carry a lumped output resistance
/// `ro = AUX_INTRINSIC_GAIN / gm`; buffers are VCCS-based behavioural
/// models (see `DESIGN.md`, substitution table).
pub fn elaborate(
    conn: ConnectionType,
    params: &ConnectionParams,
    a: Node,
    b: Node,
    alloc: &mut NodeAllocator,
    prefix: &str,
) -> Vec<Element> {
    use ConnectionType as Ct;

    let r = params.r_or_default();
    let c = params.c_or_default();
    let gm = params.gm_or_default();

    let resistor = |label: String, x: Node, y: Node, ohms: f64| Element::Resistor {
        label,
        a: x,
        b: y,
        ohms: Ohms(ohms),
    };
    let capacitor = |label: String, x: Node, y: Node, farads: f64| Element::Capacitor {
        label,
        a: x,
        b: y,
        farads: Farads(farads),
    };
    // SPICE `G` polarity: I = gm·(v(cp) − v(cn)) flows out of `out_p` and
    // into `out_n`; `G w 0 u 0 gm` is therefore an *inverting* stage u→w.
    let inverting = |label: String, from: Node, to: Node, g: f64| Element::Vccs {
        label,
        out_p: to,
        out_n: Node::Ground,
        ctrl_p: from,
        ctrl_n: Node::Ground,
        gm: Siemens(g),
    };
    let noninverting = |label: String, from: Node, to: Node, g: f64| Element::Vccs {
        label,
        out_p: Node::Ground,
        out_n: to,
        ctrl_p: from,
        ctrl_n: Node::Ground,
        gm: Siemens(g),
    };
    let ro_of = |g: f64| AUX_INTRINSIC_GAIN / g;

    match conn {
        Ct::Open => Vec::new(),
        Ct::Resistor => vec![resistor(format!("R{prefix}"), a, b, r)],
        Ct::MillerCapacitor => vec![capacitor(format!("Cc{prefix}"), a, b, c)],
        Ct::SeriesRc => {
            let x = alloc.fresh();
            vec![
                resistor(format!("R{prefix}"), a, x, r),
                capacitor(format!("Cc{prefix}"), x, b, c),
            ]
        }
        Ct::ParallelRc => vec![
            resistor(format!("R{prefix}"), a, b, r),
            capacitor(format!("Cc{prefix}"), a, b, c),
        ],
        Ct::PosGm => vec![
            noninverting(format!("G{prefix}"), a, b, gm),
            resistor(format!("Rg{prefix}"), b, Node::Ground, ro_of(gm)),
        ],
        Ct::NegGm => vec![
            inverting(format!("G{prefix}"), a, b, gm),
            resistor(format!("Rg{prefix}"), b, Node::Ground, ro_of(gm)),
        ],
        Ct::PosGmSeriesR | Ct::NegGmSeriesR => {
            let x = alloc.fresh();
            let stage = if conn == Ct::PosGmSeriesR {
                noninverting(format!("G{prefix}"), a, x, gm)
            } else {
                inverting(format!("G{prefix}"), a, x, gm)
            };
            vec![
                stage,
                resistor(format!("Rg{prefix}"), x, Node::Ground, ro_of(gm)),
                resistor(format!("R{prefix}"), x, b, r),
            ]
        }
        Ct::PosGmSeriesC | Ct::NegGmSeriesC => {
            let x = alloc.fresh();
            let stage = if conn == Ct::PosGmSeriesC {
                noninverting(format!("G{prefix}"), a, x, gm)
            } else {
                inverting(format!("G{prefix}"), a, x, gm)
            };
            vec![
                stage,
                resistor(format!("Rg{prefix}"), x, Node::Ground, ro_of(gm)),
                capacitor(format!("Cc{prefix}"), x, b, c),
            ]
        }
        Ct::PosGmParallelC | Ct::NegGmParallelC => {
            let stage = if conn == Ct::PosGmParallelC {
                noninverting(format!("G{prefix}"), a, b, gm)
            } else {
                inverting(format!("G{prefix}"), a, b, gm)
            };
            vec![
                stage,
                resistor(format!("Rg{prefix}"), b, Node::Ground, ro_of(gm)),
                capacitor(format!("Cc{prefix}"), a, b, c),
            ]
        }
        Ct::PosGmParallelRc | Ct::NegGmParallelRc => {
            let stage = if conn == Ct::PosGmParallelRc {
                noninverting(format!("G{prefix}"), a, b, gm)
            } else {
                inverting(format!("G{prefix}"), a, b, gm)
            };
            vec![
                stage,
                resistor(format!("Rg{prefix}"), b, Node::Ground, ro_of(gm)),
                resistor(format!("R{prefix}"), a, b, r),
                capacitor(format!("Cc{prefix}"), a, b, c),
            ]
        }
        Ct::BufferedC => {
            let x = alloc.fresh();
            vec![
                // Source follower: I = BUFFER_GM·(v(a) − v(x)) into x.
                Element::Vccs {
                    label: format!("Gb{prefix}"),
                    out_p: Node::Ground,
                    out_n: x,
                    ctrl_p: a,
                    ctrl_n: x,
                    gm: Siemens(BUFFER_GM),
                },
                capacitor(format!("Cc{prefix}"), x, b, c),
            ]
        }
        Ct::BufferedSeriesRc => {
            let x = alloc.fresh();
            let y = alloc.fresh();
            vec![
                Element::Vccs {
                    label: format!("Gb{prefix}"),
                    out_p: Node::Ground,
                    out_n: x,
                    ctrl_p: a,
                    ctrl_n: x,
                    gm: Siemens(BUFFER_GM),
                },
                resistor(format!("R{prefix}"), x, y, r),
                capacitor(format!("Cc{prefix}"), y, b, c),
            ]
        }
        Ct::CurrentBufferedC => {
            let x = alloc.fresh();
            vec![
                capacitor(format!("Cc{prefix}"), a, x, c),
                // Common-gate input impedance 1/gm at the buffer node…
                resistor(format!("Rb{prefix}"), x, Node::Ground, 1.0 / gm),
                // …whose current is forwarded into b.
                inverting(format!("G{prefix}"), x, b, gm),
            ]
        }
        Ct::CurrentBufferedSeriesRc => {
            let x = alloc.fresh();
            let y = alloc.fresh();
            vec![
                resistor(format!("R{prefix}"), a, y, r),
                capacitor(format!("Cc{prefix}"), y, x, c),
                resistor(format!("Rb{prefix}"), x, Node::Ground, 1.0 / gm),
                inverting(format!("G{prefix}"), x, b, gm),
            ]
        }
        Ct::Dfc | Ct::DfcWithR => {
            // Gain stage gm4 sensing v(a), with capacitive feedback from
            // its output d back to a: a frequency-dependent capacitor
            // that damps the non-dominant complex pole pair (Q9/A9 of
            // Fig. 7). `b` is the block's reference terminal.
            let d = alloc.fresh();
            let mut elems = vec![
                Element::Vccs {
                    label: format!("Gd{prefix}"),
                    out_p: d,
                    out_n: b,
                    ctrl_p: a,
                    ctrl_n: b,
                    gm: Siemens(gm),
                },
                resistor(format!("Rd{prefix}"), d, Node::Ground, ro_of(gm)),
            ];
            if conn == Ct::DfcWithR {
                let y = alloc.fresh();
                elems.push(capacitor(format!("Cc{prefix}"), d, y, c));
                elems.push(resistor(format!("R{prefix}"), y, a, r));
            } else {
                elems.push(capacitor(format!("Cc{prefix}"), d, a, c));
            }
            elems
        }
        Ct::PosGmCascode | Ct::NegGmCascode => {
            let stage = if conn == Ct::PosGmCascode {
                noninverting(format!("G{prefix}"), a, b, gm)
            } else {
                inverting(format!("G{prefix}"), a, b, gm)
            };
            vec![
                stage,
                resistor(
                    format!("Rg{prefix}"),
                    b,
                    Node::Ground,
                    CASCODE_INTRINSIC_GAIN / gm,
                ),
            ]
        }
        Ct::RcTNetwork => {
            let x = alloc.fresh();
            vec![
                resistor(format!("Ra{prefix}"), a, x, r),
                capacitor(format!("Cc{prefix}"), x, Node::Ground, c),
                resistor(format!("Rb{prefix}"), x, b, r),
            ]
        }
        Ct::CrossGmPair => vec![
            noninverting(format!("Gf{prefix}"), a, b, gm),
            inverting(format!("Gr{prefix}"), b, a, gm),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_25_types() {
        assert_eq!(ConnectionType::ALL.len(), 25);
        // All distinct.
        let mut set = std::collections::BTreeSet::new();
        for t in ConnectionType::ALL {
            assert!(set.insert(t), "duplicate variant {t:?}");
        }
    }

    #[test]
    fn codes_roundtrip() {
        for t in ConnectionType::ALL {
            assert_eq!(ConnectionType::from_code(t.code()), Some(t));
        }
        assert_eq!(ConnectionType::from_code("nope"), None);
    }

    #[test]
    fn passive_active_partition() {
        let passive = ConnectionType::ALL
            .iter()
            .filter(|t| t.is_passive())
            .count();
        let active = ConnectionType::ALL.iter().filter(|t| t.is_active()).count();
        assert_eq!(passive + active, 25);
        assert_eq!(passive, 6);
    }

    #[test]
    fn open_elaborates_to_nothing() {
        let mut alloc = NodeAllocator::new();
        let elems = elaborate(
            ConnectionType::Open,
            &ConnectionParams::none(),
            Node::N1,
            Node::Output,
            &mut alloc,
            "p1",
        );
        assert!(elems.is_empty());
        assert_eq!(alloc.count(), 0);
    }

    #[test]
    fn miller_cap_is_single_capacitor() {
        let mut alloc = NodeAllocator::new();
        let elems = elaborate(
            ConnectionType::MillerCapacitor,
            &ConnectionParams::c(4e-12),
            Node::Output,
            Node::N1,
            &mut alloc,
            "m1",
        );
        assert_eq!(elems.len(), 1);
        assert_eq!(elems[0].value(), 4e-12);
        assert_eq!(elems[0].label(), "Ccm1");
    }

    #[test]
    fn series_rc_uses_internal_node() {
        let mut alloc = NodeAllocator::new();
        let elems = elaborate(
            ConnectionType::SeriesRc,
            &ConnectionParams::rc(2e3, 3e-12),
            Node::N2,
            Node::Output,
            &mut alloc,
            "z",
        );
        assert_eq!(elems.len(), 2);
        assert_eq!(alloc.count(), 1);
        // The internal node must appear in both elements.
        let x = Node::Internal(0);
        assert!(elems.iter().all(|e| e.nodes().contains(&x)));
    }

    #[test]
    fn gm_stages_carry_output_resistance() {
        let mut alloc = NodeAllocator::new();
        let elems = elaborate(
            ConnectionType::NegGm,
            &ConnectionParams::gm(100e-6),
            Node::Input,
            Node::Output,
            &mut alloc,
            "f",
        );
        assert_eq!(elems.len(), 2);
        let ro = elems
            .iter()
            .find_map(|e| match e {
                Element::Resistor { ohms, .. } => Some(ohms.value()),
                _ => None,
            })
            .expect("has ro");
        assert!((ro - AUX_INTRINSIC_GAIN / 100e-6).abs() < 1e-6);
    }

    #[test]
    fn dfc_has_feedback_capacitor_to_input() {
        let mut alloc = NodeAllocator::new();
        let elems = elaborate(
            ConnectionType::Dfc,
            &ConnectionParams {
                c: Some(Farads(2e-12)),
                gm: Some(Siemens(80e-6)),
                r: None,
            },
            Node::N1,
            Node::Ground,
            &mut alloc,
            "d",
        );
        assert_eq!(elems.len(), 3);
        let cap = elems
            .iter()
            .find(|e| matches!(e, Element::Capacitor { .. }))
            .expect("has cap");
        assert!(cap.nodes().contains(&Node::N1));
    }

    #[test]
    fn cross_pair_has_two_sources() {
        let mut alloc = NodeAllocator::new();
        let elems = elaborate(
            ConnectionType::CrossGmPair,
            &ConnectionParams::gm(10e-6),
            Node::N1,
            Node::N2,
            &mut alloc,
            "x",
        );
        let sources = elems
            .iter()
            .filter(|e| matches!(e, Element::Vccs { .. }))
            .count();
        assert_eq!(sources, 2);
    }

    #[test]
    fn every_type_elaborates_without_panicking() {
        for t in ConnectionType::ALL {
            let mut alloc = NodeAllocator::new();
            let elems = elaborate(
                t,
                &ConnectionParams::full(5e3, 2e-12, 60e-6),
                Node::N1,
                Node::Output,
                &mut alloc,
                "q",
            );
            if t == ConnectionType::Open {
                assert!(elems.is_empty());
            } else {
                assert!(!elems.is_empty(), "{t:?} produced nothing");
                // All labels are namespaced by the prefix.
                for e in &elems {
                    assert!(e.label().contains('q'), "{t:?} label {}", e.label());
                    assert!(e.value() > 0.0, "{t:?} nonphysical value");
                }
            }
        }
    }

    #[test]
    fn needs_flags_match_elaboration() {
        // If a type claims not to need a capacitor, its elaboration must
        // not contain one (with default params), and vice versa.
        for t in ConnectionType::ALL {
            let mut alloc = NodeAllocator::new();
            let elems = elaborate(
                t,
                &ConnectionParams::full(5e3, 2e-12, 60e-6),
                Node::N1,
                Node::Output,
                &mut alloc,
                "w",
            );
            let has_c = elems.iter().any(|e| matches!(e, Element::Capacitor { .. }));
            assert_eq!(t.needs_c(), has_c, "{t:?} capacitor mismatch");
            let has_gm_or_buffer = elems.iter().any(|e| matches!(e, Element::Vccs { .. }));
            assert_eq!(t.is_active(), has_gm_or_buffer, "{t:?} active mismatch");
        }
    }

    #[test]
    fn bias_counts_are_consistent() {
        assert_eq!(ConnectionType::Open.bias_stage_count(), 0);
        assert_eq!(ConnectionType::MillerCapacitor.bias_stage_count(), 0);
        assert_eq!(ConnectionType::NegGm.bias_stage_count(), 1);
        assert_eq!(ConnectionType::CrossGmPair.bias_stage_count(), 2);
        assert_eq!(ConnectionType::Dfc.bias_stage_count(), 1);
    }
}
