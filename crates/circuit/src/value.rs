//! Engineering-notation value formatting and parsing.
//!
//! SPICE netlists write `4p` for 4 pF and `1.2meg` for 1.2 MΩ; this module
//! provides the canonical formatter used by [`crate::Netlist`] emission and
//! the tolerant parser used when reading netlists back.

/// SI prefixes in SPICE convention, largest first. `meg` is used for 1e6
/// because `M`/`m` are both milli in SPICE's case-insensitive tradition.
const PREFIXES: &[(f64, &str)] = &[
    (1e12, "t"),
    (1e9, "g"),
    (1e6, "meg"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
];

/// Formats a value with the best-fitting SI prefix, e.g. `format_si(4e-12)
/// == "4p"`. Values are rendered with up to four significant digits and
/// trailing zeros trimmed.
///
/// Zero formats as `"0"`; non-finite values format via `{}` on `f64`.
///
/// # Example
///
/// ```
/// use artisan_circuit::value::format_si;
///
/// assert_eq!(format_si(4e-12), "4p");
/// assert_eq!(format_si(1.2e6), "1.2meg");
/// assert_eq!(format_si(0.0), "0");
/// ```
pub fn format_si(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    if !v.is_finite() {
        return format!("{v}");
    }
    let mag = v.abs();
    for &(scale, prefix) in PREFIXES {
        if mag >= scale * 0.9999995 {
            let scaled = v / scale;
            return format!("{}{prefix}", trim_digits(scaled));
        }
    }
    // Below atto: fall back to scientific notation.
    format!("{v:e}")
}

fn trim_digits(x: f64) -> String {
    // Up to 4 significant digits, trailing zeros removed.
    let s = format!("{x:.4}");
    let s = s.trim_end_matches('0').trim_end_matches('.').to_string();
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s
    }
}

/// Parses a SPICE-style value with optional SI suffix: `"4p"`, `"1.2meg"`,
/// `"700k"`, `"0.25"`, `"2.5e-6"`. Suffix matching is case-insensitive and
/// ignores trailing unit letters after the prefix (`"10pF"` parses as
/// `10e-12`, `"1kOhm"` as `1e3`), matching SPICE tradition.
///
/// Returns `None` for malformed input.
///
/// # Example
///
/// ```
/// use artisan_circuit::value::parse_si;
///
/// assert_eq!(parse_si("4p"), Some(4e-12));
/// assert_eq!(parse_si("1.2meg"), Some(1.2e6));
/// assert_eq!(parse_si("10pF"), Some(1e-11));
/// assert_eq!(parse_si("bogus"), None);
/// ```
pub fn parse_si(text: &str) -> Option<f64> {
    let t = text.trim();
    if t.is_empty() {
        return None;
    }
    // Split the leading numeric part (digits, sign, dot, exponent).
    let mut split = t.len();
    let bytes = t.as_bytes();
    let mut i = 0;
    let mut seen_digit = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let is_num = c.is_ascii_digit()
            || c == '.'
            || ((c == '+' || c == '-') && (i == 0 || matches!(bytes[i - 1] as char, 'e' | 'E')))
            || ((c == 'e' || c == 'E') && seen_digit && i + 1 < bytes.len() && {
                let nxt = bytes[i + 1] as char;
                nxt.is_ascii_digit() || nxt == '+' || nxt == '-'
            });
        if c.is_ascii_digit() {
            seen_digit = true;
        }
        if !is_num {
            split = i;
            break;
        }
        i += 1;
    }
    let (num_part, suffix) = t.split_at(split);
    let base: f64 = num_part.parse().ok()?;
    let suffix = suffix.trim().to_ascii_lowercase();
    if suffix.is_empty() {
        return Some(base);
    }
    let scale = if suffix.starts_with("meg") {
        1e6
    } else {
        match suffix.as_bytes()[0] as char {
            't' => 1e12,
            'g' => 1e9,
            'k' => 1e3,
            'm' => 1e-3,
            'u' => 1e-6,
            'n' => 1e-9,
            'p' => 1e-12,
            'f' => 1e-15,
            'a' => 1e-18,
            // A bare unit like "Ohm" or "V" — no prefix.
            'o' | 'v' | 's' | 'h' | 'w' => 1.0,
            _ => return None,
        }
    };
    Some(base * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_common_values() {
        assert_eq!(format_si(25.12e-6), "25.12u");
        assert_eq!(format_si(4e-12), "4p");
        assert_eq!(format_si(1e6), "1meg");
        assert_eq!(format_si(1.5e3), "1.5k");
        assert_eq!(format_si(-3e-9), "-3n");
        assert_eq!(format_si(0.25), "250m");
        assert_eq!(format_si(1e9), "1g");
        assert_eq!(format_si(2.0), "2");
    }

    #[test]
    fn formats_boundaries() {
        assert_eq!(format_si(1000.0), "1k");
        assert_eq!(format_si(999.0), "999");
        // Floating-point representation of 1e-3 · 999.999… rounds sanely.
        assert_eq!(format_si(1e-3), "1m");
    }

    #[test]
    fn parses_plain_numbers() {
        assert_eq!(parse_si("42"), Some(42.0));
        assert_eq!(parse_si("-1.5"), Some(-1.5));
        assert_eq!(parse_si("2.5e-6"), Some(2.5e-6));
        assert_eq!(parse_si("1E3"), Some(1000.0));
    }

    #[test]
    fn parses_suffixes() {
        assert_eq!(parse_si("4p"), Some(4e-12));
        assert!((parse_si("3n").unwrap() - 3e-9).abs() < 1e-18);
        assert_eq!(parse_si("25.1u"), Some(25.1e-6));
        assert_eq!(parse_si("12m"), Some(12e-3));
        assert_eq!(parse_si("700k"), Some(700e3));
        assert_eq!(parse_si("1.2meg"), Some(1.2e6));
        assert_eq!(parse_si("2g"), Some(2e9));
        assert_eq!(parse_si("100f"), Some(100e-15));
    }

    #[test]
    fn parses_unit_tails() {
        assert_eq!(parse_si("10pF"), Some(1e-11));
        assert_eq!(parse_si("1kOhm"), Some(1e3));
        assert_eq!(parse_si("1MEG"), Some(1e6));
        assert_eq!(parse_si("1.8V"), Some(1.8));
        assert_eq!(parse_si("5Ohm"), Some(5.0));
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(parse_si(""), None);
        assert_eq!(parse_si("x12"), None);
        assert_eq!(parse_si("1.2.3"), None);
        assert_eq!(parse_si("12q"), None);
    }

    #[test]
    fn roundtrip_format_parse() {
        for &v in &[
            1e-15, 4e-12, 33e-9, 25.1e-6, 1e-3, 0.5, 42.0, 1.5e3, 1.2e6, 7e9,
        ] {
            let s = format_si(v);
            let back = parse_si(&s).unwrap_or_else(|| panic!("failed to parse {s}"));
            let rel = ((back - v) / v).abs();
            assert!(rel < 1e-3, "{v} -> {s} -> {back}");
        }
    }
}
