//! Behavioural operational-amplifier modeling for the Artisan reproduction.
//!
//! This crate implements §2.2 and §3.2 of the paper:
//!
//! - the canonical **three-stage cascode skeleton** of Fig. 1(a), where each
//!   stage is an ideal voltage-controlled current source `gm_i` loaded by a
//!   lumped output resistance `R_oi` and parasitic capacitance `C_pi`
//!   ([`skeleton`], [`Topology`]),
//! - the **tunable connection positions** with **25 optional connection
//!   types** each (§3.2.2), spanning passive compensation (Miller
//!   capacitors, nulling resistors), active feedforward/feedback
//!   transconductance stages, buffered Miller paths, and the
//!   damping-factor-control (DFC) block ([`ConnectionType`], [`Position`]),
//! - the **netlist** representation — primitive elements and a SPICE-like
//!   text format with engineering-notation values ([`Netlist`], [`value`]),
//! - the **bidirectional circuit representation** `NetlistTuple =
//!   (netlist, description)` of Eq. (2): a rule-based annotator renders the
//!   structural semantics of every connection as natural language
//!   ([`describe`], [`NetlistTuple`]).
//!
//! # Example
//!
//! Build the paper's nested-Miller-compensation opamp and print its tuple:
//!
//! ```
//! use artisan_circuit::{Topology, NetlistTuple};
//!
//! let topo = Topology::nmc_example();
//! let tuple = NetlistTuple::from_topology(&topo);
//! assert!(tuple.netlist_text().contains("G1"));
//! assert!(tuple.description().contains("Miller"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod connection;
mod element;
mod error;
mod netlist;
mod node;
mod position;
mod skeleton;
mod topology;
mod tuple;

pub mod describe;
pub mod design;
pub mod sample;
pub mod units;
pub mod value;

pub use connection::{ConnectionParams, ConnectionType};
pub use element::Element;
pub use error::CircuitError;
pub use netlist::Netlist;
pub use node::{Node, NodeAllocator};
pub use position::{Position, PositionRules};
pub use skeleton::{Skeleton, StageParams};
pub use topology::{Placement, Topology};
pub use tuple::NetlistTuple;

/// Convenient alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CircuitError>;
