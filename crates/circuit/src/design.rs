//! Canonical design recipes — the analytic heart of the CoT design flow
//! (Fig. 4) and the knowledge encoded in the DesignQA documents.
//!
//! The NMC recipe follows the paper's worked example (Fig. 7, A2/A3):
//! Butterworth pole allocation `GBW : p2 : p3 = 1 : 2 : 4` gives
//!
//! - `gm3 = 8π · GBW · C_L`
//! - `Cm1, Cm2` at the pF level (fractions of `C_L` for small loads),
//! - `gm1 = gm3 · Cm1 / (4·C_L) = 2π · GBW · Cm1`,
//! - `gm2 = gm3 · Cm2 / (2·C_L)`.
//!
//! The DFC recipe implements the Q9/A9 modification: for very large
//! capacitive loads the inner Miller capacitor is removed and a
//! damping-factor-control block (gain stage `gm4` + feedback capacitor
//! `Cm3`) is attached at the first-stage output, which lets the output
//! stage transconductance scale with `√(C_L)` rather than `C_L`.

use crate::connection::{ConnectionParams, ConnectionType};
use crate::position::Position;
use crate::skeleton::{Skeleton, StageParams};
use crate::topology::{Placement, Topology};
use crate::units::{Farads, Siemens};
use std::f64::consts::PI;

/// Design inputs for the analytic recipes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignTarget {
    /// Target gain-bandwidth product in Hz (choose above the spec floor).
    pub gbw_hz: f64,
    /// Load capacitance in farads.
    pub cl: f64,
    /// Load resistance in ohms (1 MΩ in the paper's testbench).
    pub rl: f64,
    /// Required DC gain in dB (drives the intrinsic-gain choice).
    pub gain_db: f64,
    /// Static power budget in watts (drives the metric-allocation step:
    /// tight budgets shrink the Miller capacitors to cut gm1/gm2).
    pub power_budget_w: f64,
}

/// Mirror of the default power model in `artisan-sim` (kept in sync by a
/// regression test there): estimated power for a gm triple.
fn estimate_power(gm1: f64, gm2: f64, gm3: f64) -> f64 {
    1.8 * 1.3 * (2.0 * gm1 + gm2 + gm3) / 15.0
}

/// The NMC design recipe's computed parameters (A3 of Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NmcParameters {
    /// First-stage transconductance.
    pub gm1: Siemens,
    /// Second-stage transconductance.
    pub gm2: Siemens,
    /// Output-stage transconductance.
    pub gm3: Siemens,
    /// Outer Miller capacitor.
    pub cm1: Farads,
    /// Inner Miller capacitor.
    pub cm2: Farads,
}

/// Computes the Butterworth NMC parameters for a target.
///
/// # Panics
///
/// Panics for non-positive GBW or load values.
pub fn nmc_parameters(target: &DesignTarget) -> NmcParameters {
    assert!(
        target.gbw_hz > 0.0 && target.cl > 0.0,
        "NMC design needs positive GBW and CL"
    );
    let gm3 = 8.0 * PI * target.gbw_hz * target.cl;
    // Compensation caps: the paper picks "pF level" values ≈ 0.4/0.3·CL
    // for the 10 pF testbench (4 pF and 3 pF). Clamp to keep them at the
    // pF level for very large loads.
    let make = |cm1_frac: f64, cm2_frac: f64| {
        let cm1 = (cm1_frac * target.cl).clamp(0.2e-12, 40e-12);
        let cm2 = (cm2_frac * target.cl).clamp(0.15e-12, 30e-12);
        let gm1 = gm3 * cm1 / (4.0 * target.cl);
        let gm2 = gm3 * cm2 / (2.0 * target.cl);
        NmcParameters {
            gm1: Siemens(gm1),
            gm2: Siemens(gm2),
            gm3: Siemens(gm3),
            cm1: Farads(cm1),
            cm2: Farads(cm2),
        }
    };
    // Metric allocation (step 4 of Fig. 4): start from the canonical
    // 0.4/0.3 fractions; if the estimated power exceeds the budget,
    // shrink the Miller capacitors — gm1 and gm2 scale with them while
    // GBW = gm1/(2π·Cm1) is preserved.
    let canonical = make(0.4, 0.3);
    let p_est = estimate_power(
        canonical.gm1.value(),
        canonical.gm2.value(),
        canonical.gm3.value(),
    );
    let mut p = if p_est > 0.9 * target.power_budget_w {
        make(0.15, 0.08)
    } else {
        canonical
    };
    // Pole-spread safety margin: when the power budget leaves headroom,
    // spend some of it on a larger output stage — the non-dominant poles
    // move out and the phase margin gains a few degrees of robustness.
    let p_est = estimate_power(p.gm1.value(), p.gm2.value(), p.gm3.value());
    if p_est < 0.85 * target.power_budget_w {
        let boost = (0.9 * target.power_budget_w / p_est).min(1.15);
        p.gm3 = Siemens(p.gm3.value() * boost);
    }
    p
}

/// Chooses per-stage intrinsic gains `gm·ro` so the DC gain clears the
/// spec with margin: `Av ≈ A1·A2·A3_eff`. Returns `(a1, a2, a3)`.
pub fn intrinsic_gains_for(gain_db: f64) -> (f64, f64, f64) {
    if gain_db > 105.0 {
        // High-gain groups (G-2): cascoded first stage.
        (600.0, 200.0, 120.0)
    } else {
        (150.0, 100.0, 80.0)
    }
}

/// Builds the complete NMC topology for a target: skeleton stages from
/// the recipe plus the two nested Miller capacitors.
#[allow(clippy::expect_used)] // fixed recipe; placements legal by construction
pub fn nmc_topology(target: &DesignTarget) -> Topology {
    let p = nmc_parameters(target);
    let (a1, a2, a3) = intrinsic_gains_for(target.gain_db);
    let skeleton = Skeleton::new(
        StageParams::from_gm_and_gain(p.gm1.value(), a1),
        StageParams::from_gm_and_gain(p.gm2.value(), a2),
        StageParams::from_gm_and_gain(p.gm3.value(), a3),
        target.rl,
        target.cl,
    );
    let mut topo = Topology::new(skeleton);
    topo.place(Placement::new(
        Position::N1ToOut,
        ConnectionType::MillerCapacitor,
        ConnectionParams::c(p.cm1.value()),
    ))
    .expect("Miller capacitor is legal at N1ToOut");
    topo.place(Placement::new(
        Position::N2ToOut,
        ConnectionType::MillerCapacitor,
        ConnectionParams::c(p.cm2.value()),
    ))
    .expect("Miller capacitor is legal at N2ToOut");
    topo
}

/// The DFC-modified design for very large capacitive loads (Q9/A9):
/// single Miller loop, no inner capacitor, and a DFC block at the
/// first-stage output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfcParameters {
    /// First-stage transconductance.
    pub gm1: Siemens,
    /// Second-stage transconductance.
    pub gm2: Siemens,
    /// Output-stage transconductance.
    pub gm3: Siemens,
    /// DFC gain-stage transconductance.
    pub gm4: Siemens,
    /// Outer Miller capacitor.
    pub cm1: Farads,
    /// DFC feedback capacitor.
    pub cm3: Farads,
}

/// Computes DFC-NMC parameters for a large-load target.
///
/// The constants are calibrated against the workspace simulator so the
/// produced circuit clears the G-5 spec (gain > 85 dB, GBW > 0.7 MHz,
/// PM > 55°, power < 250 µW at C_L = 1 nF); see the regression tests.
///
/// # Panics
///
/// Panics for non-positive GBW or load values.
pub fn dfc_parameters(target: &DesignTarget) -> DfcParameters {
    assert!(
        target.gbw_hz > 0.0 && target.cl > 0.0,
        "DFC design needs positive GBW and CL"
    );
    // Calibrated against the workspace simulator (see the sweep study in
    // EXPERIMENTS.md): a small Miller capacitor sets gm1 from the GBW
    // target, the output stage runs at 8·gm1 — independent of C_L, which
    // is what the damping block buys — and the DFC stage itself needs
    // only 2·gm1 with a 1 pF feedback capacitor.
    let cm1 = 4e-12;
    let gm1 = 2.0 * PI * target.gbw_hz * cm1;
    let gm2 = 2.0 * gm1;
    let gm3 = 8.0 * gm1;
    let gm4 = 2.0 * gm1;
    let cm3 = 1e-12;
    DfcParameters {
        gm1: Siemens(gm1),
        gm2: Siemens(gm2),
        gm3: Siemens(gm3),
        gm4: Siemens(gm4),
        cm1: Farads(cm1),
        cm3: Farads(cm3),
    }
}

/// Builds the DFC-modified topology for a large-load target.
#[allow(clippy::expect_used)] // fixed recipe; placements legal by construction
pub fn dfc_topology(target: &DesignTarget) -> Topology {
    let p = dfc_parameters(target);
    let (a1, a2, a3) = intrinsic_gains_for(target.gain_db);
    let skeleton = Skeleton::new(
        StageParams::from_gm_and_gain(p.gm1.value(), a1),
        StageParams::from_gm_and_gain(p.gm2.value(), a2),
        StageParams::from_gm_and_gain(p.gm3.value(), a3),
        target.rl,
        target.cl,
    );
    let mut topo = Topology::new(skeleton);
    topo.place(Placement::new(
        Position::N1ToOut,
        ConnectionType::MillerCapacitor,
        ConnectionParams::c(p.cm1.value()),
    ))
    .expect("Miller capacitor is legal at N1ToOut");
    topo.place(Placement::new(
        Position::ShuntN1,
        ConnectionType::Dfc,
        ConnectionParams {
            c: Some(p.cm3),
            gm: Some(p.gm4),
            r: None,
        },
    ))
    .expect("DFC block is legal at ShuntN1");
    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g1_target() -> DesignTarget {
        DesignTarget {
            gbw_hz: 1e6,
            cl: 10e-12,
            rl: 1e6,
            gain_db: 85.0,
            power_budget_w: 250e-6,
        }
    }

    #[test]
    fn nmc_parameters_match_paper_worked_example() {
        // A3 of Fig. 7: GBW = 1 MHz, CL = 10 pF →
        // gm3 = 8π·GBW·CL = 251.2 µS (here with up to +15% pole-spread
        // safety when the budget allows), Cm1 = 4 pF, Cm2 = 3 pF,
        // gm1 = 25.12 µS, gm2 = 37.68 µS.
        let p = nmc_parameters(&g1_target());
        let gm3_base = 251.2e-6;
        assert!(
            p.gm3.value() >= gm3_base * 0.99 && p.gm3.value() <= gm3_base * 1.16,
            "{}",
            p.gm3
        );
        assert!((p.cm1.value() - 4e-12).abs() < 1e-15);
        assert!((p.cm2.value() - 3e-12).abs() < 1e-15);
        assert!((p.gm1.value() - 25.12e-6).abs() / 25.12e-6 < 1e-2);
        assert!((p.gm2.value() - 37.68e-6).abs() / 37.68e-6 < 1e-2);
    }

    #[test]
    fn butterworth_ratios_hold() {
        let p = nmc_parameters(&g1_target());
        // GBW = gm1/(2π·Cm1)
        let gbw = p.gm1.value() / (2.0 * PI * p.cm1.value());
        assert!((gbw - 1e6).abs() / 1e6 < 1e-9);
        // gm1/gm2 follow the Butterworth relations against the unboosted
        // gm3 = 8π·GBW·CL.
        let gm3_base = 8.0 * PI * 1e6 * 10e-12;
        assert!((p.gm1.value() / gm3_base - p.cm1.value() / (4.0 * 10e-12)).abs() < 1e-9);
        assert!((p.gm2.value() / gm3_base - p.cm2.value() / (2.0 * 10e-12)).abs() < 1e-9);
    }

    #[test]
    fn nmc_topology_is_valid_and_nested() {
        let topo = nmc_topology(&g1_target());
        topo.validate().unwrap();
        assert_eq!(
            topo.connection_at(Position::N1ToOut),
            ConnectionType::MillerCapacitor
        );
        assert_eq!(
            topo.connection_at(Position::N2ToOut),
            ConnectionType::MillerCapacitor
        );
    }

    #[test]
    fn high_gain_target_raises_intrinsic_gain() {
        let (a1_lo, ..) = intrinsic_gains_for(85.0);
        let (a1_hi, ..) = intrinsic_gains_for(110.0);
        assert!(a1_hi > a1_lo);
    }

    #[test]
    fn dfc_gm3_is_load_independent() {
        // The damping block decouples the output stage from C_L: the
        // whole point of the Q9/A9 modification.
        let small = dfc_parameters(&DesignTarget {
            cl: 10e-12,
            ..g1_target()
        });
        let large = dfc_parameters(&DesignTarget {
            cl: 1000e-12,
            ..g1_target()
        });
        assert!((large.gm3.value() - small.gm3.value()).abs() < 1e-15);
        assert!((small.gm3.value() / small.gm1.value() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn tight_power_budget_shrinks_compensation() {
        let roomy = nmc_parameters(&g1_target());
        let tight = nmc_parameters(&DesignTarget {
            gbw_hz: 5.5e6,
            power_budget_w: 250e-6,
            ..g1_target()
        });
        // High-GBW target under the same budget → smaller caps.
        assert!(tight.cm1.value() < roomy.cm1.value());
        // GBW relation is preserved regardless of allocation.
        let gbw = tight.gm1.value() / (2.0 * PI * tight.cm1.value());
        assert!((gbw - 5.5e6).abs() / 5.5e6 < 1e-9);
    }

    #[test]
    fn dfc_topology_contains_block_and_single_miller() {
        let topo = dfc_topology(&DesignTarget {
            cl: 1e-9,
            gbw_hz: 0.9e6,
            rl: 1e6,
            gain_db: 85.0,
            power_budget_w: 250e-6,
        });
        topo.validate().unwrap();
        assert_eq!(topo.connection_at(Position::ShuntN1), ConnectionType::Dfc);
        assert_eq!(topo.connection_at(Position::N2ToOut), ConnectionType::Open);
    }

    #[test]
    #[should_panic(expected = "positive GBW")]
    fn bad_target_panics() {
        nmc_parameters(&DesignTarget {
            gbw_hz: 0.0,
            ..g1_target()
        });
    }
}
