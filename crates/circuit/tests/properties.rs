//! Property-based tests: the netlist text format and the rule-based
//! annotator must be total over the sampled design space.

use artisan_circuit::sample::{sample_topology, SampleRanges};
use artisan_circuit::{describe, ConnectionType, Netlist, NetlistTuple, Position, PositionRules};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every sampled topology's netlist text parses back to the same
    /// element structure (labels, nodes, values within format precision).
    #[test]
    fn netlist_text_roundtrip(seed in 0u64..5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = sample_topology(&mut rng, &SampleRanges::default(), 10e-12);
        let netlist = topo.elaborate().expect("valid");
        let text = netlist.to_text();
        let back = Netlist::parse(&text).expect("parses");
        prop_assert_eq!(back.element_count(), netlist.element_count());
        for (a, b) in netlist.elements().iter().zip(back.elements()) {
            prop_assert_eq!(a.label(), b.label());
            prop_assert_eq!(a.nodes(), b.nodes());
            let rel = ((a.value() - b.value()) / a.value()).abs();
            prop_assert!(rel < 1e-3, "{}: {} vs {}", a.label(), a.value(), b.value());
        }
    }

    /// The description mentions the engineering role of every non-open
    /// placement (bidirectional alignment must not drop structure).
    #[test]
    fn description_covers_every_placement(seed in 0u64..5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = sample_topology(&mut rng, &SampleRanges::default(), 10e-12);
        let tuple = NetlistTuple::from_topology(&topo);
        for p in topo.placements() {
            if p.connection == ConnectionType::Open {
                continue;
            }
            let role = describe::connection_role(p.connection);
            // The first clause of the role sentence must appear verbatim.
            let head: String = role.split(" with ").next().unwrap_or(role).to_string();
            prop_assert!(
                tuple.description().contains(&head),
                "description missing role `{}`:\n{}",
                head,
                tuple.description()
            );
        }
    }

    /// Sampled connections always satisfy the position legality rules.
    #[test]
    fn sampled_placements_are_legal(seed in 0u64..5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = sample_topology(&mut rng, &SampleRanges::default(), 1e-9);
        for p in topo.placements() {
            prop_assert!(PositionRules::allows(p.position, p.connection));
        }
    }

    /// Every position's legal set is nonempty and a subset of the 25.
    #[test]
    fn legal_sets_are_well_formed(idx in 0usize..7) {
        let pos = Position::ALL[idx];
        let legal = PositionRules::legal_types(pos);
        prop_assert!(!legal.is_empty());
        prop_assert!(legal.len() <= 25);
        prop_assert!(legal.contains(&ConnectionType::Open));
    }
}
