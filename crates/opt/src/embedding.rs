//! The continuous topology embedding BOBO searches over.
//!
//! BOBO [12] optimizes opamp topologies "in continuous space via graph
//! embedding": a fixed-length real vector encodes both the discrete
//! connection choices and the component values. Our embedding, decoded
//! from the unit hypercube:
//!
//! - one coordinate per tunable position selecting among its legal
//!   connection types (uniform bins),
//! - three log-scaled coordinates per position for (R, C, gm),
//! - six coordinates for the three stages' (gm, intrinsic gain).
//!
//! Dimension: `7·4 + 6 = 34`.

use artisan_circuit::sample::SampleRanges;
use artisan_circuit::units::{Farads, Ohms, Siemens};
use artisan_circuit::{
    ConnectionParams, Placement, Position, PositionRules, Skeleton, StageParams, Topology,
};

/// Embedding dimensionality.
pub const DIM: usize = 7 * 4 + 6;

fn log_decode(u: f64, lo: f64, hi: f64) -> f64 {
    (lo.ln() + u.clamp(0.0, 1.0) * (hi.ln() - lo.ln())).exp()
}

/// Decodes a point of `[0,1]^DIM` into a legal topology with load `cl`.
///
/// # Panics
///
/// Panics when `x.len() != DIM`.
pub fn decode(x: &[f64], cl: f64, ranges: &SampleRanges) -> Topology {
    assert_eq!(x.len(), DIM, "embedding has {} coordinates", DIM);
    let stage = |gm_u: f64, gain_u: f64| {
        StageParams::from_gm_and_gain(
            log_decode(gm_u, ranges.stage_gm.0, ranges.stage_gm.1),
            log_decode(gain_u, ranges.stage_gain.0, ranges.stage_gain.1),
        )
    };
    let base = 7 * 4;
    let skeleton = Skeleton::new(
        stage(x[base], x[base + 1]),
        stage(x[base + 2], x[base + 3]),
        stage(x[base + 4], x[base + 5]),
        1e6,
        cl,
    );
    let mut topo = Topology::new(skeleton);
    for (k, pos) in Position::ALL.iter().enumerate() {
        let legal = PositionRules::legal_types(*pos);
        let sel = (x[k * 4].clamp(0.0, 1.0 - 1e-9) * legal.len() as f64) as usize;
        let conn = legal[sel];
        if conn == artisan_circuit::ConnectionType::Open {
            continue;
        }
        let params = ConnectionParams {
            r: conn
                .needs_r()
                .then(|| Ohms(log_decode(x[k * 4 + 1], ranges.r.0, ranges.r.1))),
            c: conn
                .needs_c()
                .then(|| Farads(log_decode(x[k * 4 + 2], ranges.c.0, ranges.c.1))),
            gm: conn
                .needs_gm()
                .then(|| Siemens(log_decode(x[k * 4 + 3], ranges.gm.0, ranges.gm.1))),
        };
        #[allow(clippy::expect_used)] // decode maps into each position's legal set
        topo.place(Placement::new(*pos, conn, params))
            .expect("decoded connection is legal by construction");
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn decoded_topologies_always_validate() {
        let mut rng = StdRng::seed_from_u64(0);
        let ranges = SampleRanges::default();
        for _ in 0..200 {
            let x: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect();
            let t = decode(&x, 10e-12, &ranges);
            t.validate().expect("decoded topology valid");
        }
    }

    #[test]
    fn zero_vector_decodes_to_bare_skeleton() {
        // Coordinate 0 selects the first legal type at each position,
        // which is always Open.
        let x = vec![0.0; DIM];
        let t = decode(&x, 10e-12, &SampleRanges::default());
        assert!(t.placements().is_empty());
    }

    #[test]
    fn decoding_is_deterministic_and_sensitive() {
        let ranges = SampleRanges::default();
        let mut a = vec![0.5; DIM];
        let t1 = decode(&a, 10e-12, &ranges);
        let t2 = decode(&a, 10e-12, &ranges);
        assert_eq!(t1, t2);
        a[0] = 0.95;
        let t3 = decode(&a, 10e-12, &ranges);
        assert_ne!(t1, t3);
    }

    #[test]
    #[should_panic(expected = "coordinates")]
    fn wrong_dimension_panics() {
        decode(&[0.5; 3], 10e-12, &SampleRanges::default());
    }

    #[test]
    fn boundary_coordinates_are_safe() {
        let ranges = SampleRanges::default();
        decode(&vec![1.0; DIM], 10e-12, &ranges)
            .validate()
            .expect("all-ones decodes legally");
    }
}
