//! Expected-improvement Bayesian optimization over the unit hypercube.

use crate::gp::{GaussianProcess, GpHyperParams};
use rand::Rng;

/// Standard normal PDF.
fn phi(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max error ≈ 1.5e-7 — far below acquisition noise).
fn big_phi(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erf = if x >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + erf)
}

/// Expected improvement of a maximization problem at posterior
/// `(mean, variance)` over the incumbent `best`.
pub fn expected_improvement(mean: f64, variance: f64, best: f64) -> f64 {
    let sd = variance.sqrt().max(1e-12);
    let z = (mean - best) / sd;
    (mean - best) * big_phi(z) + sd * phi(z)
}

/// One BO proposal step: fit a GP on the history and return the
/// candidate (from a random pool of `pool` points in `[0,1]^dim`) with
/// maximal expected improvement. Falls back to a random point when the
/// GP cannot be fitted (e.g. a single observation).
pub fn propose<R: Rng + ?Sized>(
    history_x: &[Vec<f64>],
    history_y: &[f64],
    dim: usize,
    pool: usize,
    hp: GpHyperParams,
    rng: &mut R,
) -> Vec<f64> {
    let random_point =
        |rng: &mut R| -> Vec<f64> { (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect() };

    if history_x.len() < 2 {
        return random_point(rng);
    }
    let Ok(gp) = GaussianProcess::fit(history_x, history_y, hp) else {
        return random_point(rng);
    };
    let best = history_y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut best_candidate = random_point(rng);
    let mut best_ei = f64::NEG_INFINITY;
    for _ in 0..pool {
        let c = random_point(rng);
        let (m, v) = gp.predict(&c);
        let ei = expected_improvement(m, v, best);
        if ei > best_ei {
            best_ei = ei;
            best_candidate = c;
        }
    }
    best_candidate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_cdf_sanity() {
        assert!((big_phi(0.0) - 0.5).abs() < 1e-7);
        assert!((big_phi(1.96) - 0.975).abs() < 1e-3);
        assert!((big_phi(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn ei_is_positive_and_monotone_in_mean() {
        let lo = expected_improvement(0.0, 1.0, 1.0);
        let hi = expected_improvement(2.0, 1.0, 1.0);
        assert!(lo > 0.0);
        assert!(hi > lo);
    }

    #[test]
    fn ei_vanishes_with_certainty_below_best() {
        let ei = expected_improvement(0.0, 1e-18, 1.0);
        assert!(ei < 1e-9);
    }

    #[test]
    fn bo_finds_the_peak_of_a_smooth_function() {
        // Maximize f(x) = −(x−0.7)² on [0,1].
        let f = |x: &[f64]| -(x[0] - 0.7) * (x[0] - 0.7);
        let mut rng = StdRng::seed_from_u64(1);
        let mut xs: Vec<Vec<f64>> = vec![vec![0.1], vec![0.9]];
        let mut ys: Vec<f64> = xs.iter().map(|x| f(x)).collect();
        for _ in 0..25 {
            let c = propose(&xs, &ys, 1, 200, GpHyperParams::default(), &mut rng);
            ys.push(f(&c));
            xs.push(c);
        }
        let best_x = xs[ys
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0][0];
        assert!((best_x - 0.7).abs() < 0.08, "best {best_x}");
    }

    #[test]
    fn proposals_stay_in_unit_cube() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs = vec![vec![0.2, 0.3], vec![0.8, 0.1], vec![0.5, 0.9]];
        let ys = vec![0.1, 0.5, 0.2];
        for _ in 0..20 {
            let c = propose(&xs, &ys, 2, 50, GpHyperParams::default(), &mut rng);
            assert_eq!(c.len(), 2);
            assert!(c.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn insufficient_history_falls_back_to_random() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = propose(&[], &[], 3, 10, GpHyperParams::default(), &mut rng);
        assert_eq!(c.len(), 3);
    }
}
