//! Baseline methods for the Table 3 comparison (§4.1.1).
//!
//! - [`gp`] + [`bo`] — a from-scratch Gaussian-process Bayesian
//!   optimizer (RBF kernel, Cholesky solves, expected improvement),
//! - [`embedding`] — the continuous topology embedding BOBO searches
//!   over (one coordinate per tunable position's connection choice plus
//!   log-scaled component values and stage parameters),
//! - [`bobo`] — **BOBO** [12]: GP-BO over the topology embedding,
//! - [`rlbo`] — **RLBO** [3]: a REINFORCE policy over connection-type
//!   choices with random parameter sampling per candidate,
//! - [`llm_baselines`] — off-the-shelf **GPT-4** and **Llama2**
//!   simulators reproducing the error modes the paper documents in
//!   Fig. 7 (right architecture but wrong dominant-pole formula; generic
//!   voltage-follower advice), so their Table 3 failures arise
//!   mechanistically from the simulator,
//! - [`objective`] — the shared constrained objective (Eq. 1 with the
//!   FoM of Eq. 6).
//!
//! # Example
//!
//! ```
//! use artisan_opt::bobo::{Bobo, BoboConfig};
//! use artisan_sim::{Simulator, Spec};
//! use rand::SeedableRng;
//!
//! let mut sim = Simulator::new();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let result = Bobo::new(BoboConfig { budget: 30, ..BoboConfig::default() })
//!     .run(&Spec::g1(), &mut sim, &mut rng);
//! assert!(result.evaluations <= 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bo;
pub mod bobo;
pub mod embedding;
pub mod gp;
pub mod llm_baselines;
pub mod objective;
pub mod rlbo;

pub use bobo::{Bobo, BoboConfig};
pub use llm_baselines::{Gpt4Baseline, Llama2Baseline, OffTheShelfLlm};
pub use objective::{Objective, OptResult};
pub use rlbo::{Rlbo, RlboConfig};
