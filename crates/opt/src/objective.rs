//! The shared constrained objective (Eq. 1): maximize the FoM of Eq. (6)
//! subject to the Table 2 spec constraints.

use artisan_circuit::Topology;
use artisan_sim::{Performance, SimBackend, Spec};

/// Scalarized objective value for one evaluated candidate.
///
/// Feasible designs score their FoM; infeasible designs score the
/// negative sum of relative constraint violations — the standard
/// feasibility-first scalarization black-box optimizers use for Eq. (1).
pub fn score(perf: &Performance, spec: &Spec, stable: bool) -> f64 {
    if !stable {
        return -10.0;
    }
    let report = spec.check(perf);
    if report.success() {
        perf.fom
    } else {
        let violation: f64 = report
            .checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| {
                // Normalize each metric's shortfall to a comparable scale.
                match c.metric {
                    "Gain" => (-c.margin / 20.0).min(3.0),
                    "PM" => (-c.margin / 30.0).min(3.0),
                    _ => (-c.margin).min(3.0),
                }
            })
            .sum();
        -violation
    }
}

/// A candidate evaluation: simulate, check, score.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The scalarized objective.
    pub score: f64,
    /// Measured performance (absent when simulation failed).
    pub performance: Option<Performance>,
    /// Whether every constraint held.
    pub feasible: bool,
}

/// Evaluates one topology under a spec, billing the simulation. Generic
/// over the backend so optimizers run unchanged against the plain
/// simulator or a fault-injected wrapper; a non-finite (poisoned) report
/// is treated like a failed simulation rather than let +∞ metrics win
/// the feasibility check.
pub fn evaluate<B: SimBackend + ?Sized>(topo: &Topology, spec: &Spec, sim: &mut B) -> Evaluation {
    match sim.analyze_topology(topo) {
        Ok(report) if report.performance.is_finite() => {
            let feasible = spec.check(&report.performance).success() && report.stable;
            Evaluation {
                score: score(&report.performance, spec, report.stable),
                performance: Some(report.performance),
                feasible,
            }
        }
        Ok(_) | Err(_) => Evaluation {
            score: -10.0,
            performance: None,
            feasible: false,
        },
    }
}

/// Evaluates many independent candidates in one [`SimBackend::analyze_batch`]
/// call, returning one [`Evaluation`] per topology in input order. The
/// per-candidate mapping is exactly [`evaluate`]'s, and the backend
/// contract guarantees batch results identical to the serial loop — so
/// optimizers can swap their inner evaluation loops for this without
/// changing a single trajectory, while a parallel backend fans the
/// solves over its thread pool.
pub fn evaluate_batch<B: SimBackend + ?Sized>(
    topos: &[Topology],
    spec: &Spec,
    sim: &mut B,
) -> Vec<Evaluation> {
    sim.analyze_batch(topos)
        .into_iter()
        .map(|result| match result {
            Ok(report) if report.performance.is_finite() => {
                let feasible = spec.check(&report.performance).success() && report.stable;
                Evaluation {
                    score: score(&report.performance, spec, report.stable),
                    performance: Some(report.performance),
                    feasible,
                }
            }
            Ok(_) | Err(_) => Evaluation {
                score: -10.0,
                performance: None,
                feasible: false,
            },
        })
        .collect()
}

/// Trait implemented by every Table 3 method: run a design attempt under
/// a budget and report the outcome. Takes a `dyn` backend so one trait
/// object covers the plain simulator and every wrapper.
pub trait Objective {
    /// Runs the method against `spec`, billing all work to `sim`.
    fn optimize(
        &mut self,
        spec: &Spec,
        sim: &mut dyn SimBackend,
        rng: &mut dyn rand::RngCore,
    ) -> OptResult;
}

/// The outcome of one optimization/design trial.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Whether the returned design clears every constraint.
    pub success: bool,
    /// The best topology found.
    pub topology: Option<Topology>,
    /// Its measured performance.
    pub performance: Option<Performance>,
    /// Simulator evaluations consumed.
    pub evaluations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use artisan_circuit::units::{Decibels, Degrees, Hertz, Watts};
    use artisan_sim::Simulator;

    fn perf(gain: f64, gbw: f64, pm: f64, power: f64) -> Performance {
        Performance {
            gain: Decibels(gain),
            gbw: Hertz(gbw),
            pm: Degrees(pm),
            power: Watts(power),
            fom: Performance::fom_of(gbw, 10e-12, power),
        }
    }

    #[test]
    fn feasible_designs_score_their_fom() {
        let p = perf(100.0, 1e6, 60.0, 50e-6);
        let s = score(&p, &Spec::g1(), true);
        assert!((s - p.fom).abs() < 1e-12);
    }

    #[test]
    fn infeasible_scores_are_negative_and_ordered() {
        let close = score(&perf(84.0, 1e6, 60.0, 50e-6), &Spec::g1(), true);
        let far = score(&perf(40.0, 1e6, 60.0, 50e-6), &Spec::g1(), true);
        assert!(close < 0.0 && far < close);
    }

    #[test]
    fn instability_is_worst() {
        let s = score(&perf(100.0, 1e6, 60.0, 50e-6), &Spec::g1(), false);
        assert_eq!(s, -10.0);
    }

    #[test]
    fn evaluate_bills_the_simulator() {
        let mut sim = Simulator::new();
        let e = evaluate(&Topology::nmc_example(), &Spec::g1(), &mut sim);
        assert!(e.feasible, "{e:?}");
        assert!(e.score > 0.0);
        assert_eq!(sim.ledger().simulations(), 1);
    }

    #[test]
    fn evaluate_batch_matches_the_serial_loop() {
        let mut bare = Topology::nmc_example();
        bare.clear_position(artisan_circuit::Position::N1ToOut);
        bare.clear_position(artisan_circuit::Position::N2ToOut);
        let topos = vec![Topology::nmc_example(), Topology::dfc_example(), bare];
        let mut serial_sim = Simulator::new();
        let serial: Vec<Evaluation> = topos
            .iter()
            .map(|t| evaluate(t, &Spec::g1(), &mut serial_sim))
            .collect();
        let mut batch_sim = Simulator::new();
        let batch = evaluate_batch(&topos, &Spec::g1(), &mut batch_sim);
        assert_eq!(batch.len(), serial.len());
        for (b, s) in batch.iter().zip(&serial) {
            assert_eq!(b.score, s.score);
            assert_eq!(b.performance, s.performance);
            assert_eq!(b.feasible, s.feasible);
        }
        assert_eq!(
            batch_sim.ledger().simulations(),
            serial_sim.ledger().simulations()
        );
        assert_eq!(batch_sim.ledger().batched_solves(), topos.len() as u64);
    }

    #[test]
    fn degenerate_topology_evaluates_to_penalty() {
        let mut sim = Simulator::new();
        // A bare skeleton with enormous gain and no compensation usually
        // still simulates; use an un-analyzable empty netlist instead by
        // breaking the load: cl = tiny is still fine, so just check an
        // uncompensated design scores worse than the NMC example.
        let good = evaluate(&Topology::nmc_example(), &Spec::g1(), &mut sim).score;
        let mut bare = Topology::nmc_example();
        bare.clear_position(artisan_circuit::Position::N1ToOut);
        bare.clear_position(artisan_circuit::Position::N2ToOut);
        let bad = evaluate(&bare, &Spec::g1(), &mut sim).score;
        assert!(bad < good);
    }
}
