//! BOBO [12]: Bayesian optimization of opamp topology in continuous
//! space via the graph embedding of [`crate::embedding`].
//!
//! The loop: an initial random design of experiments, then GP-fit +
//! expected-improvement proposals until the simulation budget is
//! exhausted. Every candidate costs one (Spectre-equivalent) simulation
//! and one optimizer step — which is exactly why Table 3 charges BOBO
//! hours where Artisan needs minutes.

use crate::bo::propose;
use crate::embedding::{decode, DIM};
use crate::gp::GpHyperParams;
use crate::objective::{evaluate_batch, Evaluation, Objective, OptResult};
use artisan_circuit::sample::SampleRanges;
use artisan_circuit::Topology;
use artisan_sim::{SimBackend, Spec};
use rand::Rng;

/// BOBO configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoboConfig {
    /// Total simulation budget per trial (the paper's runs imply
    /// several hundred).
    pub budget: usize,
    /// Random initial samples before the GP takes over.
    pub initial_samples: usize,
    /// Acquisition candidate-pool size.
    pub pool: usize,
    /// GP hyperparameters.
    pub gp: GpHyperParams,
    /// Sliding-window cap on the GP training set: the Cholesky fit is
    /// O(n³), so the surrogate sees the most recent `gp_window` points
    /// plus the incumbent best — standard large-budget BO practice.
    pub gp_window: usize,
}

impl Default for BoboConfig {
    fn default() -> Self {
        BoboConfig {
            budget: 450,
            initial_samples: 50,
            pool: 400,
            gp: GpHyperParams {
                lengthscale: 0.45,
                signal_variance: 1.0,
                noise_variance: 1e-3,
            },
            gp_window: 160,
        }
    }
}

/// The BOBO optimizer.
#[derive(Debug, Clone)]
pub struct Bobo {
    config: BoboConfig,
    ranges: SampleRanges,
}

impl Bobo {
    /// Creates the optimizer.
    pub fn new(config: BoboConfig) -> Self {
        Bobo {
            config,
            ranges: SampleRanges::default(),
        }
    }

    /// Runs one optimization trial against any simulation backend.
    pub fn run<B: SimBackend + ?Sized, R: Rng + ?Sized>(
        &self,
        spec: &Spec,
        sim: &mut B,
        rng: &mut R,
    ) -> OptResult {
        let cl = spec.cl.value();
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut best: Option<(f64, Topology, Evaluation)> = None;

        // Absorbs one evaluated candidate exactly as the serial loop
        // did: squash the GP target, track the incumbent, then record
        // the point.
        let absorb = |x: Vec<f64>,
                      topo: Topology,
                      eval: Evaluation,
                      xs: &mut Vec<Vec<f64>>,
                      ys: &mut Vec<f64>,
                      best: &mut Option<(f64, Topology, Evaluation)>| {
            // GP targets: squash feasible FoM into a bounded scale so a
            // single huge FoM does not flatten the surrogate.
            let y = if eval.score > 0.0 {
                1.0 + eval.score.ln_1p() * 0.1
            } else {
                eval.score.max(-10.0) / 10.0
            };
            if best.as_ref().is_none_or(|(s, _, _)| eval.score > *s) {
                *best = Some((eval.score, topo, eval));
            }
            xs.push(x);
            ys.push(y);
        };

        // Phase 1 — initial design of experiments. The draws are
        // independent of any evaluation, so the whole DoE can be drawn
        // up front (identical RNG stream) and fanned out through one
        // `analyze_batch` call; absorbing in index order reproduces the
        // serial trajectory bit for bit.
        let doe = self.config.initial_samples.min(self.config.budget);
        let doe_xs: Vec<Vec<f64>> = (0..doe)
            .map(|_| (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let doe_topos: Vec<Topology> = doe_xs.iter().map(|x| decode(x, cl, &self.ranges)).collect();
        let evals = evaluate_batch(&doe_topos, spec, sim);
        for ((x, topo), eval) in doe_xs.into_iter().zip(doe_topos).zip(evals) {
            absorb(x, topo, eval, &mut xs, &mut ys, &mut best);
        }

        // Phase 2 — GP proposals, inherently sequential: each proposal
        // conditions on every previous observation.
        for _ in doe..self.config.budget {
            sim.ledger_mut().record_optimizer_step();
            // Sliding window: recent points plus the incumbent best.
            let window = self.config.gp_window.max(2);
            let start = xs.len().saturating_sub(window);
            let mut wx: Vec<Vec<f64>> = xs[start..].to_vec();
            let mut wy: Vec<f64> = ys[start..].to_vec();
            if let Some(best_idx) = ys
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
            {
                if best_idx < start {
                    wx.push(xs[best_idx].clone());
                    wy.push(ys[best_idx]);
                }
            }
            let x = propose(&wx, &wy, DIM, self.config.pool, self.config.gp, rng);
            let topo = decode(&x, cl, &self.ranges);
            let eval = evaluate_batch(std::slice::from_ref(&topo), spec, sim)
                .pop()
                .unwrap_or_else(|| Evaluation {
                    score: -10.0,
                    performance: None,
                    feasible: false,
                });
            absorb(x, topo, eval, &mut xs, &mut ys, &mut best);
        }

        match best {
            Some((_, topology, eval)) => OptResult {
                success: eval.feasible,
                performance: eval.performance,
                topology: Some(topology),
                evaluations: self.config.budget,
            },
            None => OptResult {
                success: false,
                topology: None,
                performance: None,
                evaluations: self.config.budget,
            },
        }
    }
}

impl Objective for Bobo {
    fn optimize(
        &mut self,
        spec: &Spec,
        sim: &mut dyn SimBackend,
        rng: &mut dyn rand::RngCore,
    ) -> OptResult {
        self.run(spec, sim, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artisan_sim::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> BoboConfig {
        BoboConfig {
            budget: 40,
            initial_samples: 15,
            pool: 60,
            ..BoboConfig::default()
        }
    }

    #[test]
    fn respects_budget_and_bills_simulations() {
        let mut sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(0);
        let r = Bobo::new(tiny()).run(&Spec::g1(), &mut sim, &mut rng);
        assert_eq!(r.evaluations, 40);
        assert_eq!(sim.ledger().simulations(), 40);
        assert!(sim.ledger().optimizer_steps() > 0);
    }

    #[test]
    fn returns_the_best_seen_candidate() {
        let mut sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(1);
        let r = Bobo::new(tiny()).run(&Spec::g1(), &mut sim, &mut rng);
        assert!(r.topology.is_some());
        // Success is not guaranteed at this budget, but the result must
        // be internally consistent.
        if r.success {
            assert!(r.performance.is_some());
        }
    }

    #[test]
    fn is_deterministic_per_seed() {
        let run = |seed| {
            let mut sim = Simulator::new();
            let mut rng = StdRng::seed_from_u64(seed);
            Bobo::new(tiny())
                .run(&Spec::g1(), &mut sim, &mut rng)
                .success
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn batched_doe_matches_the_serial_loop() {
        use crate::objective::evaluate;
        // Pure-DoE config: every candidate goes through the one
        // analyze_batch fan-out. The result must equal a hand-written
        // serial loop drawing the same RNG stream.
        let config = BoboConfig {
            budget: 12,
            initial_samples: 12,
            ..tiny()
        };
        let spec = Spec::g1();
        let mut sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(3);
        let r = Bobo::new(config).run(&spec, &mut sim, &mut rng);

        let ranges = SampleRanges::default();
        let mut ref_sim = Simulator::new();
        let mut ref_rng = StdRng::seed_from_u64(3);
        let mut best: Option<(f64, crate::objective::Evaluation)> = None;
        for _ in 0..12 {
            let x: Vec<f64> = (0..DIM).map(|_| ref_rng.gen_range(0.0..1.0)).collect();
            let topo = decode(&x, spec.cl.value(), &ranges);
            let eval = evaluate(&topo, &spec, &mut ref_sim);
            if best.as_ref().is_none_or(|(s, _)| eval.score > *s) {
                best = Some((eval.score, eval));
            }
        }
        let (_, expected) = best.unwrap_or_else(|| panic!("reference loop evaluated"));
        assert_eq!(r.performance, expected.performance);
        assert_eq!(r.success, expected.feasible);
        assert_eq!(
            sim.ledger().simulations(),
            ref_sim.ledger().simulations(),
            "batching must not change billed simulations"
        );
        assert_eq!(sim.ledger().batched_solves(), 12);
    }

    #[test]
    fn tiny_budget_rarely_succeeds_on_g4() {
        // The shape behind Table 3: the low-power corner defeats random
        // exploration.
        let mut successes = 0;
        for seed in 0..5 {
            let mut sim = Simulator::new();
            let mut rng = StdRng::seed_from_u64(seed);
            if Bobo::new(tiny())
                .run(&Spec::g4(), &mut sim, &mut rng)
                .success
            {
                successes += 1;
            }
        }
        assert!(successes <= 1, "G-4 succeeded {successes}/5 at tiny budget");
    }
}
