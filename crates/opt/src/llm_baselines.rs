//! Off-the-shelf LLM baselines (GPT-4, Llama2) with the error modes the
//! paper documents in Fig. 7.
//!
//! The paper reports that both models "consistently fail to design
//! opamps in any instance", and its chat logs show *why*:
//!
//! - **GPT-4** recommends the right topology (NMC) but derives the
//!   dominant pole incorrectly (`p1 = gm3/CL`), which mis-sizes every
//!   stage, and suggests MPMC for the 1 nF load — an architecture that
//!   cannot drive it;
//! - **Llama2** offers generic advice (voltage-follower stages,
//!   resistor formulas irrelevant to compensation).
//!
//! These agents reproduce those documented behaviours as *mechanism*:
//! they emit concrete (wrong) designs which the simulator then fails,
//! rather than being hard-coded to lose.

use crate::objective::{Objective, OptResult};
use artisan_circuit::{
    ConnectionParams, ConnectionType, Placement, Position, Skeleton, StageParams, Topology,
};
use artisan_sim::{SimBackend, Spec};
use std::f64::consts::PI;

/// Which off-the-shelf model to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffTheShelfLlm {
    /// GPT-4: plausible architecture, wrong quantitative derivation.
    Gpt4,
    /// Llama2-7b-chat: generic, unquantified advice.
    Llama2,
}

/// The GPT-4 baseline agent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gpt4Baseline;

impl Gpt4Baseline {
    /// Produces GPT-4's design for a spec, following Fig. 7's A0–A9:
    /// it *names* NMC, but its zero-pole analysis is wrong — "the
    /// dominant pole is determined by the output stage and the load:
    /// p1 = gm3/CL". Believing the load pole dominates, it sizes the
    /// output stage to put `gm3/(2π·CL)` at the target GBW and places
    /// **no internal Miller compensation at all** (in its model the
    /// higher poles are "due to compensation" that the load already
    /// provides). Three uncompensated high-gain stages collapse the
    /// phase margin.
    #[allow(clippy::expect_used)] // fixed baseline recipe; placements legal
    pub fn design(&self, spec: &Spec) -> (Topology, Vec<String>) {
        let cl = spec.cl.value();
        // Wrong derivation: set the "dominant" load pole at the GBW.
        let gm3 = 2.0 * PI * spec.gbw_min_hz * cl;
        let gm1 = gm3; // "symmetric stages simplify the analysis"
        let gm2 = gm3;
        let skeleton = Skeleton::new(
            StageParams::from_gm_and_gain(gm1, 60.0),
            StageParams::from_gm_and_gain(gm2, 60.0),
            StageParams::from_gm_and_gain(gm3, 60.0),
            1e6,
            cl,
        );
        let mut topo = Topology::new(skeleton);
        // For large loads GPT-4 suggests MPMC: an extra multipath gm
        // stage instead of damping — it cannot rescue the output pole.
        if cl > 100e-12 {
            topo.place(Placement::new(
                Position::InToN2,
                ConnectionType::PosGm,
                ConnectionParams::gm(gm1),
            ))
            .expect("legal placement");
        }
        let log = vec![
            "A0: NMC: Nested Miller Compensation is particularly effective for multi-stage \
             amplifiers, providing better PM and frequency compensation in three-stage cases."
                .to_string(),
            "A1: The dominant pole is determined by the output stage and the load: \
             p1 = gm3/CL. Non-dominant poles are higher due to compensation."
                .to_string(),
            "A9: Increase the compensation capacitance values to handle a larger load, \
             which may impact bandwidth. Consider the multi-path Miller compensation \
             (MPMC) technique to add a new path for the compensation."
                .to_string(),
        ];
        (topo, log)
    }
}

impl Objective for Gpt4Baseline {
    fn optimize(
        &mut self,
        spec: &Spec,
        sim: &mut dyn SimBackend,
        _rng: &mut dyn rand::RngCore,
    ) -> OptResult {
        let (topo, _) = self.design(spec);
        sim.ledger_mut().record_llm_step();
        let eval = crate::objective::evaluate(&topo, spec, sim);
        OptResult {
            success: eval.feasible,
            performance: eval.performance,
            topology: Some(topo),
            evaluations: 1,
        }
    }
}

/// The Llama2-7b-chat baseline agent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Llama2Baseline;

impl Llama2Baseline {
    /// Produces Llama2's design: "Stage 1: current feedback opamp…
    /// Stage 2: voltage follower… Stage 3: voltage follower" — i.e.
    /// near-unity-gain buffers after the first stage, with no
    /// compensation at all. The cascade cannot reach 85 dB.
    pub fn design(&self, spec: &Spec) -> (Topology, Vec<String>) {
        let cl = spec.cl.value();
        let skeleton = Skeleton::new(
            StageParams::from_gm_and_gain(100e-6, 40.0),
            // Voltage followers: intrinsic gain ≈ 1.
            StageParams::from_gm_and_gain(100e-6, 1.0),
            StageParams::from_gm_and_gain(100e-6, 1.0),
            1e6,
            cl,
        );
        let topo = Topology::new(skeleton);
        let log = vec![
            "A0: You can use a multi-stage opamp architecture… Stage 1: current feedback \
             opamp… Stage 2: voltage follower… Stage 3: voltage follower."
                .to_string(),
            "A1: z = (R1+R2)/(2*R3) and p = (R1+R2)/(2*R3), where R1 and R2 are feedback \
             resistors, and R3 is the input impedance."
                .to_string(),
            "A9: Increase the Miller capacitance values… Adjust the transconductance \
             ratios of the three stages… Increase the number of stages."
                .to_string(),
        ];
        (topo, log)
    }
}

impl Objective for Llama2Baseline {
    fn optimize(
        &mut self,
        spec: &Spec,
        sim: &mut dyn SimBackend,
        _rng: &mut dyn rand::RngCore,
    ) -> OptResult {
        let (topo, _) = self.design(spec);
        sim.ledger_mut().record_llm_step();
        let eval = crate::objective::evaluate(&topo, spec, sim);
        OptResult {
            success: eval.feasible,
            performance: eval.performance,
            topology: Some(topo),
            evaluations: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artisan_sim::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gpt4_fails_every_table2_group() {
        let mut agent = Gpt4Baseline;
        for (name, spec) in Spec::table2() {
            let mut sim = Simulator::new();
            let mut rng = StdRng::seed_from_u64(0);
            let r = agent.optimize(&spec, &mut sim, &mut rng);
            assert!(!r.success, "{name}: GPT-4 unexpectedly succeeded");
        }
    }

    #[test]
    fn llama2_fails_every_table2_group() {
        let mut agent = Llama2Baseline;
        for (name, spec) in Spec::table2() {
            let mut sim = Simulator::new();
            let mut rng = StdRng::seed_from_u64(0);
            let r = agent.optimize(&spec, &mut sim, &mut rng);
            assert!(!r.success, "{name}: Llama2 unexpectedly succeeded");
        }
    }

    #[test]
    fn gpt4_recommends_nmc_but_misderives() {
        let (topo, log) = Gpt4Baseline.design(&Spec::g1());
        // The wrong pole model leaves the design uncompensated.
        assert_eq!(topo.connection_at(Position::N1ToOut), ConnectionType::Open);
        assert!(log[1].contains("p1 = gm3/CL"));
    }

    #[test]
    fn gpt4_adds_mpmc_path_for_large_loads() {
        let (topo, log) = Gpt4Baseline.design(&Spec::g5());
        assert_eq!(topo.connection_at(Position::InToN2), ConnectionType::PosGm);
        assert!(log[2].contains("MPMC"));
    }

    #[test]
    fn llama2_design_has_follower_stages() {
        let (topo, log) = Llama2Baseline.design(&Spec::g1());
        // Intrinsic gain 1 ⇒ ro = 1/gm.
        let ro2 = topo.skeleton.stage2.ro.value();
        assert!((ro2 - 1.0 / 100e-6 * 1.0).abs() / ro2 < 1e-9);
        assert!(log[0].contains("voltage follower"));
        // And the gain is hopeless.
        assert!(topo.skeleton.dc_gain() < 100.0);
    }
}
