//! RLBO [3]: reinforcement-learning topology optimization.
//!
//! A REINFORCE policy maintains softmax logits over every position's
//! legal connection types; an episode samples a topology structure,
//! draws component values, evaluates it on the simulator, and updates
//! the logits with the policy gradient against a moving-baseline
//! advantage. This mirrors TOTAL's topology-level RL with parameter
//! sampling in the inner loop.

use crate::objective::{evaluate_batch, Objective, OptResult};
use artisan_circuit::sample::{sample_params, SampleRanges};
use artisan_circuit::{
    ConnectionType, Placement, Position, PositionRules, Skeleton, StageParams, Topology,
};
use artisan_sim::{SimBackend, Spec};
use rand::Rng;

/// RLBO configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlboConfig {
    /// Total simulation budget per trial.
    pub budget: usize,
    /// Parameter samples per sampled structure (the "BO" inner loop).
    pub params_per_structure: usize,
    /// Policy-gradient learning rate.
    pub learning_rate: f64,
    /// Moving-baseline smoothing factor.
    pub baseline_beta: f64,
}

impl Default for RlboConfig {
    fn default() -> Self {
        RlboConfig {
            budget: 500,
            params_per_structure: 4,
            learning_rate: 0.15,
            baseline_beta: 0.9,
        }
    }
}

/// The RLBO optimizer.
#[derive(Debug, Clone)]
pub struct Rlbo {
    config: RlboConfig,
    ranges: SampleRanges,
}

impl Rlbo {
    /// Creates the optimizer.
    pub fn new(config: RlboConfig) -> Self {
        Rlbo {
            config,
            ranges: SampleRanges::default(),
        }
    }

    /// Runs one optimization trial against any simulation backend.
    pub fn run<B: SimBackend + ?Sized, R: Rng + ?Sized>(
        &self,
        spec: &Spec,
        sim: &mut B,
        rng: &mut R,
    ) -> OptResult {
        let cl = spec.cl.value();
        // Policy: logits per position over its legal types.
        let legal: Vec<Vec<ConnectionType>> = Position::ALL
            .iter()
            .map(|&p| PositionRules::legal_types(p))
            .collect();
        let mut logits: Vec<Vec<f64>> = legal.iter().map(|l| vec![0.0; l.len()]).collect();
        let mut baseline = 0.0;
        let mut baseline_initialized = false;

        let mut best: Option<(f64, Topology, crate::objective::Evaluation)> = None;
        let mut used = 0;

        while used < self.config.budget {
            // Sample a structure from the policy.
            let mut choices = Vec::with_capacity(Position::ALL.len());
            for (pos_logits, _) in logits.iter().zip(&legal) {
                let max = pos_logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let weights: Vec<f64> = pos_logits.iter().map(|l| (l - max).exp()).collect();
                let total: f64 = weights.iter().sum();
                let mut draw = rng.gen_range(0.0..total);
                let mut pick = weights.len() - 1;
                for (i, w) in weights.iter().enumerate() {
                    draw -= w;
                    if draw <= 0.0 {
                        pick = i;
                        break;
                    }
                }
                choices.push(pick);
            }

            // Inner loop: several parameter draws for this structure.
            // Building a topology draws the RNG but evaluating it does
            // not, so all of the episode's draws happen up front (same
            // RNG stream as the serial loop) and the evaluations fan
            // out through one `analyze_batch` call; absorbing in index
            // order reproduces the serial trajectory exactly.
            let draws = self
                .config
                .params_per_structure
                .min(self.config.budget - used);
            let topos: Vec<Topology> = (0..draws)
                .map(|_| self.build(&choices, &legal, cl, rng))
                .collect();
            let evals = evaluate_batch(&topos, spec, sim);
            used += draws;
            let mut episode_best = f64::NEG_INFINITY;
            for (topo, eval) in topos.into_iter().zip(evals) {
                episode_best = episode_best.max(eval.score);
                if best.as_ref().is_none_or(|(s, _, _)| eval.score > *s) {
                    best = Some((eval.score, topo, eval));
                }
            }

            // Policy-gradient update with a squashed reward.
            let reward = if episode_best > 0.0 {
                1.0 + episode_best.ln_1p() * 0.1
            } else {
                episode_best.max(-10.0) / 10.0
            };
            if !baseline_initialized {
                baseline = reward;
                baseline_initialized = true;
            }
            let advantage = reward - baseline;
            baseline =
                self.config.baseline_beta * baseline + (1.0 - self.config.baseline_beta) * reward;
            sim.ledger_mut().record_optimizer_step();

            for ((pos_logits, _), &choice) in logits.iter_mut().zip(&legal).zip(&choices) {
                let max = pos_logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let weights: Vec<f64> = pos_logits.iter().map(|l| (l - max).exp()).collect();
                let total: f64 = weights.iter().sum();
                for (i, l) in pos_logits.iter_mut().enumerate() {
                    let prob = weights[i] / total;
                    let grad = if i == choice { 1.0 - prob } else { -prob };
                    *l += self.config.learning_rate * advantage * grad;
                }
            }
        }

        match best {
            Some((_, topology, eval)) => OptResult {
                success: eval.feasible,
                performance: eval.performance,
                topology: Some(topology),
                evaluations: used,
            },
            None => OptResult {
                success: false,
                topology: None,
                performance: None,
                evaluations: used,
            },
        }
    }

    fn build<R: Rng + ?Sized>(
        &self,
        choices: &[usize],
        legal: &[Vec<ConnectionType>],
        cl: f64,
        rng: &mut R,
    ) -> Topology {
        let stage = |rng: &mut R| {
            let gm = artisan_circuit::sample::log_uniform(
                rng,
                self.ranges.stage_gm.0,
                self.ranges.stage_gm.1,
            );
            let gain = artisan_circuit::sample::log_uniform(
                rng,
                self.ranges.stage_gain.0,
                self.ranges.stage_gain.1,
            );
            StageParams::from_gm_and_gain(gm, gain)
        };
        let skeleton = Skeleton::new(stage(rng), stage(rng), stage(rng), 1e6, cl);
        let mut topo = Topology::new(skeleton);
        for ((pos, types), &choice) in Position::ALL.iter().zip(legal).zip(choices) {
            let conn = types[choice];
            if conn == ConnectionType::Open {
                continue;
            }
            let params = sample_params(rng, conn, &self.ranges);
            #[allow(clippy::expect_used)] // indices drawn from the legal set
            topo.place(Placement::new(*pos, conn, params))
                .expect("policy choices are legal by construction");
        }
        topo
    }
}

impl Objective for Rlbo {
    fn optimize(
        &mut self,
        spec: &Spec,
        sim: &mut dyn SimBackend,
        rng: &mut dyn rand::RngCore,
    ) -> OptResult {
        self.run(spec, sim, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artisan_sim::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> RlboConfig {
        RlboConfig {
            budget: 40,
            params_per_structure: 4,
            ..RlboConfig::default()
        }
    }

    #[test]
    fn respects_budget() {
        let mut sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(0);
        let r = Rlbo::new(tiny()).run(&Spec::g1(), &mut sim, &mut rng);
        assert_eq!(r.evaluations, 40);
        assert_eq!(sim.ledger().simulations(), 40);
        assert!(sim.ledger().optimizer_steps() >= 10);
    }

    #[test]
    fn inner_loop_goes_through_the_batched_path() {
        let mut sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(0);
        let r = Rlbo::new(tiny()).run(&Spec::g1(), &mut sim, &mut rng);
        // Every evaluation is fanned out via analyze_batch, and batching
        // never changes the billed simulation count.
        assert_eq!(sim.ledger().batched_solves(), r.evaluations as u64);
        assert_eq!(sim.ledger().simulations(), r.evaluations as u64);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut sim = Simulator::new();
            let mut rng = StdRng::seed_from_u64(seed);
            Rlbo::new(tiny())
                .run(&Spec::g1(), &mut sim, &mut rng)
                .success
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn returns_best_candidate_with_consistent_flags() {
        let mut sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(1);
        let r = Rlbo::new(tiny()).run(&Spec::g1(), &mut sim, &mut rng);
        assert!(r.topology.is_some());
        if r.success {
            assert!(r.performance.is_some());
        }
    }

    #[test]
    fn policy_learns_to_prefer_rewarded_choices() {
        // Smoke test of the REINFORCE update direction: after many
        // episodes on G-1 the policy's logits must have moved.
        let mut sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RlboConfig {
            budget: 120,
            ..tiny()
        };
        let r = Rlbo::new(cfg).run(&Spec::g1(), &mut sim, &mut rng);
        assert_eq!(r.evaluations, 120);
    }
}
