//! Gaussian-process regression with an RBF kernel.
//!
//! The surrogate model inside the BOBO baseline: fit on
//! (embedding, objective) pairs, predict posterior mean/variance for
//! expected-improvement acquisition. Solves come from the Cholesky
//! factorization in `artisan-math`.

use artisan_math::{cholesky::Cholesky, DMatrix, MathError};

/// GP hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpHyperParams {
    /// RBF lengthscale (shared across dimensions).
    pub lengthscale: f64,
    /// Signal variance σ_f².
    pub signal_variance: f64,
    /// Observation noise variance σ_n².
    pub noise_variance: f64,
}

impl Default for GpHyperParams {
    fn default() -> Self {
        GpHyperParams {
            lengthscale: 0.3,
            signal_variance: 1.0,
            noise_variance: 1e-4,
        }
    }
}

/// A fitted Gaussian process.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    hp: GpHyperParams,
    x: Vec<Vec<f64>>,
    /// α = K⁻¹·(y − mean), for the posterior mean.
    alpha: Vec<f64>,
    chol: Cholesky,
    y_mean: f64,
    y_scale: f64,
}

fn rbf(a: &[f64], b: &[f64], hp: &GpHyperParams) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum();
    hp.signal_variance * (-0.5 * d2 / (hp.lengthscale * hp.lengthscale)).exp()
}

impl GaussianProcess {
    /// Fits the GP on observations `(x, y)`. Targets are internally
    /// standardized for conditioning.
    ///
    /// # Errors
    ///
    /// - [`MathError::DimensionMismatch`] for empty data or ragged rows.
    /// - [`MathError::NotPositiveDefinite`] if the kernel matrix cannot
    ///   be factorized even after jitter (pathological duplicates).
    pub fn fit(x: &[Vec<f64>], y: &[f64], hp: GpHyperParams) -> Result<Self, MathError> {
        if x.is_empty() || x.len() != y.len() {
            return Err(MathError::DimensionMismatch(format!(
                "{} inputs vs {} targets",
                x.len(),
                y.len()
            )));
        }
        let dim = x[0].len();
        if x.iter().any(|r| r.len() != dim) {
            return Err(MathError::DimensionMismatch(
                "ragged input rows".to_string(),
            ));
        }
        let n = x.len();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let y_scale = {
            let var = y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n as f64;
            var.sqrt().max(1e-9)
        };
        let yn: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_scale).collect();

        let mut k = DMatrix::from_fn(n, n, |i, j| rbf(&x[i], &x[j], &hp));
        k.add_diagonal(hp.noise_variance.max(1e-10));
        // Progressive jitter on factorization failure.
        let chol = match Cholesky::new(&k) {
            Ok(c) => c,
            Err(_) => {
                k.add_diagonal(1e-6);
                Cholesky::new(&k)?
            }
        };
        let alpha = chol.solve(&yn)?;
        Ok(GaussianProcess {
            hp,
            x: x.to_vec(),
            alpha,
            chol,
            y_mean,
            y_scale,
        })
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when fitted on no points (cannot happen through [`Self::fit`]).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Posterior mean and variance at a query point.
    pub fn predict(&self, query: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = self.x.iter().map(|xi| rbf(xi, query, &self.hp)).collect();
        let mean_n: f64 = kstar.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        // var = k(x,x) − ‖L⁻¹k*‖²
        #[allow(clippy::expect_used)] // kstar has one entry per training point
        let v = self
            .chol
            .solve_lower(&kstar)
            .expect("dimension matches training size");
        let explained: f64 = v.iter().map(|t| t * t).sum();
        let var_n = (self.hp.signal_variance - explained).max(1e-12);
        (
            mean_n * self.y_scale + self.y_mean,
            var_n * self.y_scale * self.y_scale,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|k| vec![k as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let x = grid_1d(8);
        let y: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).sin()).collect();
        let gp = GaussianProcess::fit(&x, &y, GpHyperParams::default()).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (m, v) = gp.predict(xi);
            assert!((m - yi).abs() < 0.05, "{m} vs {yi}");
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x = vec![vec![0.0], vec![0.1]];
        let y = vec![0.0, 0.1];
        let gp = GaussianProcess::fit(&x, &y, GpHyperParams::default()).unwrap();
        let (_, v_near) = gp.predict(&[0.05]);
        let (_, v_far) = gp.predict(&[2.0]);
        assert!(v_far > 10.0 * v_near, "near {v_near} far {v_far}");
    }

    #[test]
    fn prediction_between_points_is_smooth() {
        let x = grid_1d(10);
        let y: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
        let gp = GaussianProcess::fit(&x, &y, GpHyperParams::default()).unwrap();
        let (m, _) = gp.predict(&[0.55]);
        assert!((m - 0.3025).abs() < 0.05, "{m}");
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(GaussianProcess::fit(&[], &[], GpHyperParams::default()).is_err());
        assert!(GaussianProcess::fit(&[vec![0.0]], &[1.0, 2.0], GpHyperParams::default()).is_err());
        assert!(GaussianProcess::fit(
            &[vec![0.0], vec![0.0, 1.0]],
            &[1.0, 2.0],
            GpHyperParams::default()
        )
        .is_err());
    }

    #[test]
    fn duplicate_points_survive_via_jitter() {
        let x = vec![vec![0.5], vec![0.5], vec![0.5]];
        let y = vec![1.0, 1.1, 0.9];
        let gp = GaussianProcess::fit(&x, &y, GpHyperParams::default()).unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 1.0).abs() < 0.1);
    }

    #[test]
    fn standardization_handles_large_targets() {
        let x = grid_1d(5);
        let y: Vec<f64> = x.iter().map(|p| 1e6 + 1e5 * p[0]).collect();
        let gp = GaussianProcess::fit(&x, &y, GpHyperParams::default()).unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 1.05e6).abs() / 1.05e6 < 0.02, "{m}");
    }
}
