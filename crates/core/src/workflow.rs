//! The end-to-end Artisan workflow of Fig. 2: user specs → architecture
//! recommendation → detailed design flow → behavioural netlist →
//! simulation verification (→ topological modification) → transistor
//! mapping with the gm/Id scripts.

use artisan_agents::{AgentConfig, ArtisanAgent, DesignOutcome};
use artisan_dataset::{DatasetConfig, OpampDataset};
use artisan_gmid::{map_topology, LookupTable};
use artisan_resilience::{
    JournaledBatch, ScheduledSession, Scheduler, SessionJournal, SessionReport, Supervisor,
};
use artisan_sim::cost::{CostLedger, CostModel};
use artisan_sim::{ParallelSimBackend, SimBackend, Simulator, Spec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Construction options for the framework.
#[derive(Debug, Clone)]
pub struct ArtisanOptions {
    /// Agent configuration (noise model, iteration budget).
    pub agent: AgentConfig,
    /// When set, build the opamp dataset at this configuration and train
    /// the domain LM (DAPT + SFT) before designing. `None` uses the
    /// knowledge-base fallback — same numerics, no retrieval texture.
    pub dataset: Option<DatasetConfig>,
    /// Dataset/TRAINING seed.
    pub train_seed: u64,
    /// Testbed-equivalent cost model for reported design time.
    pub cost_model: CostModel,
}

impl ArtisanOptions {
    /// Full pipeline with a 1/1000-scale dataset and the calibrated
    /// noise model — the configuration behind the Table 3 rows.
    pub fn paper_default() -> Self {
        ArtisanOptions {
            agent: AgentConfig::paper_default(),
            dataset: Some(DatasetConfig::default()),
            train_seed: 2024,
            cost_model: CostModel::default(),
        }
    }

    /// Fast, deterministic, no LLM training — for tests and quickstarts.
    pub fn fast() -> Self {
        ArtisanOptions {
            agent: AgentConfig::noiseless(),
            dataset: None,
            train_seed: 0,
            cost_model: CostModel::default(),
        }
    }
}

impl Default for ArtisanOptions {
    fn default() -> Self {
        ArtisanOptions::paper_default()
    }
}

/// Everything one full workflow run produces.
#[derive(Debug, Clone)]
pub struct ArtisanOutcome {
    /// The agent-level outcome: topology, transcript, ToT trace,
    /// success flag, behavioural netlist.
    pub design: DesignOutcome,
    /// Transistor-level netlist from the gm/Id mapping.
    pub transistor_netlist: String,
    /// The billed operations for this run.
    pub ledger: CostLedger,
    /// Testbed-equivalent design time in seconds (the Table 3 "Time").
    pub testbed_seconds: f64,
}

/// The Artisan framework: a trained (or fallback) agent, a simulator,
/// and the gm/Id mapping tables.
#[derive(Debug, Clone)]
pub struct Artisan {
    agent: ArtisanAgent,
    options: ArtisanOptions,
    nmos_table: LookupTable,
}

impl Artisan {
    /// Builds the framework; trains the domain LM when the options carry
    /// a dataset configuration.
    pub fn new(options: ArtisanOptions) -> Self {
        let agent = match &options.dataset {
            Some(cfg) => {
                let dataset = OpampDataset::build(cfg, options.train_seed);
                ArtisanAgent::trained(&dataset, options.agent)
            }
            None => ArtisanAgent::untrained(options.agent),
        };
        Artisan {
            agent,
            options,
            nmos_table: LookupTable::default_nmos(),
        }
    }

    /// Whether the underlying agent carries a trained language model.
    pub fn is_trained(&self) -> bool {
        self.agent.is_trained()
    }

    /// Borrow of the agent (for perplexity probes and inspection).
    pub fn agent(&self) -> &ArtisanAgent {
        &self.agent
    }

    /// Runs one design session for `spec` with an explicit trial seed
    /// against the plain deterministic simulator.
    pub fn design(&mut self, spec: &Spec, seed: u64) -> ArtisanOutcome {
        let mut sim = Simulator::new();
        self.design_with(spec, &mut sim, seed)
    }

    /// Runs one design session against a caller-supplied simulation
    /// backend — the plain [`Simulator`], a fault-injected wrapper, or
    /// any other [`SimBackend`]. The ledger snapshot in the outcome is
    /// read back from the backend, so injected latency penalties appear
    /// in the reported testbed time.
    pub fn design_with<B: SimBackend + ?Sized>(
        &mut self,
        spec: &Spec,
        sim: &mut B,
        seed: u64,
    ) -> ArtisanOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let design = self.agent.design(spec, sim, &mut rng);
        let transistor_netlist = map_topology(&design.topology, &self.nmos_table).to_spice();
        let ledger = *sim.ledger();
        let testbed_seconds = ledger.testbed_seconds(&self.options.cost_model);
        ArtisanOutcome {
            design,
            transistor_netlist,
            ledger,
            testbed_seconds,
        }
    }

    /// Runs one *supervised* design session: the supervisor retries
    /// failed attempts with billed backoff, enforces its session
    /// budget, and independently validates the result (see
    /// `artisan-resilience`). The framework's own (possibly trained)
    /// agent runs the attempts.
    pub fn design_supervised<B: SimBackend + ?Sized>(
        &mut self,
        spec: &Spec,
        sim: &mut B,
        supervisor: &Supervisor,
        seed: u64,
    ) -> SessionReport {
        supervisor.run_with_agent(&mut self.agent, spec, sim, seed)
    }

    /// Runs one supervised session per backend concurrently, each with
    /// a clone of the framework's (possibly trained) agent, its own
    /// isolated ledger, and a seed derived from `base_seed` and the
    /// session index. The scheduler's thread pool sets the concurrency
    /// (`ARTISAN_THREADS` for [`Scheduler::new`]); results are identical
    /// for every worker count and come back in backend order.
    pub fn design_batch<B: ParallelSimBackend>(
        &self,
        spec: &Spec,
        backends: Vec<B>,
        scheduler: &Scheduler,
        base_seed: u64,
    ) -> Vec<ScheduledSession<B>> {
        scheduler.run_batch_with_agent(&self.agent, spec, backends, base_seed)
    }

    /// [`Artisan::design_supervised`] with crash-safe checkpointing:
    /// every attempt boundary is appended to `journal`, and a journal
    /// holding prior attempts fast-forwards past them (see
    /// [`Supervisor::run_journaled`]).
    pub fn design_supervised_journaled<B: SimBackend + ?Sized>(
        &mut self,
        spec: &Spec,
        sim: &mut B,
        supervisor: &Supervisor,
        seed: u64,
        journal: &mut SessionJournal,
    ) -> SessionReport {
        supervisor.run_journaled(&mut self.agent, spec, sim, seed, journal)
    }

    /// [`Artisan::design_batch`] with a per-session write-ahead journal
    /// under `dir`: re-running the same batch against the same
    /// directory after a crash resumes every session instead of
    /// re-buying its completed attempts (see
    /// [`Scheduler::run_batch_journaled`]). `extra_salt` folds any
    /// extra behaviour-changing context (e.g. a fault-plan fingerprint)
    /// into the journal-file identity.
    pub fn design_batch_journaled<B: ParallelSimBackend>(
        &self,
        spec: &Spec,
        backends: Vec<B>,
        scheduler: &Scheduler,
        base_seed: u64,
        dir: &std::path::Path,
        extra_salt: u64,
    ) -> JournaledBatch<B> {
        scheduler.run_batch_journaled_with_agent(
            &self.agent,
            spec,
            backends,
            base_seed,
            dir,
            extra_salt,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_workflow_designs_g1() {
        let mut artisan = Artisan::new(ArtisanOptions::fast());
        assert!(!artisan.is_trained());
        let outcome = artisan.design(&Spec::g1(), 0);
        assert!(outcome.design.success);
        assert!(outcome.transistor_netlist.contains("M1"));
        assert!(outcome.ledger.llm_steps() >= 9);
        // Minutes, not hours.
        assert!(
            outcome.testbed_seconds < 1800.0,
            "{}",
            outcome.testbed_seconds
        );
    }

    #[test]
    fn workflow_is_deterministic_per_seed() {
        let mut artisan = Artisan::new(ArtisanOptions::fast());
        let a = artisan.design(&Spec::g1(), 5);
        let b = artisan.design(&Spec::g1(), 5);
        assert_eq!(a.design.netlist_text, b.design.netlist_text);
    }

    #[test]
    fn trained_workflow_uses_retrieved_rationale() {
        let mut options = ArtisanOptions::paper_default();
        // Tiny dataset to keep the test fast.
        options.dataset = Some(artisan_dataset::DatasetConfig::tiny());
        options.agent = AgentConfig::noiseless();
        let mut artisan = Artisan::new(options);
        assert!(artisan.is_trained());
        let outcome = artisan.design(&Spec::g1(), 0);
        assert!(outcome.design.success);
        // The transcript's architecture answer comes from the DesignQA
        // corpus (NMC rationale phrasing).
        let text = outcome.design.transcript.to_string();
        assert!(text.to_lowercase().contains("nested miller"), "{text}");
    }

    #[test]
    fn supervised_workflow_succeeds_on_clean_backend() {
        let mut artisan = Artisan::new(ArtisanOptions::fast());
        let mut sim = Simulator::new();
        let report = artisan.design_supervised(&Spec::g1(), &mut sim, &Supervisor::default(), 0);
        assert!(report.success, "{report}");
        assert!(!report.degraded);
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn supervised_workflow_survives_fault_injection() {
        use artisan_resilience::{FaultPlan, FaultySim};
        let mut artisan = Artisan::new(ArtisanOptions::fast());
        let supervisor = Supervisor::default();
        let mut sim = FaultySim::new(Simulator::new(), FaultPlan::flaky(1, 0.3));
        let report = artisan.design_supervised(&Spec::g1(), &mut sim, &supervisor, 1);
        assert!(!(report.success && report.degraded));
        assert!(report.simulations <= supervisor.budget.max_simulations);
        assert!(report.llm_steps <= supervisor.budget.max_llm_steps);
    }

    #[test]
    fn batch_design_matches_serial_supervised_sessions() {
        use artisan_math::ThreadPool;
        let artisan = Artisan::new(ArtisanOptions::fast());
        let supervisor = Supervisor::default();
        let scheduler = Scheduler::with_pool(supervisor, ThreadPool::with_workers(3));
        let backends: Vec<Simulator> = (0..4).map(|_| Simulator::new()).collect();
        let sessions = artisan.design_batch(&Spec::g1(), backends, &scheduler, 17);
        assert_eq!(sessions.len(), 4);
        for s in &sessions {
            // Each concurrent session equals the serial supervised run
            // with the same seed on a fresh backend and agent clone.
            let mut solo = Artisan::new(ArtisanOptions::fast());
            let mut sim = Simulator::new();
            let serial = solo.design_supervised(&Spec::g1(), &mut sim, &supervisor, s.seed);
            assert_eq!(s.report.success, serial.success, "session {}", s.session);
            assert_eq!(s.report.attempts, serial.attempts);
            assert_eq!(s.report.events, serial.events);
            assert_eq!(s.report.simulations, serial.simulations);
        }
    }

    #[test]
    fn batch_design_with_a_shared_cache_is_cheaper_and_identical() {
        use artisan_math::ThreadPool;
        use artisan_sim::{CachedSim, SimCache};
        // One worker pins session order so the hit/miss ledger split is
        // deterministic; the cache spans all four sessions.
        let artisan = Artisan::new(ArtisanOptions::fast());
        let supervisor = Supervisor::default();
        let scheduler = Scheduler::with_pool(supervisor, ThreadPool::with_workers(1));
        let plain: Vec<Simulator> = (0..4).map(|_| Simulator::new()).collect();
        let baseline = artisan.design_batch(&Spec::g1(), plain, &scheduler, 23);
        let cache = SimCache::shared(512);
        let cached_backends: Vec<CachedSim<Simulator>> = (0..4)
            .map(|_| CachedSim::new(Simulator::new(), std::sync::Arc::clone(&cache)))
            .collect();
        let cached = artisan.design_batch(&Spec::g1(), cached_backends, &scheduler, 23);
        for (a, b) in cached.iter().zip(&baseline) {
            assert_eq!(a.report.success, b.report.success, "session {}", a.session);
            assert_eq!(a.report.events, b.report.events, "session {}", a.session);
        }
        assert!(cache.stats().hits > 0, "{}", cache.stats());
        let cold: f64 = baseline.iter().map(|s| s.report.testbed_seconds).sum();
        let warm: f64 = cached.iter().map(|s| s.report.testbed_seconds).sum();
        assert!(warm < cold, "warm {warm}s >= cold {cold}s");
    }

    #[test]
    fn batch_design_through_the_screened_stack_is_identical() {
        use artisan_math::ThreadPool;
        use artisan_sim::{CachedSim, ScreenedSim, SimCache};
        // The production screening stack — screen outside the shared
        // cache — slots into design_batch like any other backend. The
        // agent's candidates are all structurally legal, so the screen
        // must admit every one: same decisions and event traces as the
        // plain batch, zero screen rejects, and the cache still saves.
        let artisan = Artisan::new(ArtisanOptions::fast());
        let supervisor = Supervisor::default();
        let scheduler = Scheduler::with_pool(supervisor, ThreadPool::with_workers(1));
        let plain: Vec<Simulator> = (0..3).map(|_| Simulator::new()).collect();
        let baseline = artisan.design_batch(&Spec::g1(), plain, &scheduler, 29);
        let cache = SimCache::shared(512);
        let screened_backends: Vec<ScreenedSim<CachedSim<Simulator>>> = (0..3)
            .map(|_| {
                ScreenedSim::new(CachedSim::new(
                    Simulator::new(),
                    std::sync::Arc::clone(&cache),
                ))
                .with_cache(std::sync::Arc::clone(&cache))
            })
            .collect();
        let screened = artisan.design_batch(&Spec::g1(), screened_backends, &scheduler, 29);
        for (a, b) in screened.iter().zip(&baseline) {
            assert_eq!(a.report.success, b.report.success, "session {}", a.session);
            assert_eq!(a.report.events, b.report.events, "session {}", a.session);
        }
        let rejects: u64 = screened.iter().map(|s| s.backend.screened_out()).sum();
        assert_eq!(rejects, 0, "a legal candidate was screened out");
        assert!(cache.stats().hits > 0, "{}", cache.stats());
        let cold: f64 = baseline.iter().map(|s| s.report.testbed_seconds).sum();
        let warm: f64 = screened.iter().map(|s| s.report.testbed_seconds).sum();
        assert!(warm < cold, "warm {warm}s >= cold {cold}s");
    }

    #[test]
    fn batch_design_through_the_cornered_stack_attaches_verdicts() {
        use artisan_math::ThreadPool;
        use artisan_sim::{corners_enabled_from_env, CachedSim, CornerGrid, CornerSim, SimCache};
        // The corner stack — CornerSim outside the shared report cache —
        // slots into design_batch like any other backend. A nominal-only
        // grid cannot change any validation decision (its worst case IS
        // the nominal point), so decisions and event traces must match
        // the plain batch while every surviving report carries a
        // worst-case verdict.
        let artisan = Artisan::new(ArtisanOptions::fast());
        let supervisor = Supervisor::default();
        let scheduler = Scheduler::with_pool(supervisor, ThreadPool::with_workers(1));
        let plain: Vec<Simulator> = (0..3).map(|_| Simulator::new()).collect();
        let baseline = artisan.design_batch(&Spec::g1(), plain, &scheduler, 31);
        let cache = SimCache::shared(512);
        let cornered_backends: Vec<CornerSim<CachedSim<Simulator>>> = (0..3)
            .map(|_| {
                CornerSim::from_env(
                    CachedSim::new(Simulator::new(), std::sync::Arc::clone(&cache)),
                    CornerGrid::nominal(),
                )
                .with_cache(std::sync::Arc::clone(&cache))
            })
            .collect();
        let cornered = artisan.design_batch(&Spec::g1(), cornered_backends, &scheduler, 31);
        for (a, b) in cornered.iter().zip(&baseline) {
            assert_eq!(a.report.success, b.report.success, "session {}", a.session);
            assert_eq!(a.report.events, b.report.events, "session {}", a.session);
        }
        if corners_enabled_from_env() {
            for s in &cornered {
                assert!(s.backend.grids_evaluated() + s.backend.ledger().cache_hits() > 0);
                let report = s
                    .report
                    .outcome
                    .as_ref()
                    .and_then(|o| o.report.as_ref())
                    .unwrap_or_else(|| panic!("session {} lost its report", s.session));
                let wc = report
                    .worst_case
                    .unwrap_or_else(|| panic!("session {} has no corner verdict", s.session));
                assert_eq!(wc.corners, 1, "nominal-only grid");
                assert_eq!(wc.failing, 0);
            }
        }
    }

    #[test]
    fn journaled_batch_design_resumes_terminal_sessions_for_free() {
        use artisan_math::ThreadPool;
        let dir = std::env::temp_dir().join(format!("artisan-core-journal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("{e}"));
        let artisan = Artisan::new(ArtisanOptions::fast());
        let scheduler = Scheduler::with_pool(Supervisor::default(), ThreadPool::with_workers(2));
        let make_backends = || -> Vec<Simulator> { (0..3).map(|_| Simulator::new()).collect() };
        let plain = artisan.design_batch(&Spec::g1(), make_backends(), &scheduler, 13);
        let first =
            artisan.design_batch_journaled(&Spec::g1(), make_backends(), &scheduler, 13, &dir, 0);
        assert_eq!(first.resumed_terminal(), 0);
        let second =
            artisan.design_batch_journaled(&Spec::g1(), make_backends(), &scheduler, 13, &dir, 0);
        assert_eq!(second.resumed_terminal(), 3);
        for ((a, b), p) in first.sessions.iter().zip(&second.sessions).zip(&plain) {
            assert_eq!(a.report, b.report, "session {}", a.session);
            assert_eq!(a.report.events, p.report.events, "session {}", a.session);
            assert_eq!(b.report.simulations, p.report.simulations);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transistor_netlist_accompanies_every_outcome() {
        let mut artisan = Artisan::new(ArtisanOptions::fast());
        for (_, spec) in Spec::table2() {
            let outcome = artisan.design(&spec, 1);
            assert!(outcome.transistor_netlist.contains(".ends"));
        }
    }
}
