//! The Artisan framework façade (§3.1, Fig. 2) and the evaluation
//! harness of §4.
//!
//! - [`workflow`] — [`Artisan`]: specs in, verified behavioural netlist
//!   plus transistor-level mapping out, with the full chat transcript
//!   and decision trace,
//! - [`experiment`] — the Table 3 runner: BOBO, RLBO, GPT-4, Llama2 and
//!   Artisan over the five experiment groups of Table 2, with
//!   per-method success rates, averaged metrics, FoM, and
//!   testbed-equivalent design time.
//!
//! # Example
//!
//! ```
//! use artisan_core::{Artisan, ArtisanOptions};
//! use artisan_sim::Spec;
//!
//! let mut artisan = Artisan::new(ArtisanOptions::fast());
//! let outcome = artisan.design(&Spec::g1(), 0);
//! assert!(outcome.design.success);
//! assert!(outcome.transistor_netlist.contains(".subckt opamp"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod workflow;

pub use experiment::{
    run_cell, run_cell_with_cache, ExperimentConfig, GroupResult, Method, RobustnessReport,
    RobustnessRow, Table3, TrialRecord,
};
pub use workflow::{Artisan, ArtisanOptions, ArtisanOutcome};

// The content-addressed simulation cache, re-exported so façade users
// can share one cache across `Artisan::design_batch` sessions without
// depending on `artisan-sim` directly.
pub use artisan_sim::{CacheStats, CachedSim, SimCache};
