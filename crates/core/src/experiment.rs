//! The Table 3 experiment runner: every method × every Table 2 group ×
//! `trials` seeded repetitions, reporting success rate, metrics averaged
//! over successful runs (the paper's convention — failed runs print
//! "fail"), FoM, and testbed-equivalent time.

use crate::workflow::{Artisan, ArtisanOptions};
use artisan_opt::objective::Objective;
use artisan_opt::{Bobo, BoboConfig, Gpt4Baseline, Llama2Baseline, Rlbo, RlboConfig};
use artisan_sim::cost::{format_testbed_time, CostModel};
use artisan_sim::{Performance, Simulator, Spec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::time::Instant;

/// The five compared methods of §4.1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// BOBO [12] — GP Bayesian optimization over the topology embedding.
    Bobo,
    /// RLBO [3] — REINFORCE topology search.
    Rlbo,
    /// Off-the-shelf GPT-4.
    Gpt4,
    /// Off-the-shelf Llama2-7b-chat.
    Llama2,
    /// Artisan (this work).
    Artisan,
}

impl Method {
    /// All methods in Table 3's row order.
    pub const ALL: [Method; 5] = [
        Method::Bobo,
        Method::Rlbo,
        Method::Gpt4,
        Method::Llama2,
        Method::Artisan,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Bobo => "BOBO",
            Method::Rlbo => "RLBO",
            Method::Gpt4 => "GPT-4",
            Method::Llama2 => "Llama2",
            Method::Artisan => "Artisan",
        }
    }
}

/// One trial's record.
#[derive(Debug, Clone)]
pub struct TrialRecord {
    /// Whether the produced design cleared every constraint.
    pub success: bool,
    /// Measured performance of the produced design (if it simulated).
    pub performance: Option<Performance>,
    /// Testbed-equivalent seconds billed.
    pub testbed_seconds: f64,
}

/// Aggregated results of one (method, group) cell of Table 3.
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// The method.
    pub method: Method,
    /// The group name ("G-1" …).
    pub group: &'static str,
    /// Per-trial records.
    pub trials: Vec<TrialRecord>,
}

impl GroupResult {
    /// Successes out of trials, e.g. `(9, 10)`.
    pub fn success_rate(&self) -> (usize, usize) {
        (
            self.trials.iter().filter(|t| t.success).count(),
            self.trials.len(),
        )
    }

    /// Mean of a metric over the *successful* trials (the paper's
    /// convention). `None` when no trial succeeded.
    pub fn mean_over_successes(&self, f: impl Fn(&Performance) -> f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .trials
            .iter()
            .filter(|t| t.success)
            .filter_map(|t| t.performance.as_ref())
            .map(&f)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Mean testbed time per trial in seconds.
    pub fn mean_testbed_seconds(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().map(|t| t.testbed_seconds).sum::<f64>() / self.trials.len() as f64
    }
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Trials per (method, group) — 10 in the paper.
    pub trials: usize,
    /// Base seed; trial `k` of group `g` uses a derived seed.
    pub seed: u64,
    /// BOBO budget configuration.
    pub bobo: BoboConfig,
    /// RLBO budget configuration.
    pub rlbo: RlboConfig,
    /// Artisan options.
    pub artisan: ArtisanOptions,
    /// Cost model for the Time column.
    pub cost_model: CostModel,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            trials: 10,
            seed: 2024,
            bobo: BoboConfig::default(),
            rlbo: RlboConfig::default(),
            artisan: ArtisanOptions::paper_default(),
            cost_model: CostModel::default(),
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for tests: few trials, small budgets, no
    /// LLM training.
    pub fn smoke(trials: usize) -> Self {
        ExperimentConfig {
            trials,
            seed: 7,
            bobo: BoboConfig {
                budget: 40,
                initial_samples: 15,
                pool: 50,
                ..BoboConfig::default()
            },
            rlbo: RlboConfig {
                budget: 40,
                ..RlboConfig::default()
            },
            artisan: ArtisanOptions::fast(),
            cost_model: CostModel::default(),
        }
    }
}

/// Runs one (method, group) cell.
pub fn run_cell(
    method: Method,
    group_name: &'static str,
    spec: &Spec,
    config: &ExperimentConfig,
    artisan: &mut Artisan,
) -> GroupResult {
    let mut trials = Vec::with_capacity(config.trials);
    for k in 0..config.trials {
        let seed = config
            .seed
            .wrapping_mul(1_000_003)
            .wrapping_add(k as u64 * 7919)
            ^ (group_name.len() as u64)
            ^ ((method as u64) << 32);
        let record = match method {
            Method::Artisan => {
                let outcome = artisan.design(spec, seed);
                TrialRecord {
                    success: outcome.design.success,
                    performance: outcome.design.report.map(|r| r.performance),
                    testbed_seconds: outcome.testbed_seconds,
                }
            }
            other => {
                let mut sim = Simulator::new();
                let mut rng = StdRng::seed_from_u64(seed);
                let result = match other {
                    Method::Bobo => Bobo::new(config.bobo).run(spec, &mut sim, &mut rng),
                    Method::Rlbo => Rlbo::new(config.rlbo).run(spec, &mut sim, &mut rng),
                    Method::Gpt4 => Gpt4Baseline.optimize(spec, &mut sim, &mut rng),
                    Method::Llama2 => Llama2Baseline.optimize(spec, &mut sim, &mut rng),
                    Method::Artisan => unreachable!("handled above"),
                };
                TrialRecord {
                    success: result.success,
                    performance: result.performance,
                    testbed_seconds: sim.ledger().testbed_seconds(&config.cost_model),
                }
            }
        };
        trials.push(record);
    }
    GroupResult {
        method,
        group: group_name,
        trials,
    }
}

/// The assembled Table 3.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// All (method, group) cells, method-major in the paper's order.
    pub cells: Vec<GroupResult>,
    /// Wall-clock time the whole experiment took to compute.
    pub wall_seconds: f64,
}

impl Table3 {
    /// Runs the full experiment.
    pub fn run(config: &ExperimentConfig) -> Table3 {
        let start = Instant::now();
        let mut artisan = Artisan::new(config.artisan.clone());
        let mut cells = Vec::new();
        for method in Method::ALL {
            for (group, spec) in Spec::table2() {
                cells.push(run_cell(method, group, &spec, config, &mut artisan));
            }
        }
        Table3 {
            cells,
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Looks up a cell.
    pub fn cell(&self, method: Method, group: &str) -> Option<&GroupResult> {
        self.cells
            .iter()
            .find(|c| c.method == method && c.group == group)
    }

    /// The §4.2 headline: the speedup range of Artisan over the
    /// optimization baselines, `(min, max)` over groups where both have
    /// measurements.
    pub fn speedup_range(&self) -> Option<(f64, f64)> {
        let mut ratios = Vec::new();
        for (group, _) in Spec::table2() {
            let artisan = self.cell(Method::Artisan, group)?.mean_testbed_seconds();
            if artisan <= 0.0 {
                continue;
            }
            for m in [Method::Bobo, Method::Rlbo] {
                let baseline = self.cell(m, group)?.mean_testbed_seconds();
                if baseline > 0.0 {
                    ratios.push(baseline / artisan);
                }
            }
        }
        let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (!ratios.is_empty()).then_some((min, max))
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<8} {:<5} {:>6} {:>9} {:>10} {:>8} {:>10} {:>10} {:>9}",
            "Method", "Exp", "Succ.", "Gain(dB)", "GBW(MHz)", "PM(deg)", "Power(uW)", "FoM", "Time"
        )?;
        for cell in &self.cells {
            let (s, n) = cell.success_rate();
            let fmt_metric = |v: Option<f64>| match v {
                Some(x) => format!("{x:.1}"),
                None => "fail".to_string(),
            };
            writeln!(
                f,
                "{:<8} {:<5} {:>4}/{:<1} {:>9} {:>10} {:>8} {:>10} {:>10} {:>9}",
                cell.method.name(),
                cell.group,
                s,
                n,
                fmt_metric(cell.mean_over_successes(|p| p.gain.value())),
                match cell.mean_over_successes(|p| p.gbw.value() / 1e6) {
                    Some(x) => format!("{x:.2}"),
                    None => "fail".to_string(),
                },
                fmt_metric(cell.mean_over_successes(|p| p.pm.value())),
                fmt_metric(cell.mean_over_successes(|p| p.power.value() * 1e6)),
                fmt_metric(cell.mean_over_successes(|p| p.fom)),
                format_testbed_time(cell.mean_testbed_seconds()),
            )?;
        }
        if let Some((lo, hi)) = self.speedup_range() {
            writeln!(
                f,
                "Artisan accelerates the design process by {lo:.1}x to {hi:.1}x over the \
                 optimization baselines."
            )?;
        }
        writeln!(f, "(computed in {:.1}s wall-clock)", self.wall_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_experiment_has_paper_shape() {
        let config = ExperimentConfig::smoke(2);
        let table = Table3::run(&config);
        assert_eq!(table.cells.len(), 25);

        // LLM baselines fail everywhere.
        for group in ["G-1", "G-2", "G-3", "G-4", "G-5"] {
            assert_eq!(table.cell(Method::Gpt4, group).unwrap().success_rate().0, 0);
            assert_eq!(
                table.cell(Method::Llama2, group).unwrap().success_rate().0,
                0
            );
        }
        // Artisan (noiseless smoke config) succeeds everywhere.
        for group in ["G-1", "G-2", "G-3", "G-4", "G-5"] {
            let (s, n) = table.cell(Method::Artisan, group).unwrap().success_rate();
            assert_eq!(s, n, "{group}");
        }
        // Artisan is much faster than the sim-hungry baselines.
        let artisan_t = table
            .cell(Method::Artisan, "G-1")
            .unwrap()
            .mean_testbed_seconds();
        let bobo_t = table
            .cell(Method::Bobo, "G-1")
            .unwrap()
            .mean_testbed_seconds();
        assert!(
            bobo_t > 2.0 * artisan_t,
            "bobo {bobo_t} artisan {artisan_t}"
        );
    }

    #[test]
    fn display_renders_fail_cells() {
        let config = ExperimentConfig::smoke(1);
        let table = Table3::run(&config);
        let text = table.to_string();
        assert!(text.contains("fail"));
        assert!(text.contains("Artisan"));
        assert!(text.contains("G-5"));
    }

    #[test]
    fn mean_over_successes_ignores_failures() {
        use artisan_circuit::units::{Decibels, Degrees, Hertz, Watts};
        let perf = Performance {
            gain: Decibels(100.0),
            gbw: Hertz(1e6),
            pm: Degrees(60.0),
            power: Watts(50e-6),
            fom: 200.0,
        };
        let cell = GroupResult {
            method: Method::Artisan,
            group: "G-1",
            trials: vec![
                TrialRecord {
                    success: true,
                    performance: Some(perf),
                    testbed_seconds: 100.0,
                },
                TrialRecord {
                    success: false,
                    performance: Some(Performance {
                        gain: Decibels(10.0),
                        ..perf
                    }),
                    testbed_seconds: 300.0,
                },
            ],
        };
        assert_eq!(cell.success_rate(), (1, 2));
        assert_eq!(cell.mean_over_successes(|p| p.gain.value()), Some(100.0));
        assert_eq!(cell.mean_testbed_seconds(), 200.0);
    }
}
