//! The Table 3 experiment runner: every method × every Table 2 group ×
//! `trials` seeded repetitions, reporting success rate, metrics averaged
//! over successful runs (the paper's convention — failed runs print
//! "fail"), FoM, and testbed-equivalent time.

use crate::workflow::{Artisan, ArtisanOptions};
use artisan_opt::objective::Objective;
use artisan_opt::{Bobo, BoboConfig, Gpt4Baseline, Llama2Baseline, Rlbo, RlboConfig};
use artisan_resilience::{
    faulted_plan_fingerprint, session_file_name, FaultPlan, FaultySim, JournalLoad, SessionJournal,
    SessionReport, Supervisor,
};
use artisan_sim::cost::{format_testbed_time, CostModel};
use artisan_sim::{
    CacheStats, CachedSim, CornerGrid, CornerSim, Performance, SimBackend, SimCache, Simulator,
    Spec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// The five compared methods of §4.1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// BOBO [12] — GP Bayesian optimization over the topology embedding.
    Bobo,
    /// RLBO [3] — REINFORCE topology search.
    Rlbo,
    /// Off-the-shelf GPT-4.
    Gpt4,
    /// Off-the-shelf Llama2-7b-chat.
    Llama2,
    /// Artisan (this work).
    Artisan,
}

impl Method {
    /// All methods in Table 3's row order.
    pub const ALL: [Method; 5] = [
        Method::Bobo,
        Method::Rlbo,
        Method::Gpt4,
        Method::Llama2,
        Method::Artisan,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Bobo => "BOBO",
            Method::Rlbo => "RLBO",
            Method::Gpt4 => "GPT-4",
            Method::Llama2 => "Llama2",
            Method::Artisan => "Artisan",
        }
    }
}

/// One trial's record.
#[derive(Debug, Clone)]
pub struct TrialRecord {
    /// Whether the produced design cleared every constraint.
    pub success: bool,
    /// Measured performance of the produced design (if it simulated).
    pub performance: Option<Performance>,
    /// Testbed-equivalent seconds billed.
    pub testbed_seconds: f64,
    /// Simulations served from the shared cache (0 when uncached).
    pub cache_hits: usize,
    /// Cache hits that waited on another trial's in-flight simulation.
    pub coalesced_waits: usize,
    /// Matrix solves bundled into batched G/C assemblies.
    pub batched_solves: usize,
    /// The full supervised-session report, when the experiment ran with
    /// a [`Supervisor`] (Artisan rows only).
    pub session: Option<SessionReport>,
    /// How the trial's write-ahead journal loaded, when the experiment
    /// ran with [`ExperimentConfig::journal_dir`] (Artisan supervised
    /// trials only). Carries resume state and any rejection warning.
    pub journal: Option<JournalLoad>,
}

/// Aggregated results of one (method, group) cell of Table 3.
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// The method.
    pub method: Method,
    /// The group name ("G-1" …).
    pub group: &'static str,
    /// Per-trial records.
    pub trials: Vec<TrialRecord>,
}

impl GroupResult {
    /// Successes out of trials, e.g. `(9, 10)`.
    pub fn success_rate(&self) -> (usize, usize) {
        (
            self.trials.iter().filter(|t| t.success).count(),
            self.trials.len(),
        )
    }

    /// Mean of a metric over the *successful* trials (the paper's
    /// convention). `None` when no trial succeeded.
    pub fn mean_over_successes(&self, f: impl Fn(&Performance) -> f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .trials
            .iter()
            .filter(|t| t.success)
            .filter_map(|t| t.performance.as_ref())
            .map(&f)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Mean testbed time per trial in seconds.
    pub fn mean_testbed_seconds(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().map(|t| t.testbed_seconds).sum::<f64>() / self.trials.len() as f64
    }

    /// Cache hits summed over the cell's trials.
    pub fn total_cache_hits(&self) -> usize {
        self.trials.iter().map(|t| t.cache_hits).sum()
    }

    /// Coalesced waits summed over the cell's trials.
    pub fn total_coalesced_waits(&self) -> usize {
        self.trials.iter().map(|t| t.coalesced_waits).sum()
    }

    /// Batched solves summed over the cell's trials.
    pub fn total_batched_solves(&self) -> usize {
        self.trials.iter().map(|t| t.batched_solves).sum()
    }

    /// Billed testbed seconds summed over the cell's trials.
    pub fn total_testbed_seconds(&self) -> f64 {
        self.trials.iter().map(|t| t.testbed_seconds).sum()
    }
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Trials per (method, group) — 10 in the paper.
    pub trials: usize,
    /// Base seed; trial `k` of group `g` uses a derived seed.
    pub seed: u64,
    /// BOBO budget configuration.
    pub bobo: BoboConfig,
    /// RLBO budget configuration.
    pub rlbo: RlboConfig,
    /// Artisan options.
    pub artisan: ArtisanOptions,
    /// Cost model for the Time column.
    pub cost_model: CostModel,
    /// Capacity of a shared, content-addressed simulation cache every
    /// trial runs against. `None` (the default) runs each trial on a
    /// bare [`Simulator`], exactly as the paper's testbed would.
    pub sim_cache: Option<usize>,
    /// When set, the Artisan rows run as *supervised* sessions (retry,
    /// backoff, budget) and each trial carries its [`SessionReport`].
    pub supervision: Option<Supervisor>,
    /// When set (with supervision), every Artisan trial's backend is
    /// wrapped in a [`FaultySim`] carrying this plan, reseeded per
    /// trial (`plan.seed ^ trial seed`) so each trial rolls its own
    /// deterministic fault dice — the Table 3 robustness columns.
    pub fault_plan: Option<FaultPlan>,
    /// When set (with supervision), every Artisan trial keeps a
    /// crash-safe write-ahead journal under this directory and resumes
    /// from it on re-run (see `artisan_resilience::journal`).
    pub journal_dir: Option<PathBuf>,
    /// When set, every trial's backend is wrapped in a [`CornerSim`]
    /// evaluating this PVT grid, so reports carry worst-case verdicts
    /// and supervised validation requires the worst corner to clear the
    /// spec too. `None` (the default) keeps nominal-only analysis; the
    /// `ARTISAN_CORNERS=0` kill switch disables the wrapper at runtime
    /// even when a grid is configured.
    pub corners: Option<CornerGrid>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            trials: 10,
            seed: 2024,
            bobo: BoboConfig::default(),
            rlbo: RlboConfig::default(),
            artisan: ArtisanOptions::paper_default(),
            cost_model: CostModel::default(),
            sim_cache: None,
            supervision: None,
            fault_plan: None,
            journal_dir: None,
            corners: None,
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for tests: few trials, small budgets, no
    /// LLM training.
    pub fn smoke(trials: usize) -> Self {
        ExperimentConfig {
            trials,
            seed: 7,
            bobo: BoboConfig {
                budget: 40,
                initial_samples: 15,
                pool: 50,
                ..BoboConfig::default()
            },
            rlbo: RlboConfig {
                budget: 40,
                ..RlboConfig::default()
            },
            artisan: ArtisanOptions::fast(),
            cost_model: CostModel::default(),
            sim_cache: None,
            supervision: None,
            fault_plan: None,
            journal_dir: None,
            corners: None,
        }
    }

    /// The same configuration with a shared simulation cache of
    /// `capacity` fingerprints.
    #[must_use]
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.sim_cache = Some(capacity);
        self
    }

    /// The same configuration with supervised Artisan sessions.
    #[must_use]
    pub fn with_supervision(mut self, supervisor: Supervisor) -> Self {
        self.supervision = Some(supervisor);
        self
    }

    /// The same configuration with fault-injected Artisan trials
    /// (implies supervision: a default [`Supervisor`] is installed when
    /// none was configured).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        if self.supervision.is_none() {
            self.supervision = Some(Supervisor::default());
        }
        self
    }

    /// The same configuration with journaled Artisan trials under
    /// `dir` (implies supervision, as [`ExperimentConfig::with_faults`]).
    #[must_use]
    pub fn with_journal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        if self.supervision.is_none() {
            self.supervision = Some(Supervisor::default());
        }
        self
    }

    /// The same configuration with PVT corner verdicts attached to
    /// every report (see [`ExperimentConfig::corners`]).
    #[must_use]
    pub fn with_corners(mut self, grid: CornerGrid) -> Self {
        self.corners = Some(grid);
        self
    }
}

/// Runs one trial of `method` against a caller-supplied backend. The
/// backend's ledger is read back into the record, so cache hits,
/// coalesced waits, and batched solves survive into Table 3. `fault`
/// is the per-trial fault plan the backend was wrapped with (if any) —
/// it participates in the journal-file identity, never in execution
/// here.
fn trial<B: SimBackend>(
    method: Method,
    spec: &Spec,
    config: &ExperimentConfig,
    artisan: &mut Artisan,
    sim: &mut B,
    seed: u64,
    fault: Option<FaultPlan>,
) -> TrialRecord {
    match method {
        Method::Artisan => {
            if let Some(supervisor) = &config.supervision {
                let (report, journal) = match &config.journal_dir {
                    Some(dir) => {
                        let fingerprint = faulted_plan_fingerprint(
                            spec,
                            supervisor,
                            &artisan.agent().config(),
                            fault.as_ref(),
                        );
                        let path = dir.join(session_file_name(fingerprint, seed));
                        let (mut journal, load) = SessionJournal::open(&path, fingerprint, seed);
                        let report = artisan.design_supervised_journaled(
                            spec,
                            sim,
                            supervisor,
                            seed,
                            &mut journal,
                        );
                        (report, Some(load))
                    }
                    None => (artisan.design_supervised(spec, sim, supervisor, seed), None),
                };
                TrialRecord {
                    success: report.success,
                    performance: report
                        .outcome
                        .as_ref()
                        .and_then(|o| o.report.as_ref())
                        .map(|r| r.performance),
                    testbed_seconds: report.testbed_seconds,
                    cache_hits: report.cache_hits,
                    coalesced_waits: report.coalesced_waits,
                    batched_solves: report.batched_solves,
                    session: Some(report),
                    journal,
                }
            } else {
                let outcome = artisan.design_with(spec, sim, seed);
                TrialRecord {
                    success: outcome.design.success,
                    performance: outcome.design.report.map(|r| r.performance),
                    testbed_seconds: outcome.testbed_seconds,
                    cache_hits: outcome.ledger.cache_hits() as usize,
                    coalesced_waits: outcome.ledger.coalesced_waits() as usize,
                    batched_solves: outcome.ledger.batched_solves() as usize,
                    session: None,
                    journal: None,
                }
            }
        }
        other => {
            let mut rng = StdRng::seed_from_u64(seed);
            let result = match other {
                Method::Bobo => Bobo::new(config.bobo).run(spec, sim, &mut rng),
                Method::Rlbo => Rlbo::new(config.rlbo).run(spec, sim, &mut rng),
                Method::Gpt4 => Gpt4Baseline.optimize(spec, sim, &mut rng),
                Method::Llama2 => Llama2Baseline.optimize(spec, sim, &mut rng),
                Method::Artisan => unreachable!("handled above"),
            };
            let ledger = *sim.ledger();
            TrialRecord {
                success: result.success,
                performance: result.performance,
                testbed_seconds: ledger.testbed_seconds(&config.cost_model),
                cache_hits: ledger.cache_hits() as usize,
                coalesced_waits: ledger.coalesced_waits() as usize,
                batched_solves: ledger.batched_solves() as usize,
                session: None,
                journal: None,
            }
        }
    }
}

/// Runs one (method, group) cell on per-trial bare simulators.
pub fn run_cell(
    method: Method,
    group_name: &'static str,
    spec: &Spec,
    config: &ExperimentConfig,
    artisan: &mut Artisan,
) -> GroupResult {
    run_cell_with_cache(method, group_name, spec, config, artisan, None)
}

/// Runs one (method, group) cell. When `cache` is given, every trial
/// runs on a fresh [`CachedSim`] sharing that cache (each trial keeps
/// its own ledger, so per-trial billing stays isolated); otherwise each
/// trial gets a bare [`Simulator`].
pub fn run_cell_with_cache(
    method: Method,
    group_name: &'static str,
    spec: &Spec,
    config: &ExperimentConfig,
    artisan: &mut Artisan,
    cache: Option<&Arc<SimCache>>,
) -> GroupResult {
    let mut trials = Vec::with_capacity(config.trials);
    for k in 0..config.trials {
        let seed = config
            .seed
            .wrapping_mul(1_000_003)
            .wrapping_add(k as u64 * 7919)
            ^ (group_name.len() as u64)
            ^ ((method as u64) << 32);
        // Fault injection targets the supervised Artisan rows: each
        // trial rolls its own dice via a per-trial reseed, and the
        // supervisor absorbs the faults (retry/backoff/validation).
        let fault = match (method, &config.supervision, config.fault_plan) {
            (Method::Artisan, Some(_), Some(mut plan)) => {
                plan.seed ^= seed;
                Some(plan)
            }
            _ => None,
        };
        // Layered backend stack, innermost first: Simulator → report
        // cache → corner verdicts → fault injection. Corners sit
        // *outside* the report cache (cached snapshots are nominal-only;
        // verdicts live in their own namespaced map) and faults sit
        // outermost so injected errors/poison perturb whole observations
        // — see the stacking rule in `artisan_sim::corners`.
        let record = {
            let base: Box<dyn SimBackend> = match cache {
                Some(cache) => Box::new(CachedSim::for_simulator(
                    Simulator::new(),
                    Arc::clone(cache),
                )),
                None => Box::new(Simulator::new()),
            };
            let cornered: Box<dyn SimBackend> = match &config.corners {
                Some(grid) if !grid.is_empty() => {
                    let mut sim = CornerSim::from_env(base, grid.clone());
                    if let Some(cache) = cache {
                        sim = sim.with_cache(Arc::clone(cache));
                    }
                    Box::new(sim)
                }
                _ => base,
            };
            match fault {
                Some(plan) => {
                    let mut sim = FaultySim::new(cornered, plan);
                    trial(method, spec, config, artisan, &mut sim, seed, Some(plan))
                }
                None => {
                    let mut sim = cornered;
                    trial(method, spec, config, artisan, &mut sim, seed, None)
                }
            }
        };
        trials.push(record);
    }
    GroupResult {
        method,
        group: group_name,
        trials,
    }
}

/// The assembled Table 3.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// All (method, group) cells, method-major in the paper's order.
    pub cells: Vec<GroupResult>,
    /// Aggregate statistics of the shared simulation cache, when the
    /// experiment ran with one.
    pub cache_stats: Option<CacheStats>,
    /// Wall-clock time the whole experiment took to compute.
    pub wall_seconds: f64,
}

impl Table3 {
    /// Runs the full experiment. A cache capacity in
    /// [`ExperimentConfig::sim_cache`] builds a fresh shared cache for
    /// the run; use [`Table3::run_with_cache`] to supply a warm one.
    pub fn run(config: &ExperimentConfig) -> Table3 {
        Table3::run_with_cache(config, config.sim_cache.map(SimCache::shared))
    }

    /// Runs the full experiment against a caller-supplied shared cache
    /// (possibly warm-started from a snapshot); `None` runs uncached.
    pub fn run_with_cache(config: &ExperimentConfig, cache: Option<Arc<SimCache>>) -> Table3 {
        let start = Instant::now();
        let mut artisan = Artisan::new(config.artisan.clone());
        let mut cells = Vec::new();
        for method in Method::ALL {
            for (group, spec) in Spec::table2() {
                cells.push(run_cell_with_cache(
                    method,
                    group,
                    &spec,
                    config,
                    &mut artisan,
                    cache.as_ref(),
                ));
            }
        }
        Table3 {
            cells,
            cache_stats: cache.map(|c| c.stats()),
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Looks up a cell.
    pub fn cell(&self, method: Method, group: &str) -> Option<&GroupResult> {
        self.cells
            .iter()
            .find(|c| c.method == method && c.group == group)
    }

    /// The §4.2 headline: the speedup range of Artisan over the
    /// optimization baselines, `(min, max)` over groups where both have
    /// measurements.
    pub fn speedup_range(&self) -> Option<(f64, f64)> {
        let mut ratios = Vec::new();
        for (group, _) in Spec::table2() {
            let artisan = self.cell(Method::Artisan, group)?.mean_testbed_seconds();
            if artisan <= 0.0 {
                continue;
            }
            for m in [Method::Bobo, Method::Rlbo] {
                let baseline = self.cell(m, group)?.mean_testbed_seconds();
                if baseline > 0.0 {
                    ratios.push(baseline / artisan);
                }
            }
        }
        let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (!ratios.is_empty()).then_some((min, max))
    }

    /// Journal warnings across all trials (rejected or truncated
    /// session journals) — CLIs surface these on stderr.
    pub fn journal_warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        for cell in &self.cells {
            for (k, t) in cell.trials.iter().enumerate() {
                if let Some(w) = t.journal.as_ref().and_then(|j| j.warning.as_ref()) {
                    out.push(format!(
                        "{} {} trial {k}: {w}",
                        cell.method.name(),
                        cell.group
                    ));
                }
            }
        }
        out
    }

    /// Completed attempts restored from session journals across all
    /// trials — work a previous (possibly crashed) run already paid for.
    pub fn journal_attempts_restored(&self) -> usize {
        self.cells
            .iter()
            .flat_map(|c| &c.trials)
            .filter_map(|t| t.journal.as_ref())
            .map(|j| j.attempts_loaded)
            .sum()
    }

    /// Trials resumed from a terminal journal record (nothing re-run).
    pub fn journal_terminal_resumes(&self) -> usize {
        self.cells
            .iter()
            .flat_map(|c| &c.trials)
            .filter_map(|t| t.journal.as_ref())
            .filter(|j| j.terminal)
            .count()
    }

    /// Whether any trial ran with a journal.
    pub fn journaled(&self) -> bool {
        self.cells
            .iter()
            .flat_map(|c| &c.trials)
            .any(|t| t.journal.is_some())
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<8} {:<5} {:>6} {:>9} {:>10} {:>8} {:>10} {:>10} {:>9}",
            "Method", "Exp", "Succ.", "Gain(dB)", "GBW(MHz)", "PM(deg)", "Power(uW)", "FoM", "Time"
        )?;
        for cell in &self.cells {
            let (s, n) = cell.success_rate();
            let fmt_metric = |v: Option<f64>| match v {
                Some(x) => format!("{x:.1}"),
                None => "fail".to_string(),
            };
            writeln!(
                f,
                "{:<8} {:<5} {:>4}/{:<1} {:>9} {:>10} {:>8} {:>10} {:>10} {:>9}",
                cell.method.name(),
                cell.group,
                s,
                n,
                fmt_metric(cell.mean_over_successes(|p| p.gain.value())),
                match cell.mean_over_successes(|p| p.gbw.value() / 1e6) {
                    Some(x) => format!("{x:.2}"),
                    None => "fail".to_string(),
                },
                fmt_metric(cell.mean_over_successes(|p| p.pm.value())),
                fmt_metric(cell.mean_over_successes(|p| p.power.value() * 1e6)),
                fmt_metric(cell.mean_over_successes(|p| p.fom)),
                format_testbed_time(cell.mean_testbed_seconds()),
            )?;
        }
        if let Some((lo, hi)) = self.speedup_range() {
            writeln!(
                f,
                "Artisan accelerates the design process by {lo:.1}x to {hi:.1}x over the \
                 optimization baselines."
            )?;
        }
        if let Some(stats) = &self.cache_stats {
            writeln!(f, "Shared sim cache: {stats}")?;
            for cell in &self.cells {
                let (hits, waits, batched) = (
                    cell.total_cache_hits(),
                    cell.total_coalesced_waits(),
                    cell.total_batched_solves(),
                );
                if hits + waits + batched > 0 {
                    writeln!(
                        f,
                        "  {:<8} {:<5} {} cache hit(s), {} coalesced wait(s), \
                         {} batched solve(s), {} billed",
                        cell.method.name(),
                        cell.group,
                        hits,
                        waits,
                        batched,
                        format_testbed_time(cell.total_testbed_seconds()),
                    )?;
                }
            }
        }
        for cell in &self.cells {
            for (k, t) in cell.trials.iter().enumerate() {
                if let Some(session) = &t.session {
                    writeln!(
                        f,
                        "  {:<8} {:<5} trial {k}: {session}",
                        cell.method.name(),
                        cell.group,
                    )?;
                }
            }
        }
        if self.journaled() {
            writeln!(
                f,
                "Session journals: {} attempt(s) restored, {} trial(s) resumed terminal",
                self.journal_attempts_restored(),
                self.journal_terminal_resumes(),
            )?;
            for w in self.journal_warnings() {
                writeln!(f, "  journal warning: {w}")?;
            }
        }
        writeln!(f, "(computed in {:.1}s wall-clock)", self.wall_seconds)
    }
}

/// One row of the Table 3 robustness sweep: the supervised Artisan
/// success rate, observed faults, and billed-cost inflation at one
/// injected fault rate (aggregated over every Table 2 group).
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessRow {
    /// Injected transient error/poison rate (0 = the clean baseline).
    pub fault_rate: f64,
    /// Successful trials at this rate.
    pub successes: usize,
    /// Trials run at this rate.
    pub trials: usize,
    /// Faults the supervisors observed (injected errors, poisoned
    /// reports, latency spikes).
    pub faults_observed: usize,
    /// Mean billed testbed seconds per trial.
    pub mean_testbed_seconds: f64,
    /// Billed-cost inflation versus the clean baseline
    /// (`mean_testbed_seconds / clean mean`), 1.0 for the baseline row.
    pub cost_inflation: f64,
}

/// The robustness companion to Table 3: supervised Artisan sessions
/// swept across injected fault rates, quantifying how gracefully
/// success rate degrades and how much the retries/backoff inflate
/// billed cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// One row per swept fault rate, clean baseline (rate 0) first.
    pub rows: Vec<RobustnessRow>,
}

impl RobustnessReport {
    /// Runs the sweep: a clean supervised baseline, then every positive
    /// rate in `fault_rates` as a [`FaultPlan::flaky`] wrapper around
    /// each trial's backend. Supervision comes from
    /// `config.supervision` (default [`Supervisor`] when unset);
    /// `config.journal_dir` and `config.sim_cache` are honoured.
    pub fn run(config: &ExperimentConfig, fault_rates: &[f64]) -> RobustnessReport {
        let supervisor = config.supervision.unwrap_or_default();
        let mut artisan = Artisan::new(config.artisan.clone());
        let mut rates = vec![0.0];
        rates.extend(fault_rates.iter().copied().filter(|r| *r > 0.0));
        let mut rows = Vec::with_capacity(rates.len());
        let mut clean_mean = 0.0f64;
        for rate in rates {
            let mut cfg = config.clone();
            cfg.supervision = Some(supervisor);
            cfg.fault_plan = (rate > 0.0).then(|| FaultPlan::flaky(config.seed, rate));
            let cache = cfg.sim_cache.map(SimCache::shared);
            let mut successes = 0;
            let mut trials = 0;
            let mut faults_observed = 0;
            let mut total_seconds = 0.0;
            for (group, spec) in Spec::table2() {
                let cell = run_cell_with_cache(
                    Method::Artisan,
                    group,
                    &spec,
                    &cfg,
                    &mut artisan,
                    cache.as_ref(),
                );
                let (s, n) = cell.success_rate();
                successes += s;
                trials += n;
                faults_observed += cell
                    .trials
                    .iter()
                    .filter_map(|t| t.session.as_ref())
                    .map(|r| r.faults_observed)
                    .sum::<usize>();
                total_seconds += cell.total_testbed_seconds();
            }
            let mean = if trials > 0 {
                total_seconds / trials as f64
            } else {
                0.0
            };
            if rate == 0.0 {
                clean_mean = mean;
            }
            rows.push(RobustnessRow {
                fault_rate: rate,
                successes,
                trials,
                faults_observed,
                mean_testbed_seconds: mean,
                cost_inflation: if clean_mean > 0.0 {
                    mean / clean_mean
                } else {
                    1.0
                },
            });
        }
        RobustnessReport { rows }
    }
}

impl fmt::Display for RobustnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>7} {:>8} {:>10} {:>9}",
            "FaultRate", "Succ.", "Faults", "MeanTime", "CostInfl"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<10} {:>4}/{:<2} {:>8} {:>10} {:>8.2}x",
                format!("{:.0}%", row.fault_rate * 100.0),
                row.successes,
                row.trials,
                row.faults_observed,
                format_testbed_time(row.mean_testbed_seconds),
                row.cost_inflation,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_experiment_has_paper_shape() {
        let config = ExperimentConfig::smoke(2);
        let table = Table3::run(&config);
        assert_eq!(table.cells.len(), 25);

        // LLM baselines fail everywhere.
        for group in ["G-1", "G-2", "G-3", "G-4", "G-5"] {
            assert_eq!(table.cell(Method::Gpt4, group).unwrap().success_rate().0, 0);
            assert_eq!(
                table.cell(Method::Llama2, group).unwrap().success_rate().0,
                0
            );
        }
        // Artisan (noiseless smoke config) succeeds everywhere.
        for group in ["G-1", "G-2", "G-3", "G-4", "G-5"] {
            let (s, n) = table.cell(Method::Artisan, group).unwrap().success_rate();
            assert_eq!(s, n, "{group}");
        }
        // Artisan is much faster than the sim-hungry baselines.
        let artisan_t = table
            .cell(Method::Artisan, "G-1")
            .unwrap()
            .mean_testbed_seconds();
        let bobo_t = table
            .cell(Method::Bobo, "G-1")
            .unwrap()
            .mean_testbed_seconds();
        assert!(
            bobo_t > 2.0 * artisan_t,
            "bobo {bobo_t} artisan {artisan_t}"
        );
    }

    #[test]
    fn display_renders_fail_cells() {
        let config = ExperimentConfig::smoke(1);
        let table = Table3::run(&config);
        let text = table.to_string();
        assert!(text.contains("fail"));
        assert!(text.contains("Artisan"));
        assert!(text.contains("G-5"));
    }

    #[test]
    fn cached_experiment_matches_uncached_and_bills_less() {
        let uncached = Table3::run(&ExperimentConfig::smoke(2));
        let cached = Table3::run(&ExperimentConfig::smoke(2).with_cache(4096));
        assert!(uncached.cache_stats.is_none());
        let stats = cached.cache_stats.as_ref().unwrap_or_else(|| {
            panic!("cached run lost its stats");
        });
        // Under the ARTISAN_SIM_CACHE=0 kill-switch the cached run is a
        // pure pass-through; the transparency checks below still apply,
        // but nothing hits and nothing gets cheaper.
        let enabled = artisan_sim::cache::cache_enabled_from_env();
        if enabled {
            assert!(stats.hits > 0, "repeated trials never hit: {stats}");
        }

        // Same outcomes and metrics, cell for cell: the cache must be
        // observationally transparent.
        assert_eq!(uncached.cells.len(), cached.cells.len());
        let mut cached_total = 0.0;
        let mut uncached_total = 0.0;
        let mut total_hits = 0;
        for (a, b) in uncached.cells.iter().zip(&cached.cells) {
            assert_eq!(a.method, b.method);
            assert_eq!(a.group, b.group);
            assert_eq!(
                a.success_rate(),
                b.success_rate(),
                "{} {}",
                a.group,
                b.group
            );
            assert_eq!(
                a.mean_over_successes(|p| p.fom),
                b.mean_over_successes(|p| p.fom),
                "{} {}",
                a.method.name(),
                a.group
            );
            assert!(
                b.mean_testbed_seconds() <= a.mean_testbed_seconds() + 1e-9,
                "{} {}: cached {} > uncached {}",
                a.method.name(),
                a.group,
                b.mean_testbed_seconds(),
                a.mean_testbed_seconds()
            );
            uncached_total += a.total_testbed_seconds();
            cached_total += b.total_testbed_seconds();
            total_hits += b.total_cache_hits();
        }
        if enabled {
            assert!(
                cached_total < uncached_total,
                "cached {cached_total} !< uncached {uncached_total}"
            );
        }
        // Per-trial ledgers agree with the aggregate cache counters.
        assert_eq!(total_hits as u64, stats.hits + stats.coalesced);

        // The rendered table surfaces the aggregate and per-cell lines.
        let text = cached.to_string();
        assert!(text.contains("Shared sim cache:"), "{text}");
        if enabled {
            assert!(text.contains("cache hit(s)"), "{text}");
        }
    }

    #[test]
    fn supervised_experiment_carries_session_reports() {
        let config = ExperimentConfig::smoke(1).with_supervision(Supervisor::default());
        let table = Table3::run(&config);
        for group in ["G-1", "G-2", "G-3", "G-4", "G-5"] {
            let cell = table
                .cell(Method::Artisan, group)
                .unwrap_or_else(|| panic!("missing Artisan {group}"));
            for t in &cell.trials {
                let session = t
                    .session
                    .as_ref()
                    .unwrap_or_else(|| panic!("supervised trial lost its report"));
                assert_eq!(session.success, t.success);
                assert_eq!(session.testbed_seconds, t.testbed_seconds);
            }
            // Baseline rows stay unsupervised.
            let bobo = table
                .cell(Method::Bobo, group)
                .unwrap_or_else(|| panic!("missing BOBO {group}"));
            assert!(bobo.trials.iter().all(|t| t.session.is_none()));
        }
        let text = table.to_string();
        assert!(text.contains("trial 0: session:"), "{text}");
    }

    #[test]
    fn faulted_cells_keep_sessions_and_observe_faults() {
        let mut config = ExperimentConfig::smoke(2).with_supervision(Supervisor::default());
        config = config.with_faults(FaultPlan::flaky(99, 0.5));
        let mut artisan = Artisan::new(config.artisan.clone());
        let spec = Spec::g1();
        let cell = run_cell_with_cache(Method::Artisan, "G-1", &spec, &config, &mut artisan, None);
        assert_eq!(cell.trials.len(), 2);
        let faults: usize = cell
            .trials
            .iter()
            .filter_map(|t| t.session.as_ref())
            .map(|s| s.faults_observed)
            .sum();
        assert!(faults > 0, "flaky(0.5) plan injected no faults");
        // Fault injection is deterministic: the same cell replays
        // trial-for-trial.
        let again = run_cell_with_cache(Method::Artisan, "G-1", &spec, &config, &mut artisan, None);
        for (a, b) in cell.trials.iter().zip(&again.trials) {
            assert_eq!(a.success, b.success);
            assert_eq!(a.testbed_seconds, b.testbed_seconds);
            assert_eq!(a.session, b.session);
        }
        // Baseline rows never see the fault plan.
        let bobo = run_cell_with_cache(Method::Bobo, "G-1", &spec, &config, &mut artisan, None);
        assert!(bobo.trials.iter().all(|t| t.session.is_none()));
    }

    #[test]
    fn robustness_report_degrades_gracefully() {
        let config = ExperimentConfig::smoke(1).with_supervision(Supervisor::default());
        let report = RobustnessReport::run(&config, &[0.4]);
        assert_eq!(report.rows.len(), 2);
        let clean = &report.rows[0];
        assert_eq!(clean.fault_rate, 0.0);
        assert_eq!(clean.trials, 5, "one trial per Table 2 group");
        assert_eq!(clean.cost_inflation, 1.0);
        let faulted = &report.rows[1];
        assert_eq!(faulted.fault_rate, 0.4);
        assert!(faulted.faults_observed > 0, "sweep observed no faults");
        assert!(
            faulted.successes <= clean.successes,
            "faults cannot raise the success rate: {} > {}",
            faulted.successes,
            clean.successes
        );
        assert!(
            faulted.cost_inflation >= 1.0,
            "retries/backoff cannot deflate billed cost: {}",
            faulted.cost_inflation
        );
        let text = report.to_string();
        assert!(text.contains("CostInfl"), "{text}");
        assert!(text.contains("40%"), "{text}");
    }

    #[test]
    fn cornered_cells_attach_worst_case_and_keep_nominal_identity() {
        use artisan_sim::corners_enabled_from_env;
        // A nominal-only grid is observationally inert: same successes
        // and metrics as the plain cell, with a 1-corner verdict riding
        // on every surviving report.
        let spec = Spec::g1();
        let plain_cfg = ExperimentConfig::smoke(2).with_supervision(Supervisor::default());
        let mut artisan = Artisan::new(plain_cfg.artisan.clone());
        let plain = run_cell_with_cache(
            Method::Artisan,
            "G-1",
            &spec,
            &plain_cfg,
            &mut artisan,
            None,
        );
        let cfg = plain_cfg.clone().with_corners(CornerGrid::nominal());
        let cornered = run_cell_with_cache(Method::Artisan, "G-1", &spec, &cfg, &mut artisan, None);
        for (a, b) in plain.trials.iter().zip(&cornered.trials) {
            assert_eq!(a.success, b.success);
            assert_eq!(a.performance.map(|p| p.fom), b.performance.map(|p| p.fom));
            if corners_enabled_from_env() {
                let report = b
                    .session
                    .as_ref()
                    .and_then(|s| s.outcome.as_ref())
                    .and_then(|o| o.report.as_ref())
                    .unwrap_or_else(|| panic!("cornered trial lost its report"));
                let wc = report
                    .worst_case
                    .unwrap_or_else(|| panic!("no corner verdict on a cornered trial"));
                assert_eq!(wc.corners, 1);
                assert_eq!(wc.failing, 0);
            }
        }
        // Corner billing can only raise testbed time, never lower it.
        assert!(
            cornered.mean_testbed_seconds() >= plain.mean_testbed_seconds() - 1e-9,
            "corners deflated billing: {} < {}",
            cornered.mean_testbed_seconds(),
            plain.mean_testbed_seconds()
        );
    }

    #[test]
    fn journaled_table3_resumes_terminal_sessions() {
        let dir =
            std::env::temp_dir().join(format!("artisan-table3-journal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("{e}"));
        let config = ExperimentConfig::smoke(1)
            .with_supervision(Supervisor::default())
            .with_journal_dir(&dir);
        let first = Table3::run(&config);
        assert!(first.journaled());
        assert_eq!(first.journal_terminal_resumes(), 0);
        assert!(
            first.journal_warnings().is_empty(),
            "{:?}",
            first.journal_warnings()
        );
        let second = Table3::run(&config);
        // Every Artisan supervised trial (5 groups × 1 trial) resumes
        // from its terminal journal record instead of re-running.
        assert_eq!(second.journal_terminal_resumes(), 5);
        assert!(second.journal_warnings().is_empty());
        for (a, b) in first.cells.iter().zip(&second.cells) {
            for (ta, tb) in a.trials.iter().zip(&b.trials) {
                assert_eq!(ta.success, tb.success);
                assert_eq!(ta.testbed_seconds, tb.testbed_seconds);
                assert_eq!(ta.session, tb.session);
            }
        }
        let text = second.to_string();
        assert!(text.contains("Session journals:"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mean_over_successes_ignores_failures() {
        use artisan_circuit::units::{Decibels, Degrees, Hertz, Watts};
        let perf = Performance {
            gain: Decibels(100.0),
            gbw: Hertz(1e6),
            pm: Degrees(60.0),
            power: Watts(50e-6),
            fom: 200.0,
        };
        let cell = GroupResult {
            method: Method::Artisan,
            group: "G-1",
            trials: vec![
                TrialRecord {
                    success: true,
                    performance: Some(perf),
                    testbed_seconds: 100.0,
                    cache_hits: 0,
                    coalesced_waits: 0,
                    batched_solves: 0,
                    session: None,
                    journal: None,
                },
                TrialRecord {
                    success: false,
                    performance: Some(Performance {
                        gain: Decibels(10.0),
                        ..perf
                    }),
                    testbed_seconds: 300.0,
                    cache_hits: 0,
                    coalesced_waits: 0,
                    batched_solves: 0,
                    session: None,
                    journal: None,
                },
            ],
        };
        assert_eq!(cell.success_rate(), (1, 2));
        assert_eq!(cell.mean_over_successes(|p| p.gain.value()), Some(100.0));
        assert_eq!(cell.mean_testbed_seconds(), 200.0);
    }
}
