//! `artisan-lint` — batch ERC for netlist corpora.
//!
//! Lints every `.sp` file named on the command line (directories are
//! searched recursively), printing either the human-readable report or
//! the stable `artisan-erc/1` JSON, and exits non-zero when any file
//! carries Error-severity diagnostics — the CI contract.
//!
//! ```text
//! artisan-lint [--json] [--errors-only] [--no-fail] <PATH>...
//! ```

use artisan_circuit::Netlist;
use artisan_lint::{Linter, JSON_SCHEMA};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
artisan-lint: graph-based electrical-rule checking for netlist corpora

USAGE:
    artisan-lint [OPTIONS] <PATH>...

ARGS:
    <PATH>...        .sp netlist files, or directories searched
                     recursively for .sp files

OPTIONS:
    --json           emit one artisan-erc/1 JSON object per file on
                     stdout (an array), instead of human-readable text
    --errors-only    run only Error-severity rules (the simulator's
                     admission gate configuration)
    --no-fail        always exit 0, even when errors are found
    -h, --help       print this help
";

struct Options {
    json: bool,
    errors_only: bool,
    no_fail: bool,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        errors_only: false,
        no_fail: false,
        paths: Vec::new(),
    };
    for arg in args {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--errors-only" => opts.errors_only = true,
            "--no-fail" => opts.no_fail = true,
            "-h" | "--help" => return Err(String::new()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option `{flag}`"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.paths.is_empty() {
        return Err("no input paths given".to_string());
    }
    Ok(opts)
}

/// Collects `.sp` files: explicit files verbatim, directories
/// recursively, deterministically sorted.
fn collect_netlists(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            walk(path, &mut files)?;
        } else if path.is_file() {
            files.push(path.clone());
        } else {
            return Err(format!("{}: no such file or directory", path.display()));
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|ext| ext == "sp") {
            files.push(path);
        }
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The per-file outcome: a lint report, or a parse failure (which CI
/// treats as an error like any other).
enum Outcome {
    Report(artisan_lint::LintReport),
    ParseError(String),
}

impl Outcome {
    fn failed(&self) -> bool {
        match self {
            Outcome::Report(r) => r.has_errors(),
            Outcome::ParseError(_) => true,
        }
    }

    fn to_json(&self, file: &Path) -> String {
        match self {
            Outcome::Report(r) => format!(
                "{{\"file\":{},\"report\":{}}}",
                json_escape(&file.display().to_string()),
                r.to_json()
            ),
            Outcome::ParseError(e) => format!(
                "{{\"file\":{},\"schema\":{},\"parse_error\":{}}}",
                json_escape(&file.display().to_string()),
                json_escape(JSON_SCHEMA),
                json_escape(e)
            ),
        }
    }

    fn render(&self, file: &Path) -> String {
        match self {
            Outcome::Report(r) => format!("{}: {}", file.display(), r.render()),
            Outcome::ParseError(e) => format!("{}: parse error: {e}", file.display()),
        }
    }
}

fn lint_file(linter: &Linter, file: &Path) -> Outcome {
    let text = match std::fs::read_to_string(file) {
        Ok(text) => text,
        Err(e) => return Outcome::ParseError(e.to_string()),
    };
    match Netlist::parse(&text) {
        Ok(netlist) => Outcome::Report(linter.lint(&netlist)),
        Err(e) => Outcome::ParseError(e.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("artisan-lint: {message}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let files = match collect_netlists(&opts.paths) {
        Ok(files) => files,
        Err(message) => {
            eprintln!("artisan-lint: {message}");
            return ExitCode::from(2);
        }
    };
    if files.is_empty() {
        eprintln!("artisan-lint: no .sp files found under the given paths");
        return ExitCode::from(2);
    }

    let linter = if opts.errors_only {
        Linter::errors_only()
    } else {
        Linter::default()
    };
    let outcomes: Vec<(PathBuf, Outcome)> = files
        .iter()
        .map(|f| (f.clone(), lint_file(&linter, f)))
        .collect();
    let failures = outcomes.iter().filter(|(_, o)| o.failed()).count();

    if opts.json {
        let body: Vec<String> = outcomes.iter().map(|(f, o)| o.to_json(f)).collect();
        println!("[{}]", body.join(","));
    } else {
        for (file, outcome) in &outcomes {
            println!("{}", outcome.render(file));
        }
        println!(
            "artisan-lint: {} file(s), {} with errors",
            outcomes.len(),
            failures
        );
    }

    if failures > 0 && !opts.no_fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
