use crate::diagnostic::{json_string, Diagnostic, Severity};
use std::fmt;

/// Identifier of the machine-readable diagnostic schema emitted by
/// [`LintReport::to_json`], [`Diagnostic::to_json`], the simulator's
/// `BadNetlistReport`, and the `artisan-lint` CLI. Bump only with an
/// accompanying migration note in `DESIGN.md`.
pub const JSON_SCHEMA: &str = "artisan-erc/1";

/// The outcome of linting one netlist: every diagnostic that fired,
/// errors first.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    pub(crate) fn new(diagnostics: Vec<Diagnostic>) -> Self {
        LintReport { diagnostics }
    }

    /// All diagnostics, errors first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// True when nothing fired at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one `Error`-severity diagnostic fired.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The `Error`-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Stable codes of the error diagnostics, deduplicated, in code
    /// order.
    pub fn error_codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.errors().map(|d| d.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// One-line summary, e.g. `"2 errors, 1 warning"` or `"clean"`.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "clean".to_string();
        }
        let plural = |n: usize, what: &str| match n {
            0 => None,
            1 => Some(format!("1 {what}")),
            n => Some(format!("{n} {what}s")),
        };
        [
            plural(self.count(Severity::Error), "error"),
            plural(self.count(Severity::Warning), "warning"),
            plural(self.count(Severity::Info), "info note"),
        ]
        .into_iter()
        .flatten()
        .collect::<Vec<_>>()
        .join(", ")
    }

    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!("erc: {}", self.summary());
        for d in &self.diagnostics {
            out.push_str("\n  ");
            out.push_str(&d.render());
        }
        out
    }

    /// Machine-readable JSON in the [`JSON_SCHEMA`] format
    /// (`{"schema":…,"summary":…,"errors":…,"warnings":…,"infos":…,
    /// "diagnostics":[…]}`); each diagnostic uses
    /// [`Diagnostic::to_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"schema\":{},\"summary\":{},\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            json_string(JSON_SCHEMA),
            json_string(&self.summary()),
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Rule;
    use artisan_circuit::Node;

    use crate::diagnostic::Span;

    fn sample() -> LintReport {
        LintReport::new(vec![
            Diagnostic::new(Rule::FloatingNode, Span::Node(Node::N1), "float \"q\"")
                .suggest("fix\nit"),
            Diagnostic::new(Rule::SelfLoop, Span::Element("R1".into()), "loop"),
        ])
    }

    #[test]
    fn summary_counts_by_severity() {
        let r = sample();
        assert_eq!(r.summary(), "1 error, 1 warning");
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert_eq!(r.error_codes(), vec!["ERC004"]);
    }

    #[test]
    fn empty_report_is_clean() {
        let r = LintReport::default();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        assert_eq!(r.summary(), "clean");
        assert_eq!(
            r.to_json(),
            "{\"schema\":\"artisan-erc/1\",\"summary\":\"clean\",\"errors\":0,\
             \"warnings\":0,\"infos\":0,\"diagnostics\":[]}"
        );
    }

    #[test]
    fn json_escapes_and_structures() {
        let json = sample().to_json();
        assert!(json.contains("\"code\":\"ERC004\""), "{json}");
        assert!(json.contains("float \\\"q\\\""), "{json}");
        assert!(json.contains("\"suggestion\":\"fix\\nit\""), "{json}");
        assert!(
            json.contains("\"span\":{\"kind\":\"element\",\"label\":\"R1\"}"),
            "{json}"
        );
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn render_lists_each_diagnostic() {
        let text = sample().render();
        assert!(text.starts_with("erc: 1 error, 1 warning"), "{text}");
        // Summary line + one line per diagnostic (the first carries an
        // embedded newline in its suggestion, so it spans two).
        assert_eq!(text.lines().count(), 4, "{text}");
        assert!(text.contains("warning[ERC012]"), "{text}");
    }
}
