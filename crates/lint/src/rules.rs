//! The rule implementations.
//!
//! All rules run off one [`CircuitGraph`] built per lint: a structural
//! pass over the element list (node attachment statistics plus the
//! typed edge list) feeding union-find sweeps (DC connectivity,
//! signal-path connectivity, full-coupling connectivity) and the
//! graph-level dataflow passes (feedback cycles, dead-branch peeling,
//! conditioning). A full lint is `O(elements × α(nodes))` plus one
//! bounded reachability search per live VCCS edge — microseconds even
//! for generously sized netlists, and safe to run on every candidate
//! inside the agent design loop.

use crate::config::LintConfig;
use crate::diagnostic::{Diagnostic, Rule, Span};
use crate::graph::{is_unknown, CircuitGraph};
use crate::report::LintReport;
use artisan_circuit::{Element, Netlist, Node};
use std::collections::BTreeMap;

/// Conditioning threshold for ERC104: a value family spanning more than
/// this ratio leaves fewer than ~4 decimal digits of headroom in an f64
/// LU factorization — legal, but worth flagging before the sweep.
const CONDITIONING_SPREAD_LIMIT: f64 = 1e12;

/// ERC103 threshold: resistors below one milliohm act as shorts.
const SHORT_THRESHOLD_OHMS: f64 = 1e-3;

/// Runs every enabled rule over `netlist`.
pub(crate) fn run(netlist: &Netlist, config: &LintConfig) -> LintReport {
    let graph = CircuitGraph::new(netlist);
    let mut out: Vec<Diagnostic> = Vec::new();
    let enabled = |r: Rule| config.is_enabled(r);

    // ERC001/002/003 — global presence checks.
    if enabled(Rule::MissingGround) && !graph.has_node(Node::Ground) {
        out.push(
            Diagnostic::new(
                Rule::MissingGround,
                Span::Netlist,
                "no element terminal connects to ground (node 0); the nodal \
                 equations have no reference and the system is singular",
            )
            .suggest("tie at least one load, bias, or compensation path to node 0"),
        );
    }
    if enabled(Rule::MissingOutput) && !graph.has_node(Node::Output) {
        out.push(
            Diagnostic::new(
                Rule::MissingOutput,
                Span::Netlist,
                "the netlist never references the output node `out`, so no \
                 transfer function can be measured",
            )
            .suggest("route the final stage and the load to `out`"),
        );
    }
    if enabled(Rule::InputUnused) && !graph.has_node(Node::Input) {
        out.push(
            Diagnostic::new(
                Rule::InputUnused,
                Span::Netlist,
                "the netlist never references the input node `in`; the \
                 response to the driven source is identically zero",
            )
            .suggest("sense `in` with the first-stage transconductor"),
        );
    }

    // ERC004 — structurally floating nodes. Remember them so ERC006
    // does not pile a second error onto the same node.
    let mut floating = vec![false; graph.nodes().len()];
    if enabled(Rule::FloatingNode) {
        for (i, &n) in graph.nodes().iter().enumerate() {
            if graph.is_floating(n) {
                floating[i] = true;
                out.push(
                    Diagnostic::new(
                        Rule::FloatingNode,
                        Span::Node(n),
                        format!(
                            "node {n} has no resistive or capacitive attachment \
                             and no complete VCCS drive/sense pair; its nodal \
                             equation is structurally empty at every frequency"
                        ),
                    )
                    .suggest(format!(
                        "attach a resistor or capacitor to {n}, or delete the \
                         element(s) referencing it"
                    )),
                );
            }
        }
    }

    // ERC100 — reference-free islands: provably singular at every
    // frequency (see `CircuitGraph::singular_islands` for the proof).
    // Remember the member nodes so ERC006 does not repeat the
    // island-level error once per node.
    let mut in_singular_island = vec![false; graph.nodes().len()];
    if enabled(Rule::SingularityPredicted) {
        for island in graph.singular_islands() {
            for n in &island {
                in_singular_island[graph.index[n]] = true;
            }
            let list = island
                .iter()
                .map(|n| n.name())
                .collect::<Vec<_>>()
                .join(", ");
            out.push(
                Diagnostic::new(
                    Rule::SingularityPredicted,
                    Span::Nodes(island),
                    format!(
                        "nodes {list} form an island with no coupling of any \
                         kind to ground or the input; the MNA matrix is \
                         singular at every frequency and LU factorization is \
                         guaranteed to fail"
                    ),
                )
                .suggest(
                    "connect the island to the rest of the circuit (a shunt \
                     to ground suffices) or delete its elements",
                ),
            );
        }
    }

    // ERC101 — no input→output signal path: the transfer function is
    // identically zero, so the simulation is doomed even though the
    // matrix may solve.
    if enabled(Rule::NoSignalPath)
        && graph.has_node(Node::Input)
        && graph.has_node(Node::Output)
        && !graph.has_signal_path()
    {
        out.push(
            Diagnostic::new(
                Rule::NoSignalPath,
                Span::Netlist,
                "no chain of shared elements couples the input to the output; \
                 the transfer function is identically zero at every frequency",
            )
            .suggest(
                "bridge the gap: sense `in` with a stage whose output chain \
                 reaches `out`",
            ),
        );
    }

    // ERC005 — VCCS controls sensing undriven nodes.
    if enabled(Rule::DanglingControl) {
        for e in netlist.elements() {
            if let Element::Vccs {
                label,
                ctrl_p,
                ctrl_n,
                ..
            } = e
            {
                for c in [*ctrl_p, *ctrl_n] {
                    if !is_unknown(c) {
                        continue;
                    }
                    let s = graph.stat(c);
                    if s.rc == 0 && s.vccs_out == 0 {
                        out.push(
                            Diagnostic::new(
                                Rule::DanglingControl,
                                Span::Element(label.clone()),
                                format!(
                                    "VCCS {label} senses node {c}, but nothing \
                                     drives that node — the controlling voltage \
                                     is undefined"
                                ),
                            )
                            .suggest(format!(
                                "connect {c} to a driven point of the circuit or \
                                 re-reference the control terminals"
                            )),
                        );
                    }
                }
            }
        }
    }

    // ERC006 — DC reachability. A resistive island (or lone
    // capacitor-coupled node) with no DC route to ground or the driven
    // input leaves the conductance matrix singular at s = 0. Nodes
    // already reported floating (ERC004) or inside a reference-free
    // island (ERC100) are skipped — their rejection is already on
    // record at a stronger severity of detail.
    if enabled(Rule::NoDcPath) {
        let mut uf = graph.dc_components();
        let grounded: Vec<usize> = graph
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| !is_unknown(**n))
            .map(|(i, _)| i)
            .collect();
        let grounded_roots: Vec<usize> = grounded.iter().map(|&i| uf.find(i)).collect();
        for (i, &n) in graph.nodes().iter().enumerate() {
            if !is_unknown(n) || floating[i] || in_singular_island[i] {
                continue;
            }
            let root = uf.find(i);
            if !grounded_roots.contains(&root) {
                out.push(
                    Diagnostic::new(
                        Rule::NoDcPath,
                        Span::Node(n),
                        format!(
                            "node {n} has no DC path to ground or the input; \
                             the conductance matrix is singular at DC"
                        ),
                    )
                    .suggest(format!(
                        "give {n} a resistive path (shunt resistor, buffer, or \
                         stage output) to a biased node"
                    )),
                );
            }
        }
    }

    // ERC007 — duplicate instance labels.
    if enabled(Rule::DuplicateLabel) {
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        for e in netlist.elements() {
            *seen.entry(e.label()).or_insert(0) += 1;
        }
        for (label, count) in seen {
            if count > 1 {
                out.push(
                    Diagnostic::new(
                        Rule::DuplicateLabel,
                        Span::Element(label.to_string()),
                        format!("instance label {label} is used by {count} elements"),
                    )
                    .suggest("rename the duplicates so every instance is addressable"),
                );
            }
        }
    }

    // ERC008/009 — value sanity.
    for e in netlist.elements() {
        let v = e.value();
        let bad = !(v.is_finite() && v > 0.0);
        match e {
            Element::Resistor { label, .. } | Element::Capacitor { label, .. } => {
                if bad && enabled(Rule::NonPositiveValue) {
                    out.push(
                        Diagnostic::new(
                            Rule::NonPositiveValue,
                            Span::Element(label.clone()),
                            format!(
                                "element {label} has non-physical value {v}; \
                                 passive values must be finite and positive"
                            ),
                        )
                        .suggest("recompute the sizing step that produced this value"),
                    );
                }
            }
            Element::Vccs { label, .. } => {
                if bad && enabled(Rule::DegenerateVccs) {
                    out.push(
                        Diagnostic::new(
                            Rule::DegenerateVccs,
                            Span::Element(label.clone()),
                            format!(
                                "VCCS {label} has transconductance {v}; gm must \
                                 be finite and positive (polarity belongs in the \
                                 terminal order)"
                            ),
                        )
                        .suggest("recompute gm from the GBW relation, keeping it positive"),
                    );
                }
            }
        }
    }

    // ERC010 — dead-end nodes.
    if enabled(Rule::DanglingNode) {
        for &n in graph.nodes() {
            if !is_unknown(n) || n == Node::Output {
                continue;
            }
            let s = graph.stat(n);
            if s.rc + s.vccs_out == 1 && s.ctrl_refs == 0 {
                out.push(
                    Diagnostic::new(
                        Rule::DanglingNode,
                        Span::Node(n),
                        format!(
                            "node {n} is a dead end: one conductive attachment \
                             and nothing sensing it"
                        ),
                    )
                    .suggest(format!("complete the path through {n} or remove it")),
                );
            }
        }
    }

    // ERC102 — series-dangling branches: chains of two or more nodes
    // the leaf-peeling pass removes entirely. The single-node case is
    // ERC010's.
    if enabled(Rule::DeadBranch) {
        for branch in graph.dead_branches() {
            let list = branch
                .iter()
                .map(|n| n.name())
                .collect::<Vec<_>>()
                .join(", ");
            out.push(
                Diagnostic::new(
                    Rule::DeadBranch,
                    Span::Nodes(branch),
                    format!(
                        "nodes {list} form a series-dangling branch; peeling \
                         its open end strands the rest, so the branch carries \
                         no signal current"
                    ),
                )
                .suggest("terminate the branch into the circuit or delete it"),
            );
        }
    }

    // ERC103 — short-circuit-degenerate resistors.
    if enabled(Rule::DegenerateShort) {
        for e in netlist.elements() {
            if let Element::Resistor { label, ohms, .. } = e {
                let v = ohms.value();
                if v.is_finite() && v > 0.0 && v < SHORT_THRESHOLD_OHMS {
                    out.push(
                        Diagnostic::new(
                            Rule::DegenerateShort,
                            Span::Element(label.clone()),
                            format!(
                                "resistor {label} is {v:.3e} Ω — effectively a \
                                 short circuit, which degrades pivot quality \
                                 and usually marks a sizing blunder"
                            ),
                        )
                        .suggest("merge the shorted nodes or recompute the resistance"),
                    );
                }
            }
        }
    }

    // ERC104 — pathological element-value spreads.
    if enabled(Rule::ConditioningSpread) {
        let cond = graph.conditioning();
        for (family, spread) in [
            ("conductance (1/R and gm)", &cond.conductance),
            ("capacitance", &cond.capacitance),
        ] {
            if let Some(s) = spread {
                if s.ratio() > CONDITIONING_SPREAD_LIMIT {
                    out.push(
                        Diagnostic::new(
                            Rule::ConditioningSpread,
                            Span::Netlist,
                            format!(
                                "the {family} family spans a ratio of {:.1e} \
                                 (min {:.3e} at {}, max {:.3e} at {}); LU \
                                 pivots lose most of their precision at this \
                                 spread",
                                s.ratio(),
                                s.min,
                                s.min_label,
                                s.max,
                                s.max_label
                            ),
                        )
                        .suggest(format!(
                            "re-size {} or {} to narrow the value range",
                            s.min_label, s.max_label
                        )),
                    );
                }
            }
        }
    }

    // ERC011 — exact parallel duplicates.
    if enabled(Rule::ParallelDuplicate) {
        let mut seen: BTreeMap<String, &str> = BTreeMap::new();
        for e in netlist.elements() {
            let key = match e {
                Element::Resistor { a, b, ohms, .. } => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    format!("R {lo} {hi} {:x}", ohms.value().to_bits())
                }
                Element::Capacitor { a, b, farads, .. } => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    format!("C {lo} {hi} {:x}", farads.value().to_bits())
                }
                Element::Vccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    gm,
                    ..
                } => format!(
                    "G {out_p} {out_n} {ctrl_p} {ctrl_n} {:x}",
                    gm.value().to_bits()
                ),
            };
            if let Some(first) = seen.get(key.as_str()) {
                out.push(
                    Diagnostic::new(
                        Rule::ParallelDuplicate,
                        Span::Element(e.label().to_string()),
                        format!(
                            "element {} exactly duplicates {first} (same kind, \
                             terminals, and value)",
                            e.label()
                        ),
                    )
                    .suggest("merge the pair into one element with the combined value"),
                );
            } else {
                seen.insert(key, e.label());
            }
        }
    }

    // ERC012 — self-shorted elements.
    if enabled(Rule::SelfLoop) {
        for e in netlist.elements() {
            let degenerate = match e {
                Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => a == b,
                Element::Vccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    ..
                } => out_p == out_n || ctrl_p == ctrl_n,
            };
            if degenerate {
                out.push(
                    Diagnostic::new(
                        Rule::SelfLoop,
                        Span::Element(e.label().to_string()),
                        format!(
                            "element {} shorts its own terminals together and \
                             contributes nothing to the circuit",
                            e.label()
                        ),
                    )
                    .suggest("remove the element or fix its terminal assignment"),
                );
            }
        }
    }

    // ERC013 — islands detached from the in→out signal path. Islands
    // already rejected as reference-free (ERC100) are skipped: the
    // error-severity diagnostic subsumes this warning.
    if enabled(Rule::IsolatedIsland) {
        let mut uf = graph.signal_components();
        let anchors: Vec<usize> = graph
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, Node::Input | Node::Output))
            .map(|(i, _)| i)
            .collect();
        let anchor_roots: Vec<usize> = anchors.iter().map(|&i| uf.find(i)).collect();
        let mut islands: BTreeMap<usize, Vec<Node>> = BTreeMap::new();
        for (i, &n) in graph.nodes().iter().enumerate() {
            if n == Node::Ground {
                continue;
            }
            let root = uf.find(i);
            if !anchor_roots.contains(&root) {
                islands.entry(root).or_default().push(n);
            }
        }
        for nodes in islands.into_values() {
            if nodes.iter().all(|n| in_singular_island[graph.index[n]]) {
                continue;
            }
            let list = nodes
                .iter()
                .map(|n| n.name())
                .collect::<Vec<_>>()
                .join(", ");
            out.push(
                Diagnostic::new(
                    Rule::IsolatedIsland,
                    Span::Nodes(nodes),
                    format!(
                        "nodes {list} form an island with no connection to the \
                         in→out signal path"
                    ),
                )
                .suggest("wire the island into the signal path or delete it"),
            );
        }
    }

    // ERC105 — open-loop advisory: an active circuit whose VCCS edges
    // close no directed cycle runs open-loop. Deliberate for some
    // testbenches, so Info severity only.
    if enabled(Rule::OpenLoop) {
        let has_live_vccs = netlist.elements().iter().any(|e| {
            matches!(
                e,
                Element::Vccs {
                    out_p, out_n, ctrl_p, ctrl_n, ..
                } if out_p != out_n && ctrl_p != ctrl_n
            )
        });
        if graph.has_node(Node::Input)
            && graph.has_node(Node::Output)
            && has_live_vccs
            && !graph.has_feedback_loop()
        {
            out.push(
                Diagnostic::new(
                    Rule::OpenLoop,
                    Span::Netlist,
                    "no directed cycle passes through any VCCS: the amplifier \
                     runs open-loop (no compensation or feedback network \
                     closes around a stage)",
                )
                .suggest(
                    "if closed-loop behaviour is intended, add a feedback or \
                     Miller compensation path around a gain stage",
                ),
            );
        }
    }

    // Errors first, then warnings; stable order within a severity.
    out.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.rule.cmp(&b.rule)));
    LintReport::new(out)
}
