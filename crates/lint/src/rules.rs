//! The rule implementations.
//!
//! All rules run off one structural pass over the element list
//! (`NodeStats`) plus two union-find sweeps (DC connectivity and
//! whole-netlist connectivity), so a full lint is `O(elements ×
//! α(nodes))` — microseconds even for generously sized netlists, and
//! safe to run on every candidate inside the agent design loop.

use crate::config::LintConfig;
use crate::diagnostic::{Diagnostic, Rule, Span};
use crate::report::LintReport;
use artisan_circuit::{Element, Netlist, Node};
use std::collections::BTreeMap;

/// Whether a node has its own MNA unknown (everything except the
/// eliminated ground reference and the driven input).
fn is_unknown(n: Node) -> bool {
    !matches!(n, Node::Ground | Node::Input)
}

/// Structural attachment counts for one node, accumulated over the
/// element list. "Live" VCCS attachments are the ones that actually
/// stamp a matrix entry: a VCCS with `out_p == out_n` or `ctrl_p ==
/// ctrl_n` cancels its own contribution, and entries only exist in rows
/// and columns belonging to unknown nodes.
#[derive(Debug, Default, Clone)]
struct NodeStats {
    /// Resistor/capacitor terminal attachments (self-loops excluded).
    rc: usize,
    /// VCCS output-terminal attachments (self-cancelling ones excluded).
    vccs_out: usize,
    /// VCCS outputs here whose control pair references an unknown node,
    /// i.e. this node's MNA *row* has a structural entry.
    vccs_out_live: usize,
    /// VCCS controls here whose output pair references an unknown node,
    /// i.e. this node's MNA *column* has a structural entry.
    vccs_ctrl_live: usize,
    /// Times this node is referenced as a VCCS control terminal.
    ctrl_refs: usize,
}

/// Disjoint-set forest over node indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Everything the rules need, computed in one pass.
struct Analysis<'n> {
    netlist: &'n Netlist,
    nodes: Vec<Node>,
    index: BTreeMap<Node, usize>,
    stats: Vec<NodeStats>,
}

impl<'n> Analysis<'n> {
    fn new(netlist: &'n Netlist) -> Self {
        let nodes = netlist.nodes();
        let index: BTreeMap<Node, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let mut stats = vec![NodeStats::default(); nodes.len()];
        for e in netlist.elements() {
            match e {
                Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => {
                    if a != b {
                        stats[index[a]].rc += 1;
                        stats[index[b]].rc += 1;
                    }
                }
                Element::Vccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    ..
                } => {
                    let out_live = out_p != out_n;
                    let ctrl_live = ctrl_p != ctrl_n;
                    // Rows of the output pair gain entries in the
                    // columns of the control pair (and vice versa) only
                    // when neither pair cancels itself.
                    let ctrl_hits_unknown =
                        ctrl_live && (is_unknown(*ctrl_p) || is_unknown(*ctrl_n));
                    let out_hits_unknown = out_live && (is_unknown(*out_p) || is_unknown(*out_n));
                    if out_live {
                        for o in [*out_p, *out_n] {
                            let s = &mut stats[index[&o]];
                            s.vccs_out += 1;
                            if ctrl_hits_unknown {
                                s.vccs_out_live += 1;
                            }
                        }
                    }
                    for c in [*ctrl_p, *ctrl_n] {
                        let s = &mut stats[index[&c]];
                        s.ctrl_refs += 1;
                        if ctrl_live && out_hits_unknown {
                            s.vccs_ctrl_live += 1;
                        }
                    }
                }
            }
        }
        Analysis {
            netlist,
            nodes,
            index,
            stats,
        }
    }

    fn stat(&self, n: Node) -> &NodeStats {
        &self.stats[self.index[&n]]
    }

    fn has_node(&self, n: Node) -> bool {
        self.index.contains_key(&n)
    }

    /// A node whose MNA row or column is structurally zero at every
    /// frequency — the matrix is singular no matter what values the
    /// elements carry.
    fn is_floating(&self, n: Node) -> bool {
        if !is_unknown(n) {
            return false;
        }
        let s = self.stat(n);
        if s.rc > 0 {
            return false;
        }
        // Zero row: nothing conductive and no live VCCS output.
        // Zero column: nothing conductive and no live VCCS control.
        s.vccs_out_live == 0 || s.vccs_ctrl_live == 0
    }

    /// Union-find over DC-conductive coupling: resistor edges, plus the
    /// self-conductance a VCCS develops when an output terminal doubles
    /// as a control terminal (the unity-gain buffer idiom — its `gm`
    /// stamps the node's own diagonal, tying it to the other control
    /// node at DC).
    fn dc_components(&self) -> UnionFind {
        let mut uf = UnionFind::new(self.nodes.len());
        for e in self.netlist.elements() {
            match e {
                Element::Resistor { a, b, .. } => {
                    if a != b {
                        uf.union(self.index[a], self.index[b]);
                    }
                }
                Element::Capacitor { .. } => {}
                Element::Vccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    ..
                } => {
                    if out_p == out_n || ctrl_p == ctrl_n {
                        continue;
                    }
                    for shared in [*out_p, *out_n] {
                        if shared == *ctrl_p || shared == *ctrl_n {
                            for c in [*ctrl_p, *ctrl_n] {
                                if c != shared {
                                    uf.union(self.index[&shared], self.index[&c]);
                                }
                            }
                        }
                    }
                }
            }
        }
        uf
    }

    /// Union-find over every element's full terminal clique (controls
    /// included), with ground excluded as a connector so that "tied to
    /// ground" does not count as "part of the signal path".
    fn signal_components(&self) -> UnionFind {
        let mut uf = UnionFind::new(self.nodes.len());
        for e in self.netlist.elements() {
            let terminals = e.nodes();
            for (i, a) in terminals.iter().enumerate() {
                for b in &terminals[i + 1..] {
                    if a != b && *a != Node::Ground && *b != Node::Ground {
                        uf.union(self.index[a], self.index[b]);
                    }
                }
            }
        }
        uf
    }
}

/// Runs every enabled rule over `netlist`.
pub(crate) fn run(netlist: &Netlist, config: &LintConfig) -> LintReport {
    let analysis = Analysis::new(netlist);
    let mut out: Vec<Diagnostic> = Vec::new();
    let enabled = |r: Rule| config.is_enabled(r);

    // ERC001/002/003 — global presence checks.
    if enabled(Rule::MissingGround) && !analysis.has_node(Node::Ground) {
        out.push(
            Diagnostic::new(
                Rule::MissingGround,
                Span::Netlist,
                "no element terminal connects to ground (node 0); the nodal \
                 equations have no reference and the system is singular",
            )
            .suggest("tie at least one load, bias, or compensation path to node 0"),
        );
    }
    if enabled(Rule::MissingOutput) && !analysis.has_node(Node::Output) {
        out.push(
            Diagnostic::new(
                Rule::MissingOutput,
                Span::Netlist,
                "the netlist never references the output node `out`, so no \
                 transfer function can be measured",
            )
            .suggest("route the final stage and the load to `out`"),
        );
    }
    if enabled(Rule::InputUnused) && !analysis.has_node(Node::Input) {
        out.push(
            Diagnostic::new(
                Rule::InputUnused,
                Span::Netlist,
                "the netlist never references the input node `in`; the \
                 response to the driven source is identically zero",
            )
            .suggest("sense `in` with the first-stage transconductor"),
        );
    }

    // ERC004 — structurally floating nodes. Remember them so ERC006
    // does not pile a second error onto the same node.
    let mut floating = vec![false; analysis.nodes.len()];
    if enabled(Rule::FloatingNode) {
        for (i, &n) in analysis.nodes.iter().enumerate() {
            if analysis.is_floating(n) {
                floating[i] = true;
                out.push(
                    Diagnostic::new(
                        Rule::FloatingNode,
                        Span::Node(n),
                        format!(
                            "node {n} has no resistive or capacitive attachment \
                             and no complete VCCS drive/sense pair; its nodal \
                             equation is structurally empty at every frequency"
                        ),
                    )
                    .suggest(format!(
                        "attach a resistor or capacitor to {n}, or delete the \
                         element(s) referencing it"
                    )),
                );
            }
        }
    }

    // ERC005 — VCCS controls sensing undriven nodes.
    if enabled(Rule::DanglingControl) {
        for e in netlist.elements() {
            if let Element::Vccs {
                label,
                ctrl_p,
                ctrl_n,
                ..
            } = e
            {
                for c in [*ctrl_p, *ctrl_n] {
                    if !is_unknown(c) {
                        continue;
                    }
                    let s = analysis.stat(c);
                    if s.rc == 0 && s.vccs_out == 0 {
                        out.push(
                            Diagnostic::new(
                                Rule::DanglingControl,
                                Span::Element(label.clone()),
                                format!(
                                    "VCCS {label} senses node {c}, but nothing \
                                     drives that node — the controlling voltage \
                                     is undefined"
                                ),
                            )
                            .suggest(format!(
                                "connect {c} to a driven point of the circuit or \
                                 re-reference the control terminals"
                            )),
                        );
                    }
                }
            }
        }
    }

    // ERC006 — DC reachability. A resistive island (or lone
    // capacitor-coupled node) with no DC route to ground or the driven
    // input leaves the conductance matrix singular at s = 0.
    if enabled(Rule::NoDcPath) {
        let mut uf = analysis.dc_components();
        let grounded: Vec<usize> = analysis
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !is_unknown(**n))
            .map(|(i, _)| i)
            .collect();
        let grounded_roots: Vec<usize> = grounded.iter().map(|&i| uf.find(i)).collect();
        for (i, &n) in analysis.nodes.iter().enumerate() {
            if !is_unknown(n) || floating[i] {
                continue;
            }
            let root = uf.find(i);
            if !grounded_roots.contains(&root) {
                out.push(
                    Diagnostic::new(
                        Rule::NoDcPath,
                        Span::Node(n),
                        format!(
                            "node {n} has no DC path to ground or the input; \
                             the conductance matrix is singular at DC"
                        ),
                    )
                    .suggest(format!(
                        "give {n} a resistive path (shunt resistor, buffer, or \
                         stage output) to a biased node"
                    )),
                );
            }
        }
    }

    // ERC007 — duplicate instance labels.
    if enabled(Rule::DuplicateLabel) {
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        for e in netlist.elements() {
            *seen.entry(e.label()).or_insert(0) += 1;
        }
        for (label, count) in seen {
            if count > 1 {
                out.push(
                    Diagnostic::new(
                        Rule::DuplicateLabel,
                        Span::Element(label.to_string()),
                        format!("instance label {label} is used by {count} elements"),
                    )
                    .suggest("rename the duplicates so every instance is addressable"),
                );
            }
        }
    }

    // ERC008/009 — value sanity.
    for e in netlist.elements() {
        let v = e.value();
        let bad = !(v.is_finite() && v > 0.0);
        match e {
            Element::Resistor { label, .. } | Element::Capacitor { label, .. } => {
                if bad && enabled(Rule::NonPositiveValue) {
                    out.push(
                        Diagnostic::new(
                            Rule::NonPositiveValue,
                            Span::Element(label.clone()),
                            format!(
                                "element {label} has non-physical value {v}; \
                                 passive values must be finite and positive"
                            ),
                        )
                        .suggest("recompute the sizing step that produced this value"),
                    );
                }
            }
            Element::Vccs { label, .. } => {
                if bad && enabled(Rule::DegenerateVccs) {
                    out.push(
                        Diagnostic::new(
                            Rule::DegenerateVccs,
                            Span::Element(label.clone()),
                            format!(
                                "VCCS {label} has transconductance {v}; gm must \
                                 be finite and positive (polarity belongs in the \
                                 terminal order)"
                            ),
                        )
                        .suggest("recompute gm from the GBW relation, keeping it positive"),
                    );
                }
            }
        }
    }

    // ERC010 — dead-end nodes.
    if enabled(Rule::DanglingNode) {
        for &n in &analysis.nodes {
            if !is_unknown(n) || n == Node::Output {
                continue;
            }
            let s = analysis.stat(n);
            if s.rc + s.vccs_out == 1 && s.ctrl_refs == 0 {
                out.push(
                    Diagnostic::new(
                        Rule::DanglingNode,
                        Span::Node(n),
                        format!(
                            "node {n} is a dead end: one conductive attachment \
                             and nothing sensing it"
                        ),
                    )
                    .suggest(format!("complete the path through {n} or remove it")),
                );
            }
        }
    }

    // ERC011 — exact parallel duplicates.
    if enabled(Rule::ParallelDuplicate) {
        let mut seen: BTreeMap<String, &str> = BTreeMap::new();
        for e in netlist.elements() {
            let key = match e {
                Element::Resistor { a, b, ohms, .. } => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    format!("R {lo} {hi} {:x}", ohms.value().to_bits())
                }
                Element::Capacitor { a, b, farads, .. } => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    format!("C {lo} {hi} {:x}", farads.value().to_bits())
                }
                Element::Vccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    gm,
                    ..
                } => format!(
                    "G {out_p} {out_n} {ctrl_p} {ctrl_n} {:x}",
                    gm.value().to_bits()
                ),
            };
            if let Some(first) = seen.get(key.as_str()) {
                out.push(
                    Diagnostic::new(
                        Rule::ParallelDuplicate,
                        Span::Element(e.label().to_string()),
                        format!(
                            "element {} exactly duplicates {first} (same kind, \
                             terminals, and value)",
                            e.label()
                        ),
                    )
                    .suggest("merge the pair into one element with the combined value"),
                );
            } else {
                seen.insert(key, e.label());
            }
        }
    }

    // ERC012 — self-shorted elements.
    if enabled(Rule::SelfLoop) {
        for e in netlist.elements() {
            let degenerate = match e {
                Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => a == b,
                Element::Vccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    ..
                } => out_p == out_n || ctrl_p == ctrl_n,
            };
            if degenerate {
                out.push(
                    Diagnostic::new(
                        Rule::SelfLoop,
                        Span::Element(e.label().to_string()),
                        format!(
                            "element {} shorts its own terminals together and \
                             contributes nothing to the circuit",
                            e.label()
                        ),
                    )
                    .suggest("remove the element or fix its terminal assignment"),
                );
            }
        }
    }

    // ERC013 — islands detached from the in→out signal path.
    if enabled(Rule::IsolatedIsland) {
        let mut uf = analysis.signal_components();
        let anchors: Vec<usize> = analysis
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, Node::Input | Node::Output))
            .map(|(i, _)| i)
            .collect();
        let anchor_roots: Vec<usize> = anchors.iter().map(|&i| uf.find(i)).collect();
        let mut islands: BTreeMap<usize, Vec<Node>> = BTreeMap::new();
        for (i, &n) in analysis.nodes.iter().enumerate() {
            if n == Node::Ground {
                continue;
            }
            let root = uf.find(i);
            if !anchor_roots.contains(&root) {
                islands.entry(root).or_default().push(n);
            }
        }
        for nodes in islands.into_values() {
            let list = nodes
                .iter()
                .map(|n| n.name())
                .collect::<Vec<_>>()
                .join(", ");
            out.push(
                Diagnostic::new(
                    Rule::IsolatedIsland,
                    Span::Nodes(nodes),
                    format!(
                        "nodes {list} form an island with no connection to the \
                         in→out signal path"
                    ),
                )
                .suggest("wire the island into the signal path or delete it"),
            );
        }
    }

    // Errors first, then warnings; stable order within a severity.
    out.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.rule.cmp(&b.rule)));
    LintReport::new(out)
}
