use crate::diagnostic::{Rule, Severity};

/// Which rules a [`crate::Linter`] runs.
///
/// Defaults to all rules. [`LintConfig::errors_only`] is the
/// configuration the simulator uses as its admission gate: warnings are
/// advisory and must never block a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    enabled: [bool; Rule::ALL.len()],
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            enabled: [true; Rule::ALL.len()],
        }
    }
}

impl LintConfig {
    /// Every rule enabled.
    pub fn all() -> Self {
        LintConfig::default()
    }

    /// Only the `Error`-severity rules — the simulator's admission
    /// gate.
    pub fn errors_only() -> Self {
        let mut cfg = LintConfig::default();
        for r in Rule::ALL {
            if r.severity() != Severity::Error {
                cfg.enabled[r.index()] = false;
            }
        }
        cfg
    }

    /// Disables one rule.
    pub fn without(mut self, rule: Rule) -> Self {
        self.enabled[rule.index()] = false;
        self
    }

    /// Enables one rule.
    pub fn with(mut self, rule: Rule) -> Self {
        self.enabled[rule.index()] = true;
        self
    }

    /// Whether `rule` runs under this configuration.
    pub fn is_enabled(&self, rule: Rule) -> bool {
        self.enabled[rule.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let cfg = LintConfig::default();
        assert!(Rule::ALL.into_iter().all(|r| cfg.is_enabled(r)));
    }

    #[test]
    fn errors_only_drops_warnings() {
        let cfg = LintConfig::errors_only();
        assert!(cfg.is_enabled(Rule::FloatingNode));
        assert!(!cfg.is_enabled(Rule::SelfLoop));
        assert!(!cfg.is_enabled(Rule::ParallelDuplicate));
    }

    #[test]
    fn with_and_without_toggle() {
        let cfg = LintConfig::errors_only().with(Rule::SelfLoop);
        assert!(cfg.is_enabled(Rule::SelfLoop));
        let cfg = cfg.without(Rule::SelfLoop).without(Rule::FloatingNode);
        assert!(!cfg.is_enabled(Rule::SelfLoop));
        assert!(!cfg.is_enabled(Rule::FloatingNode));
    }
}
