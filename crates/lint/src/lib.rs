//! Static electrical-rule checking (ERC) for artisan netlists.
//!
//! The Artisan design loop (paper Fig. 2) feeds LLM-emitted netlists
//! into an MNA simulator and turns the results into dialogue feedback.
//! A netlist that is *structurally* broken — a floating node, a
//! capacitor-only island, a transconductor sensing nothing — makes the
//! nodal matrix singular, and the simulator can only report a generic
//! numerical failure. This crate checks those structural rules *before*
//! assembly, producing [`Diagnostic`]s with stable `ERCnnn` codes,
//! severities, spans, and repair suggestions that both the simulator
//! (as an admission gate) and the agent dialogue (as repair hints) can
//! consume.
//!
//! ```
//! use artisan_circuit::Topology;
//! use artisan_lint::lint;
//!
//! let netlist = Topology::nmc_example().elaborate().unwrap();
//! assert!(lint(&netlist).is_clean());
//! ```
//!
//! The rule set is documented on [`Rule`]; configuration on
//! [`LintConfig`]. Reports render human-readable via
//! [`LintReport::render`] and machine-readable via
//! [`LintReport::to_json`].

mod config;
mod diagnostic;
pub mod graph;
mod report;
mod rules;

pub use config::LintConfig;
pub use diagnostic::{Diagnostic, Rule, Severity, Span};
pub use graph::CircuitGraph;
pub use report::{LintReport, JSON_SCHEMA};

use artisan_circuit::{CircuitError, Netlist, Topology};
use std::fmt;

/// Why [`Linter::lint_topology`] could not produce a report: the
/// topology failed to elaborate into a netlist. Carries the offending
/// topology's identifier so a batch caller can say *which* candidate
/// broke — callers must surface this, never treat it as "no
/// diagnostics".
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyLintError {
    /// Identifier of the topology that failed ([`Topology::ident`]).
    pub topology: String,
    /// The underlying elaboration failure.
    pub source: CircuitError,
}

impl fmt::Display for TopologyLintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology `{}` failed to elaborate: {}",
            self.topology, self.source
        )
    }
}

impl std::error::Error for TopologyLintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Runs a configured set of ERC rules over netlists.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Linter {
    config: LintConfig,
}

impl Linter {
    /// A linter running the rules `config` enables.
    pub fn new(config: LintConfig) -> Self {
        Linter { config }
    }

    /// A linter running only `Error`-severity rules — the simulator's
    /// admission gate.
    pub fn errors_only() -> Self {
        Linter::new(LintConfig::errors_only())
    }

    /// The active configuration.
    pub fn config(&self) -> &LintConfig {
        &self.config
    }

    /// Lints one netlist.
    pub fn lint(&self, netlist: &Netlist) -> LintReport {
        rules::run(netlist, &self.config)
    }

    /// Elaborates and lints a topology.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyLintError`] naming the offending topology
    /// when elaboration itself fails. An elaboration failure is *worse*
    /// than any diagnostic — callers must not conflate it with a clean
    /// report.
    pub fn lint_topology(&self, topology: &Topology) -> Result<LintReport, TopologyLintError> {
        match topology.elaborate() {
            Ok(netlist) => Ok(self.lint(&netlist)),
            Err(source) => Err(TopologyLintError {
                topology: topology.ident(),
                source,
            }),
        }
    }
}

/// Lints `netlist` with every rule enabled.
pub fn lint(netlist: &Netlist) -> LintReport {
    Linter::default().lint(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use artisan_circuit::units::{Ohms, Siemens};
    use artisan_circuit::{Element, Node};

    fn parse(text: &str) -> Netlist {
        match Netlist::parse(text) {
            Ok(n) => n,
            Err(e) => panic!("test netlist failed to parse: {e}"),
        }
    }

    fn codes(netlist: &Netlist) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = lint(netlist)
            .diagnostics()
            .iter()
            .map(|d| d.code())
            .collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// A structurally sound two-element amplifier used as the base for
    /// the seeded-defect tests.
    const SOUND: &str = "* sound\nG1 out 0 in 0 1m\nR1 out 0 1k\n.end\n";

    #[test]
    fn sound_base_is_error_free() {
        let report = lint(&parse(SOUND));
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn nmc_example_is_clean() {
        let netlist = match Topology::nmc_example().elaborate() {
            Ok(n) => n,
            Err(e) => panic!("elaborate: {e}"),
        };
        let report = lint(&netlist);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn erc001_fires_on_missing_ground() {
        let n = parse("* g\nR1 in out 1k\nR2 out n1 1k\n.end\n");
        assert!(codes(&n).contains(&"ERC001"), "{:?}", codes(&n));
    }

    #[test]
    fn erc002_fires_on_missing_output() {
        let n = parse("* o\nR1 in n1 1k\nR2 n1 0 1k\n.end\n");
        assert!(codes(&n).contains(&"ERC002"), "{:?}", codes(&n));
    }

    #[test]
    fn erc003_fires_on_unused_input() {
        let n = parse("* i\nG1 out 0 n1 0 1m\nR1 out 0 1k\nR2 n1 0 1k\n.end\n");
        assert!(codes(&n).contains(&"ERC003"), "{:?}", codes(&n));
    }

    #[test]
    fn erc004_fires_on_floating_node() {
        // n1 is only a VCCS output whose control pair references no
        // unknown node: its matrix row is structurally empty.
        let n = parse("* f\nG1 out 0 in 0 1m\nR1 out 0 1k\nG2 n1 0 in 0 1m\n.end\n");
        assert!(codes(&n).contains(&"ERC004"), "{:?}", codes(&n));
    }

    #[test]
    fn erc005_fires_on_dangling_control() {
        let n = parse("* d\nG1 out 0 n1 0 1m\nR1 out 0 1k\nR2 in out 1k\n.end\n");
        assert!(codes(&n).contains(&"ERC005"), "{:?}", codes(&n));
    }

    #[test]
    fn erc006_fires_on_capacitor_only_node() {
        let n = parse("* c\nG1 out 0 in 0 1m\nR1 out 0 1k\nC1 out n1 1p\nC2 n1 0 1p\n.end\n");
        let c = codes(&n);
        assert!(c.contains(&"ERC006"), "{c:?}");
        // It is a DC problem, not an all-frequency floating node.
        assert!(!c.contains(&"ERC004"), "{c:?}");
    }

    #[test]
    fn erc007_fires_on_duplicate_labels() {
        let n = parse("* l\nG1 out 0 in 0 1m\nR1 out 0 1k\nR1 in out 2k\n.end\n");
        assert!(codes(&n).contains(&"ERC007"), "{:?}", codes(&n));
    }

    #[test]
    fn erc008_fires_on_negative_resistance() {
        let mut elements = parse(SOUND).elements().to_vec();
        elements.push(Element::Resistor {
            label: "Rbad".into(),
            a: Node::Input,
            b: Node::Output,
            ohms: Ohms(-50.0),
        });
        let n = Netlist::new("bad-r", elements);
        assert!(codes(&n).contains(&"ERC008"), "{:?}", codes(&n));
    }

    #[test]
    fn erc009_fires_on_zero_gm() {
        let mut elements = parse(SOUND).elements().to_vec();
        elements.push(Element::Vccs {
            label: "Gbad".into(),
            out_p: Node::Ground,
            out_n: Node::Output,
            ctrl_p: Node::Input,
            ctrl_n: Node::Ground,
            gm: Siemens(0.0),
        });
        let n = Netlist::new("bad-g", elements);
        assert!(codes(&n).contains(&"ERC009"), "{:?}", codes(&n));
    }

    #[test]
    fn erc010_fires_on_dead_end_node() {
        let n = parse("* e\nG1 out 0 in 0 1m\nR1 out 0 1k\nR2 out n1 1k\n.end\n");
        let report = lint(&n);
        assert!(
            report.diagnostics().iter().any(|d| d.code() == "ERC010"),
            "{}",
            report.render()
        );
        // A dead end is suspicious, not fatal.
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn erc011_fires_on_parallel_duplicate() {
        let n = parse("* p\nG1 out 0 in 0 1m\nR1 out 0 1k\nC1 out 0 1p\nC2 0 out 1p\n.end\n");
        let report = lint(&n);
        assert!(
            report.diagnostics().iter().any(|d| d.code() == "ERC011"),
            "{}",
            report.render()
        );
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn erc012_fires_on_self_loop() {
        let n = parse("* s\nG1 out 0 in 0 1m\nR1 out 0 1k\nR2 out out 1k\n.end\n");
        let report = lint(&n);
        assert!(
            report.diagnostics().iter().any(|d| d.code() == "ERC012"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn erc013_fires_on_isolated_island() {
        let n = parse("* is\nG1 out 0 in 0 1m\nR1 out 0 1k\nR2 n1 n2 1k\nR3 n2 0 1k\n.end\n");
        let report = lint(&n);
        let island = report
            .diagnostics()
            .iter()
            .find(|d| d.code() == "ERC013")
            .unwrap_or_else(|| panic!("no ERC013 in: {}", report.render()));
        match &island.span {
            Span::Nodes(ns) => assert_eq!(ns.len(), 2, "{ns:?}"),
            other => panic!("unexpected span {other:?}"),
        }
        // The island has DC paths, so it must not be an error.
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn buffered_miller_internal_node_is_not_a_false_positive() {
        // The unity-gain buffer idiom: the VCCS output doubles as its
        // own negative control terminal, which stamps the node's
        // diagonal and gives it a DC definition despite carrying no
        // resistor. The DC-path rule must understand this.
        let n = parse(
            "* buf\nG1 out 0 in 0 1m\nR1 out 0 1k\nG2 0 x1 n1 x1 1m\nC1 x1 out 1p\nR2 n1 0 1k\nR3 n1 out 10k\n.end\n",
        );
        let report = Linter::errors_only().lint(&n);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn errors_only_config_suppresses_warnings() {
        let n = parse("* p\nG1 out 0 in 0 1m\nR1 out 0 1k\nC1 out 0 1p\nC2 out 0 1p\n.end\n");
        assert!(Linter::errors_only().lint(&n).is_clean());
        assert!(!lint(&n).is_clean());
    }

    #[test]
    fn linter_respects_disabled_rules() {
        let n = parse("* g\nR1 in out 1k\nR2 out n1 1k\n.end\n");
        let without = Linter::new(LintConfig::all().without(Rule::MissingGround)).lint(&n);
        assert!(without
            .diagnostics()
            .iter()
            .all(|d| d.rule != Rule::MissingGround));
        let with = lint(&n);
        assert!(with
            .diagnostics()
            .iter()
            .any(|d| d.rule == Rule::MissingGround));
    }

    #[test]
    fn erc100_fires_on_reference_free_island() {
        // n1–n2 couple resistively *and* capacitively but never touch
        // ground or input: singular at every frequency.
        let n = parse("* si\nG1 out 0 in 0 1m\nR1 out 0 1k\nR2 n1 n2 1k\nC1 n1 n2 1p\n.end\n");
        let report = lint(&n);
        let c = codes(&n);
        assert!(c.contains(&"ERC100"), "{c:?}");
        // The island-level error subsumes the per-node DC-path error
        // and the signal-island warning.
        assert!(!c.contains(&"ERC006"), "{c:?}");
        assert!(!c.contains(&"ERC013"), "{c:?}");
        let island = report
            .diagnostics()
            .iter()
            .find(|d| d.code() == "ERC100")
            .unwrap_or_else(|| panic!("no ERC100 in: {}", report.render()));
        match &island.span {
            Span::Nodes(ns) => assert_eq!(ns.len(), 2, "{ns:?}"),
            other => panic!("unexpected span {other:?}"),
        }
        // Error severity: the admission gate must reject it.
        assert!(Linter::errors_only().lint(&n).has_errors());
    }

    #[test]
    fn erc101_fires_when_input_cannot_reach_output() {
        let n = parse("* np\nR1 in 0 1k\nG1 out 0 n1 0 1m\nR2 out 0 1k\nR3 n1 0 1k\n.end\n");
        let c = codes(&n);
        assert!(c.contains(&"ERC101"), "{c:?}");
        assert!(Linter::errors_only().lint(&n).has_errors());
    }

    #[test]
    fn erc102_fires_on_series_dangling_branch() {
        let n = parse("* db\nG1 out 0 in 0 1m\nR1 out 0 1k\nR2 out n1 1k\nR3 n1 n2 1k\n.end\n");
        let report = lint(&n);
        assert!(
            report.diagnostics().iter().any(|d| d.code() == "ERC102"),
            "{}",
            report.render()
        );
        // A dangling branch simulates (the stub is just dead weight).
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn erc103_fires_on_milliohm_resistor() {
        let n = parse("* sh\nG1 out 0 in 0 1m\nR1 out 0 1k\nR2 in out 1u\n.end\n");
        let report = lint(&n);
        assert!(
            report.diagnostics().iter().any(|d| d.code() == "ERC103"),
            "{}",
            report.render()
        );
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn erc104_fires_on_pathological_value_spread() {
        let n = parse("* cs\nG1 out 0 in 0 1m\nR1 out 0 1k\nR2 in out 1e16\n.end\n");
        let report = lint(&n);
        let diag = report
            .diagnostics()
            .iter()
            .find(|d| d.code() == "ERC104")
            .unwrap_or_else(|| panic!("no ERC104 in: {}", report.render()));
        assert!(diag.message.contains("R2"), "{}", diag.message);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn erc105_notes_open_loop_operation() {
        // One forward stage, grounded load, nothing feeding back.
        let report = lint(&parse(SOUND));
        let open = report
            .diagnostics()
            .iter()
            .find(|d| d.code() == "ERC105")
            .unwrap_or_else(|| panic!("no ERC105 in: {}", report.render()));
        assert_eq!(open.severity, Severity::Info);
        // A Miller loop silences the advisory.
        let closed = parse(
            "* ml\nG1 n1 0 in 0 1m\nR1 n1 0 10k\nG2 out 0 n1 0 1m\nR2 out 0 10k\nC1 n1 out 1p\n.end\n",
        );
        assert!(
            lint(&closed)
                .diagnostics()
                .iter()
                .all(|d| d.code() != "ERC105"),
            "{}",
            lint(&closed).render()
        );
    }

    #[test]
    fn lint_topology_reports_the_offending_topology() {
        let linter = Linter::default();
        let good = linter.lint_topology(&Topology::nmc_example());
        assert!(matches!(good, Ok(ref r) if r.is_clean()), "{good:?}");

        // A topology that validates at placement time but fails to
        // elaborate: poison a skeleton value.
        let mut topo = Topology::nmc_example();
        topo.skeleton.cl = artisan_circuit::units::Farads(f64::NAN);
        match linter.lint_topology(&topo) {
            Err(e) => {
                assert!(!e.topology.is_empty());
                assert!(e.to_string().contains(&e.topology), "{e}");
            }
            Ok(r) => panic!("poisoned topology linted clean: {}", r.render()),
        }
    }

    #[test]
    fn report_orders_errors_before_warnings() {
        // Missing ground (error) plus a dead end (warning).
        let n = parse("* mix\nR1 in out 1k\nR2 out n1 1k\n.end\n");
        let report = lint(&n);
        let severities: Vec<Severity> = report.diagnostics().iter().map(|d| d.severity).collect();
        let mut sorted = severities.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(severities, sorted, "{}", report.render());
    }
}
