use artisan_circuit::Node;
use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` diagnostics mark netlists whose MNA system is structurally
/// singular or otherwise unsimulatable; `Warning` marks constructs that
/// simulate but are almost certainly mistakes; `Info` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious but simulatable.
    Warning,
    /// The netlist cannot be simulated meaningfully.
    Error,
}

impl Severity {
    /// Lower-case name used in reports (`"error"`, `"warning"`,
    /// `"info"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The electrical rules, each with a stable `ERCnnn` code.
///
/// Codes are append-only: a rule keeps its code forever so downstream
/// tooling (and dialogue transcripts) can rely on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// ERC001: no element terminal touches ground.
    MissingGround,
    /// ERC002: the `out` node never appears.
    MissingOutput,
    /// ERC003: the `in` node never appears.
    InputUnused,
    /// ERC004: a node whose MNA row or column is structurally zero at
    /// every frequency.
    FloatingNode,
    /// ERC005: a VCCS senses a node no element drives.
    DanglingControl,
    /// ERC006: a node (or resistive island) with no DC path to ground
    /// or the driven input.
    NoDcPath,
    /// ERC007: two elements share one instance label.
    DuplicateLabel,
    /// ERC008: a resistor or capacitor with a non-positive or
    /// non-finite value.
    NonPositiveValue,
    /// ERC009: a VCCS with non-positive or non-finite transconductance.
    DegenerateVccs,
    /// ERC010: a dead-end node with a single conductive attachment.
    DanglingNode,
    /// ERC011: two elements of the same kind in parallel with equal
    /// value.
    ParallelDuplicate,
    /// ERC012: an element whose terminals short together, contributing
    /// nothing.
    SelfLoop,
    /// ERC013: nodes forming an island detached from the signal path.
    IsolatedIsland,
    /// ERC100: a connected component with no coupling of any kind to
    /// ground or the driven input — the MNA matrix is provably singular
    /// at every frequency (graph pass:
    /// `CircuitGraph::singular_islands`).
    SingularityPredicted,
    /// ERC101: input and output both exist but share no signal
    /// component, so the transfer function is identically zero.
    NoSignalPath,
    /// ERC102: a series-dangling branch of two or more nodes that leaf
    /// peeling removes entirely — it carries no current.
    DeadBranch,
    /// ERC103: a resistor so small it acts as a short and invites
    /// pathological pivots.
    DegenerateShort,
    /// ERC104: the spread of a value family (conductances or
    /// capacitances) exceeds what double-precision LU digests.
    ConditioningSpread,
    /// ERC105: an active circuit with no closed feedback loop around
    /// any VCCS — open-loop operation is advisory, not an error.
    OpenLoop,
}

impl Rule {
    /// Every rule, in code order.
    pub const ALL: [Rule; 19] = [
        Rule::MissingGround,
        Rule::MissingOutput,
        Rule::InputUnused,
        Rule::FloatingNode,
        Rule::DanglingControl,
        Rule::NoDcPath,
        Rule::DuplicateLabel,
        Rule::NonPositiveValue,
        Rule::DegenerateVccs,
        Rule::DanglingNode,
        Rule::ParallelDuplicate,
        Rule::SelfLoop,
        Rule::IsolatedIsland,
        Rule::SingularityPredicted,
        Rule::NoSignalPath,
        Rule::DeadBranch,
        Rule::DegenerateShort,
        Rule::ConditioningSpread,
        Rule::OpenLoop,
    ];

    /// The stable diagnostic code (`"ERC001"` …).
    pub fn code(self) -> &'static str {
        match self {
            Rule::MissingGround => "ERC001",
            Rule::MissingOutput => "ERC002",
            Rule::InputUnused => "ERC003",
            Rule::FloatingNode => "ERC004",
            Rule::DanglingControl => "ERC005",
            Rule::NoDcPath => "ERC006",
            Rule::DuplicateLabel => "ERC007",
            Rule::NonPositiveValue => "ERC008",
            Rule::DegenerateVccs => "ERC009",
            Rule::DanglingNode => "ERC010",
            Rule::ParallelDuplicate => "ERC011",
            Rule::SelfLoop => "ERC012",
            Rule::IsolatedIsland => "ERC013",
            Rule::SingularityPredicted => "ERC100",
            Rule::NoSignalPath => "ERC101",
            Rule::DeadBranch => "ERC102",
            Rule::DegenerateShort => "ERC103",
            Rule::ConditioningSpread => "ERC104",
            Rule::OpenLoop => "ERC105",
        }
    }

    /// The kebab-case rule name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::MissingGround => "missing-ground",
            Rule::MissingOutput => "missing-output",
            Rule::InputUnused => "input-unused",
            Rule::FloatingNode => "floating-node",
            Rule::DanglingControl => "dangling-vccs-control",
            Rule::NoDcPath => "no-dc-path-to-ground",
            Rule::DuplicateLabel => "duplicate-label",
            Rule::NonPositiveValue => "non-positive-value",
            Rule::DegenerateVccs => "degenerate-vccs",
            Rule::DanglingNode => "dangling-node",
            Rule::ParallelDuplicate => "parallel-duplicate",
            Rule::SelfLoop => "self-loop",
            Rule::IsolatedIsland => "isolated-island",
            Rule::SingularityPredicted => "predicted-singular-matrix",
            Rule::NoSignalPath => "no-signal-path",
            Rule::DeadBranch => "dead-series-branch",
            Rule::DegenerateShort => "degenerate-short",
            Rule::ConditioningSpread => "conditioning-spread",
            Rule::OpenLoop => "open-loop",
        }
    }

    /// The severity diagnostics from this rule carry.
    pub fn severity(self) -> Severity {
        match self {
            Rule::MissingGround
            | Rule::MissingOutput
            | Rule::InputUnused
            | Rule::FloatingNode
            | Rule::DanglingControl
            | Rule::NoDcPath
            | Rule::DuplicateLabel
            | Rule::NonPositiveValue
            | Rule::DegenerateVccs
            | Rule::SingularityPredicted
            | Rule::NoSignalPath => Severity::Error,
            Rule::DanglingNode
            | Rule::ParallelDuplicate
            | Rule::SelfLoop
            | Rule::IsolatedIsland
            | Rule::DeadBranch
            | Rule::DegenerateShort
            | Rule::ConditioningSpread => Severity::Warning,
            Rule::OpenLoop => Severity::Info,
        }
    }

    /// Looks a rule up by its `ERCnnn` code.
    pub fn from_code(code: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.code() == code)
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// Where in the netlist a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Span {
    /// The netlist as a whole.
    Netlist,
    /// One node.
    Node(Node),
    /// One element instance, by label.
    Element(String),
    /// A set of nodes (e.g. an island).
    Nodes(Vec<Node>),
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Netlist => write!(f, "netlist"),
            Span::Node(n) => write!(f, "node {n}"),
            Span::Element(label) => write!(f, "element {label}"),
            Span::Nodes(ns) => {
                write!(f, "nodes ")?;
                for (i, n) in ns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{n}")?;
                }
                Ok(())
            }
        }
    }
}

/// One finding of the electrical-rule checker.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// The rule's severity.
    pub severity: Severity,
    /// What the finding points at.
    pub span: Span,
    /// Human-readable description of the defect.
    pub message: String,
    /// Optional repair hint, phrased for the design dialogue.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    pub(crate) fn new(rule: Rule, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: rule.severity(),
            span,
            message: message.into(),
            suggestion: None,
        }
    }

    pub(crate) fn suggest(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    /// The stable `ERCnnn` code of the rule that fired.
    pub fn code(&self) -> &'static str {
        self.rule.code()
    }

    /// The machine-readable form of one diagnostic — the stable schema
    /// (`artisan-erc/1`) shared by [`crate::LintReport::to_json`], the
    /// simulator's `BadNetlistReport`, and the `artisan-lint` CLI:
    ///
    /// ```json
    /// {"code":"ERC004","rule":"floating-node","severity":"error",
    ///  "span":{"kind":"node","node":"n1"},"message":"…",
    ///  "suggestion":"…"}
    /// ```
    ///
    /// `span.kind` is one of `netlist`, `node`, `element`, `nodes`;
    /// `suggestion` is omitted when the rule offered none.
    pub fn to_json(&self) -> String {
        let span = match &self.span {
            Span::Netlist => "{\"kind\":\"netlist\"}".to_string(),
            Span::Node(n) => format!("{{\"kind\":\"node\",\"node\":{}}}", json_string(&n.name())),
            Span::Element(label) => {
                format!("{{\"kind\":\"element\",\"label\":{}}}", json_string(label))
            }
            Span::Nodes(ns) => format!(
                "{{\"kind\":\"nodes\",\"nodes\":[{}]}}",
                ns.iter()
                    .map(|n| json_string(&n.name()))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        };
        let mut out = format!(
            "{{\"code\":{},\"rule\":{},\"severity\":{},\"span\":{span},\"message\":{}",
            json_string(self.code()),
            json_string(self.rule.name()),
            json_string(self.severity.name()),
            json_string(&self.message),
        );
        if let Some(s) = &self.suggestion {
            out.push_str(&format!(",\"suggestion\":{}", json_string(s)));
        }
        out.push('}');
        out
    }

    /// Renders the diagnostic as one human-readable line.
    pub fn render(&self) -> String {
        let mut line = format!(
            "{}[{}] {}: {}",
            self.severity,
            self.code(),
            self.span,
            self.message
        );
        if let Some(s) = &self.suggestion {
            line.push_str(&format!(" (hint: {s})"));
        }
        line
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut codes: Vec<&str> = Rule::ALL.iter().map(|r| r.code()).collect();
        assert_eq!(codes[0], "ERC001");
        assert_eq!(codes[13], "ERC100");
        assert_eq!(codes.len(), 19);
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 19, "duplicate rule codes");
        for r in Rule::ALL {
            assert_eq!(Rule::from_code(r.code()), Some(r));
        }
        assert_eq!(Rule::from_code("ERC999"), None);
    }

    #[test]
    fn screening_rules_have_the_documented_severities() {
        assert_eq!(Rule::SingularityPredicted.severity(), Severity::Error);
        assert_eq!(Rule::NoSignalPath.severity(), Severity::Error);
        assert_eq!(Rule::DeadBranch.severity(), Severity::Warning);
        assert_eq!(Rule::DegenerateShort.severity(), Severity::Warning);
        assert_eq!(Rule::ConditioningSpread.severity(), Severity::Warning);
        assert_eq!(Rule::OpenLoop.severity(), Severity::Info);
    }

    #[test]
    fn diagnostic_json_is_the_stable_schema() {
        let d = Diagnostic::new(Rule::SingularityPredicted, Span::Nodes(vec![Node::N1]), "m")
            .suggest("s");
        assert_eq!(
            d.to_json(),
            "{\"code\":\"ERC100\",\"rule\":\"predicted-singular-matrix\",\
             \"severity\":\"error\",\"span\":{\"kind\":\"nodes\",\"nodes\":[\"n1\"]},\
             \"message\":\"m\",\"suggestion\":\"s\"}"
        );
    }

    #[test]
    fn severity_ordering_puts_error_on_top() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn render_mentions_code_and_span() {
        let d =
            Diagnostic::new(Rule::FloatingNode, Span::Node(Node::N1), "boom").suggest("connect it");
        let line = d.render();
        assert!(line.contains("ERC004"), "{line}");
        assert!(line.contains("node n1"), "{line}");
        assert!(line.contains("hint: connect it"), "{line}");
    }
}
