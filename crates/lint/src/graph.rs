//! The graph IR behind the rule engine.
//!
//! [`CircuitGraph`] is built **once** per lint from a [`Netlist`]
//! (elaborate a `Topology` first) and holds everything the dataflow
//! passes need: the node table, per-node structural attachment counts
//! ([`NodeStats`]), and the typed element edges. The classic passes —
//! union-find connectivity (DC-conductive and full-coupling), signal
//! reachability, directed feedback-cycle detection, iterative dead-branch
//! peeling, and the conditioning screen — are methods on the graph, so a
//! full lint stays `O(elements × α(nodes))` plus one bounded BFS per
//! live VCCS edge.
//!
//! The graph is also the foundation of the ERC100+ *screening* family:
//! [`CircuitGraph::singular_islands`] predicts `SingularMatrix` failures
//! before any LU factorization runs (see the left-null-vector argument on
//! that method), which is what lets the simulation stack reject doomed
//! candidates for a screening cost instead of a full testbench run.

use artisan_circuit::{Element, Netlist, Node};
use std::collections::BTreeMap;

/// Whether a node has its own MNA unknown (everything except the
/// eliminated ground reference and the driven input).
pub(crate) fn is_unknown(n: Node) -> bool {
    !matches!(n, Node::Ground | Node::Input)
}

/// Structural attachment counts for one node, accumulated over the
/// element list. "Live" VCCS attachments are the ones that actually
/// stamp a matrix entry: a VCCS with `out_p == out_n` or `ctrl_p ==
/// ctrl_n` cancels its own contribution, and entries only exist in rows
/// and columns belonging to unknown nodes.
#[derive(Debug, Default, Clone)]
pub(crate) struct NodeStats {
    /// Resistor/capacitor terminal attachments (self-loops excluded).
    pub(crate) rc: usize,
    /// VCCS output-terminal attachments (self-cancelling ones excluded).
    pub(crate) vccs_out: usize,
    /// VCCS outputs here whose control pair references an unknown node,
    /// i.e. this node's MNA *row* has a structural entry.
    pub(crate) vccs_out_live: usize,
    /// VCCS controls here whose output pair references an unknown node,
    /// i.e. this node's MNA *column* has a structural entry.
    pub(crate) vccs_ctrl_live: usize,
    /// Times this node is referenced as a VCCS control terminal.
    pub(crate) ctrl_refs: usize,
}

/// Disjoint-set forest over node indices.
pub(crate) struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    pub(crate) fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// What role an [`Edge`] plays in the element it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// A resistor branch (DC-conductive coupling).
    Resistor,
    /// A capacitor branch (AC-only coupling).
    Capacitor,
    /// The output branch of a VCCS (current injection pair).
    VccsOutput,
    /// The control pair of a VCCS (voltage sense, no current flows).
    VccsControl,
}

/// One typed edge of the circuit graph. Self-loops (`a == b`) are kept
/// out of the edge list — they stamp nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Label of the element this edge came from.
    pub element: String,
    /// The edge's electrical role.
    pub kind: EdgeKind,
    /// First terminal.
    pub a: Node,
    /// Second terminal.
    pub b: Node,
}

/// One family of the conditioning screen: the spread (max/min) of a
/// positive value class plus the extreme elements realizing it.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueSpread {
    /// Smallest value in the family.
    pub min: f64,
    /// Label of the element carrying the smallest value.
    pub min_label: String,
    /// Largest value in the family.
    pub max: f64,
    /// Label of the element carrying the largest value.
    pub max_label: String,
}

impl ValueSpread {
    /// `max / min` — the dynamic range LU has to survive.
    pub fn ratio(&self) -> f64 {
        self.max / self.min
    }
}

/// Result of the conditioning pass: per-family value spreads.
/// Conductances (1/R and gm) share one family because they land in the
/// same real part of the MNA matrix; capacitances form the other.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Conditioning {
    /// Spread of the conductance family (resistor `1/R` and VCCS `gm`).
    pub conductance: Option<ValueSpread>,
    /// Spread of the capacitance family.
    pub capacitance: Option<ValueSpread>,
}

/// The circuit graph IR: node table, typed edges, and per-node
/// structural statistics, computed in one pass over the element list.
pub struct CircuitGraph<'n> {
    pub(crate) netlist: &'n Netlist,
    pub(crate) nodes: Vec<Node>,
    pub(crate) index: BTreeMap<Node, usize>,
    pub(crate) stats: Vec<NodeStats>,
    edges: Vec<Edge>,
}

impl<'n> CircuitGraph<'n> {
    /// Builds the graph for `netlist` in one pass.
    pub fn new(netlist: &'n Netlist) -> Self {
        let nodes = netlist.nodes();
        let index: BTreeMap<Node, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let mut stats = vec![NodeStats::default(); nodes.len()];
        let mut edges = Vec::new();
        for e in netlist.elements() {
            match e {
                Element::Resistor { label, a, b, .. } => {
                    if a != b {
                        stats[index[a]].rc += 1;
                        stats[index[b]].rc += 1;
                        edges.push(Edge {
                            element: label.clone(),
                            kind: EdgeKind::Resistor,
                            a: *a,
                            b: *b,
                        });
                    }
                }
                Element::Capacitor { label, a, b, .. } => {
                    if a != b {
                        stats[index[a]].rc += 1;
                        stats[index[b]].rc += 1;
                        edges.push(Edge {
                            element: label.clone(),
                            kind: EdgeKind::Capacitor,
                            a: *a,
                            b: *b,
                        });
                    }
                }
                Element::Vccs {
                    label,
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    ..
                } => {
                    let out_live = out_p != out_n;
                    let ctrl_live = ctrl_p != ctrl_n;
                    // Rows of the output pair gain entries in the
                    // columns of the control pair (and vice versa) only
                    // when neither pair cancels itself.
                    let ctrl_hits_unknown =
                        ctrl_live && (is_unknown(*ctrl_p) || is_unknown(*ctrl_n));
                    let out_hits_unknown = out_live && (is_unknown(*out_p) || is_unknown(*out_n));
                    if out_live {
                        edges.push(Edge {
                            element: label.clone(),
                            kind: EdgeKind::VccsOutput,
                            a: *out_p,
                            b: *out_n,
                        });
                        for o in [*out_p, *out_n] {
                            let s = &mut stats[index[&o]];
                            s.vccs_out += 1;
                            if ctrl_hits_unknown {
                                s.vccs_out_live += 1;
                            }
                        }
                    }
                    if ctrl_live {
                        edges.push(Edge {
                            element: label.clone(),
                            kind: EdgeKind::VccsControl,
                            a: *ctrl_p,
                            b: *ctrl_n,
                        });
                    }
                    for c in [*ctrl_p, *ctrl_n] {
                        let s = &mut stats[index[&c]];
                        s.ctrl_refs += 1;
                        if ctrl_live && out_hits_unknown {
                            s.vccs_ctrl_live += 1;
                        }
                    }
                }
            }
        }
        CircuitGraph {
            netlist,
            nodes,
            index,
            stats,
            edges,
        }
    }

    /// Every node the netlist references, in canonical order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The typed element edges (self-loops excluded).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    pub(crate) fn stat(&self, n: Node) -> &NodeStats {
        &self.stats[self.index[&n]]
    }

    pub(crate) fn has_node(&self, n: Node) -> bool {
        self.index.contains_key(&n)
    }

    /// A node whose MNA row or column is structurally zero at every
    /// frequency — the matrix is singular no matter what values the
    /// elements carry.
    pub(crate) fn is_floating(&self, n: Node) -> bool {
        if !is_unknown(n) {
            return false;
        }
        let s = self.stat(n);
        if s.rc > 0 {
            return false;
        }
        // Zero row: nothing conductive and no live VCCS output.
        // Zero column: nothing conductive and no live VCCS control.
        s.vccs_out_live == 0 || s.vccs_ctrl_live == 0
    }

    /// Union-find over DC-conductive coupling: resistor edges, plus the
    /// self-conductance a VCCS develops when an output terminal doubles
    /// as a control terminal (the unity-gain buffer idiom — its `gm`
    /// stamps the node's own diagonal, tying it to the other control
    /// node at DC).
    pub(crate) fn dc_components(&self) -> UnionFind {
        let mut uf = UnionFind::new(self.nodes.len());
        for e in self.netlist.elements() {
            match e {
                Element::Resistor { a, b, .. } => {
                    if a != b {
                        uf.union(self.index[a], self.index[b]);
                    }
                }
                Element::Capacitor { .. } => {}
                Element::Vccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    ..
                } => {
                    if out_p == out_n || ctrl_p == ctrl_n {
                        continue;
                    }
                    for shared in [*out_p, *out_n] {
                        if shared == *ctrl_p || shared == *ctrl_n {
                            for c in [*ctrl_p, *ctrl_n] {
                                if c != shared {
                                    uf.union(self.index[&shared], self.index[&c]);
                                }
                            }
                        }
                    }
                }
            }
        }
        uf
    }

    /// Union-find over every element's full terminal clique (controls
    /// included), with ground excluded as a connector so that "tied to
    /// ground" does not count as "part of the signal path".
    pub(crate) fn signal_components(&self) -> UnionFind {
        let mut uf = UnionFind::new(self.nodes.len());
        for e in self.netlist.elements() {
            let terminals = e.nodes();
            for (i, a) in terminals.iter().enumerate() {
                for b in &terminals[i + 1..] {
                    if a != b && *a != Node::Ground && *b != Node::Ground {
                        uf.union(self.index[a], self.index[b]);
                    }
                }
            }
        }
        uf
    }

    /// Connected components — over the full terminal cliques of *every*
    /// element, ground and input included as connectors — that contain
    /// neither ground nor the driven input. Each such island makes the
    /// MNA matrix singular at **every** frequency:
    ///
    /// all of an island's nodes are unknowns (ground/input would have
    /// anchored the component), and every element touching an island
    /// node has *all* terminals inside the island (that is what the
    /// clique union guarantees). A resistor or capacitor `a–b` inside
    /// the island contributes `±y` pairs to columns `a`/`b` whose row
    /// indices are both island unknowns, so each column sums to zero
    /// over the island's rows; a VCCS contributes `±gm` to its control
    /// columns in the rows of its output pair — both island unknowns —
    /// which also cancel. The indicator vector of the island's rows is
    /// therefore a left null vector of `G + sC` for every `s`, and LU
    /// must fail no matter the frequency. This is the structural
    /// prediction behind rule `ERC100`.
    pub fn singular_islands(&self) -> Vec<Vec<Node>> {
        let mut uf = UnionFind::new(self.nodes.len());
        for e in self.netlist.elements() {
            let terminals = e.nodes();
            for (i, a) in terminals.iter().enumerate() {
                for b in &terminals[i + 1..] {
                    if a != b {
                        uf.union(self.index[a], self.index[b]);
                    }
                }
            }
        }
        let anchor_roots: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !is_unknown(**n))
            .map(|(i, _)| uf.find(i))
            .collect();
        let mut islands: BTreeMap<usize, Vec<Node>> = BTreeMap::new();
        for (i, &n) in self.nodes.iter().enumerate() {
            let root = uf.find(i);
            if !anchor_roots.contains(&root) {
                islands.entry(root).or_default().push(n);
            }
        }
        islands.into_values().collect()
    }

    /// Whether the driven input can influence the output at all: both
    /// nodes exist and share a signal component. Influence can only
    /// propagate through shared elements (a VCCS couples its control
    /// pair to its output pair, which the full-clique union covers), so
    /// two different components imply `H(s) ≡ 0`. Rule `ERC101`.
    pub fn has_signal_path(&self) -> bool {
        let (Some(&i), Some(&o)) = (self.index.get(&Node::Input), self.index.get(&Node::Output))
        else {
            return false;
        };
        let mut uf = self.signal_components();
        uf.find(i) == uf.find(o)
    }

    /// Whether any directed cycle passes through a VCCS (active) edge —
    /// the structural signature of a closed feedback loop. Signal flow
    /// is modelled between unknown nodes only: passive branches conduct
    /// both ways, a VCCS forces its control nodes onto its output nodes
    /// one way, and ground/input cannot relay a signal (one is the
    /// reference, the other is pinned by the source). Rule `ERC105`
    /// fires on the *absence* of such a cycle.
    pub fn has_feedback_loop(&self) -> bool {
        let n = self.nodes.len();
        let mut passive: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut active: Vec<(usize, usize)> = Vec::new();
        let relay = |node: Node| is_unknown(node);
        for e in &self.edges {
            match e.kind {
                EdgeKind::Resistor | EdgeKind::Capacitor => {
                    if relay(e.a) && relay(e.b) {
                        let (a, b) = (self.index[&e.a], self.index[&e.b]);
                        passive[a].push(b);
                        passive[b].push(a);
                    }
                }
                EdgeKind::VccsOutput | EdgeKind::VccsControl => {}
            }
        }
        for e in self.netlist.elements() {
            if let Element::Vccs {
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                ..
            } = e
            {
                if out_p == out_n || ctrl_p == ctrl_n {
                    continue;
                }
                for c in [*ctrl_p, *ctrl_n] {
                    for o in [*out_p, *out_n] {
                        // The forward edge may *start* at the input
                        // (the amplifier senses the source), but a
                        // cycle can never return to a pinned node, so
                        // only unknown→unknown edges can close a loop.
                        if relay(c) && relay(o) {
                            active.push((self.index[&c], self.index[&o]));
                        }
                    }
                }
            }
        }
        // A VCCS edge c→o closes a loop iff o reaches c through the
        // directed graph (passive edges both ways + all active edges).
        let step = |from: usize, out: &mut Vec<usize>| {
            out.extend(passive[from].iter().copied());
            out.extend(active.iter().filter(|(c, _)| *c == from).map(|(_, o)| *o));
        };
        for &(c, o) in &active {
            let mut seen = vec![false; n];
            let mut frontier = vec![o];
            seen[o] = true;
            while let Some(v) = frontier.pop() {
                if v == c {
                    return true;
                }
                let mut next = Vec::new();
                step(v, &mut next);
                for u in next {
                    if !seen[u] {
                        seen[u] = true;
                        frontier.push(u);
                    }
                }
            }
        }
        false
    }

    /// Iterative leaf peeling: repeatedly removes dead-end nodes (one
    /// conductive attachment, nothing sensing them, not the output) and
    /// the element that attached them, until a fixpoint. Returns the
    /// peeled nodes grouped by mutual connectivity — each group of two
    /// or more is a *series-dangling branch* that carries no current in
    /// steady state (rule `ERC102`); single peeled nodes are already
    /// covered by the dead-end rule `ERC010`.
    pub fn dead_branches(&self) -> Vec<Vec<Node>> {
        let elements = self.netlist.elements();
        let mut alive = vec![true; elements.len()];
        let mut peeled = vec![false; self.nodes.len()];
        loop {
            // Attachment census over the still-alive elements.
            let mut attach = vec![0usize; self.nodes.len()];
            let mut ctrl_refs = vec![0usize; self.nodes.len()];
            let mut last_element = vec![usize::MAX; self.nodes.len()];
            for (ei, e) in elements.iter().enumerate() {
                if !alive[ei] {
                    continue;
                }
                match e {
                    Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => {
                        if a != b {
                            for t in [a, b] {
                                attach[self.index[t]] += 1;
                                last_element[self.index[t]] = ei;
                            }
                        }
                    }
                    Element::Vccs {
                        out_p,
                        out_n,
                        ctrl_p,
                        ctrl_n,
                        ..
                    } => {
                        if out_p != out_n {
                            for t in [out_p, out_n] {
                                attach[self.index[t]] += 1;
                                last_element[self.index[t]] = ei;
                            }
                        }
                        for t in [ctrl_p, ctrl_n] {
                            ctrl_refs[self.index[t]] += 1;
                        }
                    }
                }
            }
            let mut progressed = false;
            for (i, &n) in self.nodes.iter().enumerate() {
                if peeled[i] || !is_unknown(n) || n == Node::Output {
                    continue;
                }
                if attach[i] == 1 && ctrl_refs[i] == 0 {
                    peeled[i] = true;
                    if last_element[i] != usize::MAX {
                        alive[last_element[i]] = false;
                    }
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        // Group peeled nodes that shared an element in the *original*
        // graph, so a peeled chain reports as one branch.
        let mut uf = UnionFind::new(self.nodes.len());
        for e in elements {
            let terminals = e.nodes();
            for (i, a) in terminals.iter().enumerate() {
                for b in &terminals[i + 1..] {
                    let (ia, ib) = (self.index[a], self.index[b]);
                    if a != b && peeled[ia] && peeled[ib] {
                        uf.union(ia, ib);
                    }
                }
            }
        }
        let mut groups: BTreeMap<usize, Vec<Node>> = BTreeMap::new();
        for (i, &n) in self.nodes.iter().enumerate() {
            if peeled[i] {
                groups.entry(uf.find(i)).or_default().push(n);
            }
        }
        groups.into_values().filter(|g| g.len() >= 2).collect()
    }

    /// The conditioning screen: per-family value spreads over the
    /// finite, positive element values (non-positive values are rule
    /// ERC008/ERC009's business). Rule `ERC104` warns when a family's
    /// ratio exceeds what double-precision LU digests comfortably.
    pub fn conditioning(&self) -> Conditioning {
        let mut cond = Conditioning::default();
        let track = |slot: &mut Option<ValueSpread>, label: &str, v: f64| {
            if !(v.is_finite() && v > 0.0) {
                return;
            }
            match slot {
                None => {
                    *slot = Some(ValueSpread {
                        min: v,
                        min_label: label.to_string(),
                        max: v,
                        max_label: label.to_string(),
                    });
                }
                Some(s) => {
                    if v < s.min {
                        s.min = v;
                        s.min_label = label.to_string();
                    }
                    if v > s.max {
                        s.max = v;
                        s.max_label = label.to_string();
                    }
                }
            }
        };
        for e in self.netlist.elements() {
            match e {
                Element::Resistor { label, ohms, .. } => {
                    track(&mut cond.conductance, label, 1.0 / ohms.value());
                }
                Element::Capacitor { label, farads, .. } => {
                    track(&mut cond.capacitance, label, farads.value());
                }
                Element::Vccs { label, gm, .. } => {
                    track(&mut cond.conductance, label, gm.value());
                }
            }
        }
        cond
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Netlist {
        match Netlist::parse(text) {
            Ok(n) => n,
            Err(e) => panic!("test netlist failed to parse: {e}"),
        }
    }

    #[test]
    fn edges_are_typed_and_skip_self_loops() {
        let n = parse("* t\nG1 out 0 in 0 1m\nR1 out 0 1k\nC1 out out 1p\n.end\n");
        let g = CircuitGraph::new(&n);
        let kinds: Vec<EdgeKind> = g.edges().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EdgeKind::Resistor));
        assert!(kinds.contains(&EdgeKind::VccsOutput));
        assert!(kinds.contains(&EdgeKind::VccsControl));
        // The self-looped capacitor stamps nothing and emits no edge.
        assert!(!kinds.contains(&EdgeKind::Capacitor));
    }

    #[test]
    fn singular_island_is_detected_at_every_frequency() {
        // n1–n2 couple through both a resistor and a capacitor but
        // never touch ground or input: singular at DC *and* at AC.
        let n = parse("* i\nG1 out 0 in 0 1m\nR1 out 0 1k\nR2 n1 n2 1k\nC1 n1 n2 1p\n.end\n");
        let g = CircuitGraph::new(&n);
        let islands = g.singular_islands();
        assert_eq!(islands.len(), 1, "{islands:?}");
        assert_eq!(islands[0].len(), 2, "{islands:?}");
    }

    #[test]
    fn grounded_subcircuits_are_not_islands() {
        let n = parse("* g\nG1 out 0 in 0 1m\nR1 out 0 1k\nR2 n1 n2 1k\nR3 n2 0 1k\n.end\n");
        let g = CircuitGraph::new(&n);
        assert!(g.singular_islands().is_empty());
    }

    #[test]
    fn signal_path_reachability() {
        let joined = parse("* j\nG1 out 0 in 0 1m\nR1 out 0 1k\n.end\n");
        assert!(CircuitGraph::new(&joined).has_signal_path());
        // Input drives a grounded load; output hangs off a separate
        // VCCS that senses a bias node — no influence path exists.
        let split = parse("* s\nR1 in 0 1k\nG1 out 0 n1 0 1m\nR2 out 0 1k\nR3 n1 0 1k\n.end\n");
        assert!(!CircuitGraph::new(&split).has_signal_path());
    }

    #[test]
    fn feedback_cycle_detection() {
        // Open loop: one forward stage, grounded load.
        let open = parse("* o\nG1 out 0 in 0 1m\nR1 out 0 1k\n.end\n");
        assert!(!CircuitGraph::new(&open).has_feedback_loop());
        // A Miller capacitor around the second stage closes a loop:
        // n1 →(G2) out →(C1) n1.
        let closed = parse(
            "* c\nG1 n1 0 in 0 1m\nR1 n1 0 10k\nG2 out 0 n1 0 1m\nR2 out 0 10k\nC1 n1 out 1p\n.end\n",
        );
        assert!(CircuitGraph::new(&closed).has_feedback_loop());
    }

    #[test]
    fn series_dangling_chain_is_peeled_as_one_branch() {
        // out–n1–n2 is a series stub: n2 dangles, peeling it strands
        // n1, so the whole chain is dead.
        let n = parse("* d\nG1 out 0 in 0 1m\nR1 out 0 1k\nR2 out n1 1k\nR3 n1 n2 1k\n.end\n");
        let g = CircuitGraph::new(&n);
        let branches = g.dead_branches();
        assert_eq!(branches.len(), 1, "{branches:?}");
        assert_eq!(branches[0].len(), 2, "{branches:?}");
    }

    #[test]
    fn single_dead_ends_are_not_reported_as_branches() {
        let n = parse("* e\nG1 out 0 in 0 1m\nR1 out 0 1k\nR2 out n1 1k\n.end\n");
        assert!(CircuitGraph::new(&n).dead_branches().is_empty());
    }

    #[test]
    fn conditioning_tracks_extremes_per_family() {
        let n = parse("* v\nG1 out 0 in 0 1m\nR1 out 0 1k\nR2 out 0 1e9\nC1 out 0 1p\n.end\n");
        let cond = CircuitGraph::new(&n).conditioning();
        let g = cond.conductance.expect("conductance family present");
        assert_eq!(g.min_label, "R2");
        // gm = 1e-3 dominates both resistors' conductances.
        assert_eq!(g.max_label, "G1");
        assert!(g.ratio() > 1e5, "{}", g.ratio());
        let c = cond.capacitance.expect("capacitance family present");
        assert_eq!(c.ratio(), 1.0);
    }
}
