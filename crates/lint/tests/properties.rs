//! Property tests: every netlist the topology layer can legitimately
//! produce must pass the ERC admission gate.

use artisan_circuit::sample::{sample_topology, SampleRanges};
use artisan_circuit::Topology;
use artisan_lint::{lint, Linter};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn example_topologies_are_fully_clean() {
    for (name, topo) in [
        ("nmc", Topology::nmc_example()),
        ("dfc", Topology::dfc_example()),
    ] {
        let netlist = match topo.elaborate() {
            Ok(n) => n,
            Err(e) => panic!("{name}: elaborate failed: {e}"),
        };
        let report = lint(&netlist);
        assert!(
            report.is_clean(),
            "{name}: expected clean, got:\n{}",
            report.render()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any legally sampled topology elaborates into a netlist free of
    /// Error-severity diagnostics: the admission gate never rejects a
    /// netlist the generator can actually produce.
    #[test]
    fn sampled_topologies_pass_the_admission_gate(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = sample_topology(&mut rng, &SampleRanges::default(), 10e-12);
        let netlist = match topo.elaborate() {
            Ok(n) => n,
            Err(e) => panic!("seed {seed}: elaborate failed: {e}"),
        };
        let report = Linter::errors_only().lint(&netlist);
        prop_assert!(
            !report.has_errors(),
            "seed {}: {}\n{}",
            seed,
            report.render(),
            netlist.to_text()
        );
    }

    /// The JSON report stays structurally balanced for arbitrary
    /// sampled netlists (cheap well-formedness invariant without a
    /// JSON parser in the dependency tree).
    #[test]
    fn json_report_is_balanced(seed in 0u64..5_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = sample_topology(&mut rng, &SampleRanges::default(), 10e-12);
        let netlist = match topo.elaborate() {
            Ok(n) => n,
            Err(e) => panic!("seed {seed}: elaborate failed: {e}"),
        };
        let json = lint(&netlist).to_json();
        prop_assert_eq!(json.matches('{').count(), json.matches('}').count());
        prop_assert_eq!(json.matches('[').count(), json.matches(']').count());
        prop_assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
