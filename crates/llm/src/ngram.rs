//! Interpolated n-gram language model.
//!
//! The DAPT stage of the paper's pipeline teaches the base model the
//! opamp domain's token distribution; here, that role is played by an
//! n-gram model with Jelinek–Mercer interpolation across orders and
//! add-α smoothing at the unigram floor. Perplexity on held-out domain
//! text quantifies adaptation (it drops sharply after training on the
//! corpus — the measurable analogue of the paper's claim that DAPT
//! instils background knowledge).

use rand::Rng;
use std::collections::HashMap;

/// Sentinel token id used to pad context at sequence starts.
const BOS: u32 = u32::MAX;

/// An interpolated n-gram language model over token ids.
///
/// # Example
///
/// ```
/// use artisan_llm::NgramLm;
///
/// let mut lm = NgramLm::new(3, 1000);
/// lm.observe(&[1, 2, 3, 1, 2, 4, 1, 2, 3]);
/// // Context (1, 2) strongly predicts 3.
/// assert!(lm.prob(&[1, 2], 3) > lm.prob(&[1, 2], 7));
/// ```
#[derive(Debug, Clone)]
pub struct NgramLm {
    order: usize,
    vocab_size: usize,
    /// counts[k] maps a (k+1)-gram (context of length k, then token) to
    /// its count; contexts[k] maps the length-k context to its total.
    counts: Vec<HashMap<Vec<u32>, u64>>,
    contexts: Vec<HashMap<Vec<u32>, u64>>,
    /// Jelinek–Mercer interpolation weight per order (higher order first).
    lambda: f64,
    /// Add-α smoothing at the unigram level.
    alpha: f64,
    tokens_seen: u64,
}

impl NgramLm {
    /// Creates an untrained model of the given order (≥ 1) over a
    /// vocabulary of `vocab_size` ids.
    ///
    /// # Panics
    ///
    /// Panics when `order` is zero or `vocab_size` is zero.
    pub fn new(order: usize, vocab_size: usize) -> Self {
        assert!(order >= 1, "order must be at least 1");
        assert!(vocab_size >= 1, "vocabulary must be non-empty");
        NgramLm {
            order,
            vocab_size,
            counts: vec![HashMap::new(); order],
            contexts: vec![HashMap::new(); order],
            lambda: 0.7,
            alpha: 0.5,
            tokens_seen: 0,
        }
    }

    /// Model order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Total training tokens observed.
    pub fn tokens_seen(&self) -> u64 {
        self.tokens_seen
    }

    /// Accumulates counts from one token sequence (a document).
    pub fn observe(&mut self, tokens: &[u32]) {
        let mut padded = vec![BOS; self.order - 1];
        padded.extend_from_slice(tokens);
        for i in (self.order - 1)..padded.len() {
            for k in 0..self.order {
                // (k)-length context ending at i-1, then token at i.
                let ctx: Vec<u32> = padded[i - k..i].to_vec();
                let mut gram = ctx.clone();
                gram.push(padded[i]);
                *self.counts[k].entry(gram).or_insert(0) += 1;
                *self.contexts[k].entry(ctx).or_insert(0) += 1;
            }
        }
        self.tokens_seen += tokens.len() as u64;
    }

    /// Interpolated probability of `token` after `context` (the last
    /// `order − 1` entries of `context` are used).
    pub fn prob(&self, context: &[u32], token: u32) -> f64 {
        // Unigram floor with add-α smoothing.
        let uni_count = self.counts[0].get(&vec![token]).copied().unwrap_or(0) as f64;
        let total = self.tokens_seen as f64;
        let mut p = (uni_count + self.alpha) / (total + self.alpha * self.vocab_size as f64);

        // Interpolate higher orders: p_k = λ·ML_k + (1−λ)·p_{k−1}.
        for k in 1..self.order {
            if context.len() < k {
                break;
            }
            let ctx: Vec<u32> = context[context.len() - k..].to_vec();
            let ctx_total = self.contexts[k].get(&ctx).copied().unwrap_or(0);
            if ctx_total == 0 {
                continue; // unseen context: keep lower-order estimate
            }
            let mut gram = ctx.clone();
            gram.push(token);
            let c = self.counts[k].get(&gram).copied().unwrap_or(0) as f64;
            let ml = c / ctx_total as f64;
            p = self.lambda * ml + (1.0 - self.lambda) * p;
        }
        p
    }

    /// Perplexity of a token sequence: `exp(−(1/N)·Σ ln p)`. Returns
    /// `None` for an empty sequence.
    pub fn perplexity(&self, tokens: &[u32]) -> Option<f64> {
        if tokens.is_empty() {
            return None;
        }
        let mut padded = vec![BOS; self.order - 1];
        padded.extend_from_slice(tokens);
        let mut log_sum = 0.0;
        for i in (self.order - 1)..padded.len() {
            let ctx = &padded[i.saturating_sub(self.order - 1)..i];
            log_sum += self.prob(ctx, padded[i]).max(1e-300).ln();
        }
        Some((-log_sum / tokens.len() as f64).exp())
    }

    /// Samples the next token given a context, with temperature. A
    /// temperature of 0 is greedy argmax; higher temperatures flatten the
    /// distribution. Sampling is restricted to tokens observed in
    /// training (the unigram support).
    pub fn sample_next<R: Rng + ?Sized>(
        &self,
        context: &[u32],
        temperature: f64,
        rng: &mut R,
    ) -> Option<u32> {
        let support: Vec<u32> = self.counts[0].keys().map(|g| g[0]).collect();
        if support.is_empty() {
            return None;
        }
        if temperature <= 0.0 {
            return support.into_iter().max_by(|&a, &b| {
                self.prob(context, a)
                    .total_cmp(&self.prob(context, b))
                    .then(b.cmp(&a))
            });
        }
        let weights: Vec<f64> = support
            .iter()
            .map(|&t| self.prob(context, t).powf(1.0 / temperature))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut draw = rng.gen_range(0.0..total);
        for (t, w) in support.iter().zip(&weights) {
            draw -= w;
            if draw <= 0.0 {
                return Some(*t);
            }
        }
        support.last().copied()
    }

    /// Generates up to `max_tokens` tokens from a seed context.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        seed: &[u32],
        max_tokens: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Vec<u32> {
        let mut out = seed.to_vec();
        for _ in 0..max_tokens {
            let ctx_start = out.len().saturating_sub(self.order - 1);
            let Some(next) = self.sample_next(&out[ctx_start..], temperature, rng) else {
                break;
            };
            out.push(next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained() -> NgramLm {
        let mut lm = NgramLm::new(3, 100);
        // A strongly patterned corpus: 1 2 3 repeated, with noise.
        lm.observe(&[1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3, 5, 1, 2, 3]);
        lm
    }

    #[test]
    fn probabilities_form_reasonable_distribution() {
        let lm = trained();
        // Sum over support should be ≤ 1 + smoothing slack.
        let sum: f64 = (0..100).map(|t| lm.prob(&[1, 2], t)).sum();
        assert!(sum > 0.5 && sum < 1.2, "sum {sum}");
    }

    #[test]
    fn pattern_is_learned() {
        let lm = trained();
        assert!(lm.prob(&[1, 2], 3) > 0.5);
        assert!(lm.prob(&[1, 2], 3) > 10.0 * lm.prob(&[1, 2], 7));
    }

    #[test]
    fn perplexity_drops_with_training() {
        let mut lm = NgramLm::new(3, 100);
        let held_out = [1, 2, 3, 1, 2, 3];
        let before = lm.perplexity(&held_out).unwrap();
        lm.observe(&[1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3]);
        let after = lm.perplexity(&held_out).unwrap();
        assert!(
            after < before / 5.0,
            "perplexity before {before}, after {after}"
        );
    }

    #[test]
    fn empty_sequence_has_no_perplexity() {
        assert!(trained().perplexity(&[]).is_none());
    }

    #[test]
    fn greedy_sampling_follows_pattern() {
        let lm = trained();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(lm.sample_next(&[1, 2], 0.0, &mut rng), Some(3));
    }

    #[test]
    fn generation_extends_sequence() {
        let lm = trained();
        let mut rng = StdRng::seed_from_u64(0);
        let out = lm.generate(&[1], 8, 0.5, &mut rng);
        assert_eq!(out.len(), 9);
        assert_eq!(out[0], 1);
    }

    #[test]
    fn untrained_model_cannot_sample() {
        let lm = NgramLm::new(2, 10);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(lm.sample_next(&[1], 1.0, &mut rng), None);
        assert!(lm.generate(&[1], 5, 1.0, &mut rng).len() == 1);
    }

    #[test]
    fn tokens_seen_accumulates() {
        let mut lm = NgramLm::new(2, 10);
        lm.observe(&[1, 2, 3]);
        lm.observe(&[4, 5]);
        assert_eq!(lm.tokens_seen(), 5);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn zero_order_panics() {
        NgramLm::new(0, 10);
    }
}
