//! A compact, honest language-model substrate — the workspace's
//! substitute for the paper's Llama2-7b training stack (§3.4; see
//! `DESIGN.md`, substitution table).
//!
//! The paper trains *Artisan-LLM* in two stages on 8×A100 GPUs:
//! domain-adaptive pretraining (DAPT) on a 165 M-token corpus, then
//! supervised fine-tuning (SFT) on instruction data including the
//! DesignQA set. What the rest of the framework consumes is the model's
//! *function*: given a design question, produce a domain-grounded answer;
//! given a corpus, measurably absorb its distribution.
//!
//! This crate reproduces that function at laptop scale, from scratch:
//!
//! - [`tokenizer`] — a byte-pair-encoding tokenizer trained on the corpus,
//! - [`ngram`] — an interpolated n-gram language model (the DAPT stage
//!   fits it; perplexity quantifies domain adaptation),
//! - [`retrieval`] — a TF-IDF index with cosine ranking (the SFT stage
//!   indexes DesignQA; answering is retrieval + sampling),
//! - [`model`] — [`DomainLm`]: the two-stage train/answer façade used by
//!   the Artisan-LLM agent.
//!
//! # Example
//!
//! ```
//! use artisan_llm::DomainLm;
//! use rand::SeedableRng;
//!
//! let mut lm = DomainLm::new(512, 3);
//! lm.pretrain(&["the nested miller compensation opamp uses two capacitors"]);
//! lm.fine_tune(&[("how do we compensate a three-stage opamp?",
//!                 "use nested miller compensation with two capacitors")]);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let a = lm.answer("how to compensate the three-stage opamp", 0.0, &mut rng).unwrap();
//! assert!(a.text.contains("nested miller"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod ngram;
pub mod retrieval;
pub mod tokenizer;

pub use model::{Answer, DomainLm};
pub use ngram::NgramLm;
pub use retrieval::TfIdfIndex;
pub use tokenizer::BpeTokenizer;
