//! Byte-pair-encoding tokenizer.
//!
//! Words are pre-split on whitespace; within a word, training greedily
//! merges the most frequent adjacent symbol pair until the vocabulary
//! budget is exhausted — the standard BPE algorithm (Sennrich et al.),
//! implemented directly. An end-of-word marker (`</w>`) keeps the
//! encoding reversible.

use std::collections::HashMap;

/// Marker appended to the final symbol of every word so that decoding can
/// restore word boundaries.
const EOW: &str = "</w>";

/// A trained BPE tokenizer.
///
/// # Example
///
/// ```
/// use artisan_llm::BpeTokenizer;
///
/// let tok = BpeTokenizer::train(&["miller compensation capacitor"], 64);
/// let ids = tok.encode("miller capacitor");
/// assert_eq!(tok.decode(&ids), "miller capacitor");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BpeTokenizer {
    /// Learned merges in priority order: (left, right) → merged symbol.
    merges: Vec<(String, String)>,
    /// Symbol → token id. Ids are dense, 0-based.
    vocab: HashMap<String, u32>,
    /// Token id → symbol (inverse of `vocab`).
    symbols: Vec<String>,
}

impl BpeTokenizer {
    /// Trains on a corpus with a vocabulary budget (base symbols plus
    /// learned merges). Lowercases input; unknown characters at encode
    /// time fall back to per-character tokens added lazily as `<unk>`.
    ///
    /// # Panics
    ///
    /// Panics when `vocab_budget` is zero.
    pub fn train(corpus: &[&str], vocab_budget: usize) -> Self {
        assert!(vocab_budget > 0, "vocabulary budget must be positive");
        // Word frequency table.
        let mut word_freq: HashMap<Vec<String>, u64> = HashMap::new();
        for text in corpus {
            for word in text.to_lowercase().split_whitespace() {
                let mut syms: Vec<String> = word.chars().map(|c| c.to_string()).collect();
                if let Some(last) = syms.last_mut() {
                    last.push_str(EOW);
                }
                if !syms.is_empty() {
                    *word_freq.entry(syms).or_insert(0) += 1;
                }
            }
        }

        // Base vocabulary: all single symbols seen.
        let mut vocab_set: std::collections::BTreeSet<String> =
            word_freq.keys().flat_map(|w| w.iter().cloned()).collect();

        let mut merges = Vec::new();
        while vocab_set.len() < vocab_budget {
            // Count adjacent pairs.
            let mut pair_freq: HashMap<(String, String), u64> = HashMap::new();
            for (word, freq) in &word_freq {
                for pair in word.windows(2) {
                    *pair_freq
                        .entry((pair[0].clone(), pair[1].clone()))
                        .or_insert(0) += freq;
                }
            }
            // Deterministic tie-break: highest frequency, then lexicographic.
            let Some((best, best_freq)) = pair_freq
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            else {
                break;
            };
            if best_freq < 2 {
                break; // nothing frequent enough to merge
            }
            let merged = format!("{}{}", best.0, best.1);
            vocab_set.insert(merged.clone());
            merges.push(best.clone());

            // Apply the merge to all words.
            let mut next: HashMap<Vec<String>, u64> = HashMap::with_capacity(word_freq.len());
            for (word, freq) in word_freq.drain() {
                let mut out = Vec::with_capacity(word.len());
                let mut i = 0;
                while i < word.len() {
                    if i + 1 < word.len() && word[i] == best.0 && word[i + 1] == best.1 {
                        out.push(merged.clone());
                        i += 2;
                    } else {
                        out.push(word[i].clone());
                        i += 1;
                    }
                }
                *next.entry(out).or_insert(0) += freq;
            }
            word_freq = next;
        }

        let mut symbols: Vec<String> = vocab_set.into_iter().collect();
        symbols.push("<unk>".to_string());
        let vocab = symbols
            .iter()
            .enumerate()
            .map(|(k, s)| (s.clone(), k as u32))
            .collect();
        BpeTokenizer {
            merges,
            vocab,
            symbols,
        }
    }

    /// Vocabulary size (including `<unk>`).
    pub fn vocab_size(&self) -> usize {
        self.symbols.len()
    }

    /// Number of learned merges.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// Encodes text into token ids.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let unk = self.vocab["<unk>"];
        let mut out = Vec::new();
        for word in text.to_lowercase().split_whitespace() {
            let mut syms: Vec<String> = word.chars().map(|c| c.to_string()).collect();
            if let Some(last) = syms.last_mut() {
                last.push_str(EOW);
            }
            // Apply merges in learned order.
            for (l, r) in &self.merges {
                let mut i = 0;
                while i + 1 < syms.len() {
                    if &syms[i] == l && &syms[i + 1] == r {
                        syms[i] = format!("{l}{r}");
                        syms.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
            for s in syms {
                out.push(self.vocab.get(&s).copied().unwrap_or(unk));
            }
        }
        out
    }

    /// Decodes token ids back into text. Unknown ids render as `<unk>`.
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut out = String::new();
        for &id in ids {
            let sym = self
                .symbols
                .get(id as usize)
                .map(String::as_str)
                .unwrap_or("<unk>");
            if let Some(stripped) = sym.strip_suffix(EOW) {
                out.push_str(stripped);
                out.push(' ');
            } else {
                out.push_str(sym);
            }
        }
        out.trim_end().to_string()
    }

    /// Counts tokens in a text — the unit of Table 1's "Tokens (M)"
    /// column.
    pub fn count_tokens(&self, text: &str) -> usize {
        self.encode(text).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORPUS: &[&str] = &[
        "the nested miller compensation opamp uses two miller capacitors",
        "the miller capacitor controls the dominant pole",
        "a three stage opamp has three transconductance stages",
    ];

    #[test]
    fn roundtrip_on_training_text() {
        let tok = BpeTokenizer::train(CORPUS, 200);
        for text in CORPUS {
            let ids = tok.encode(text);
            assert_eq!(tok.decode(&ids), *text);
        }
    }

    #[test]
    fn roundtrip_on_unseen_text_with_known_chars() {
        let tok = BpeTokenizer::train(CORPUS, 200);
        let text = "stage capacitor pole";
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }

    #[test]
    fn merges_reduce_token_count() {
        let small = BpeTokenizer::train(CORPUS, 30); // almost chars only
        let large = BpeTokenizer::train(CORPUS, 300); // many merges
        let text = "miller compensation capacitors";
        assert!(
            large.count_tokens(text) < small.count_tokens(text),
            "{} vs {}",
            large.count_tokens(text),
            small.count_tokens(text)
        );
        assert!(large.merge_count() > small.merge_count());
    }

    #[test]
    fn unknown_characters_fall_back_to_unk() {
        let tok = BpeTokenizer::train(CORPUS, 100);
        let ids = tok.encode("ωζ"); // characters never seen
        assert!(!ids.is_empty());
        assert!(tok.decode(&ids).contains("<unk>"));
    }

    #[test]
    fn lowercasing_is_applied() {
        let tok = BpeTokenizer::train(CORPUS, 100);
        assert_eq!(tok.encode("MILLER"), tok.encode("miller"));
    }

    #[test]
    fn training_is_deterministic() {
        let a = BpeTokenizer::train(CORPUS, 150);
        let b = BpeTokenizer::train(CORPUS, 150);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn zero_budget_panics() {
        BpeTokenizer::train(CORPUS, 0);
    }

    #[test]
    fn vocab_contains_unk() {
        let tok = BpeTokenizer::train(CORPUS, 50);
        assert!(tok.vocab_size() >= 2);
        assert!(tok.decode(&[tok.vocab_size() as u32]).contains("<unk>"));
    }
}
