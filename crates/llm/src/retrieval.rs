//! TF-IDF retrieval with cosine ranking.
//!
//! The SFT stage's functional payload: after indexing the DesignQA set,
//! answering a prompter question reduces to retrieving the best-matching
//! training question and emitting (a perturbed copy of) its answer.

use std::collections::HashMap;

/// A ranked retrieval hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Index of the document in insertion order.
    pub doc_id: usize,
    /// Cosine similarity in `[0, 1]`.
    pub score: f64,
}

/// A TF-IDF index over word-tokenized documents.
///
/// # Example
///
/// ```
/// use artisan_llm::TfIdfIndex;
///
/// let mut idx = TfIdfIndex::new();
/// idx.add_document("nested miller compensation for three stage opamps");
/// idx.add_document("bandgap reference voltage temperature");
/// idx.finalize();
/// let hits = idx.query("how to compensate a three stage opamp", 1);
/// assert_eq!(hits[0].doc_id, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TfIdfIndex {
    /// Raw term-frequency vectors per document.
    docs: Vec<HashMap<String, f64>>,
    /// Document frequency per term.
    df: HashMap<String, usize>,
    /// Normalized tf-idf vectors (built by `finalize`).
    vectors: Vec<HashMap<String, f64>>,
    finalized: bool,
}

fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(stem)
        .collect()
}

/// A deliberately light suffix stemmer: maps inflected forms
/// (`poles`→`pole`, `allocated`/`allocation`→`allocat`, `driving`→`driv`)
/// onto shared stems so that paraphrased questions still retrieve. Not a
/// full Porter stemmer — just the suffixes that matter for engineering
/// prose.
fn stem(word: &str) -> String {
    let w = word;
    for suffix in ["ations", "ation", "ing", "ed", "s"] {
        if let Some(stripped) = w.strip_suffix(suffix) {
            if stripped.len() >= 3 {
                return stripped.to_string();
            }
        }
    }
    w.to_string()
}

impl TfIdfIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one document; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if called after [`TfIdfIndex::finalize`].
    pub fn add_document(&mut self, text: &str) -> usize {
        assert!(!self.finalized, "index already finalized");
        let mut tf: HashMap<String, f64> = HashMap::new();
        for w in tokenize(text) {
            *tf.entry(w).or_insert(0.0) += 1.0;
        }
        for term in tf.keys() {
            *self.df.entry(term.clone()).or_insert(0) += 1;
        }
        self.docs.push(tf);
        self.docs.len() - 1
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents have been added.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Builds the normalized tf-idf vectors. Must be called once after
    /// all documents are added and before queries.
    pub fn finalize(&mut self) {
        let n = self.docs.len() as f64;
        self.vectors = self
            .docs
            .iter()
            .map(|tf| {
                let mut v: HashMap<String, f64> = tf
                    .iter()
                    .map(|(term, &freq)| {
                        let df = self.df[term] as f64;
                        let idf = ((n + 1.0) / (df + 1.0)).ln() + 1.0;
                        (term.clone(), (1.0 + freq.ln()) * idf)
                    })
                    .collect();
                let norm = v.values().map(|x| x * x).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for x in v.values_mut() {
                        *x /= norm;
                    }
                }
                v
            })
            .collect();
        self.finalized = true;
    }

    /// Returns the top-`k` documents by cosine similarity to the query.
    ///
    /// # Panics
    ///
    /// Panics if the index has not been finalized.
    pub fn query(&self, text: &str, k: usize) -> Vec<Hit> {
        assert!(self.finalized, "finalize the index before querying");
        let n = self.docs.len() as f64;
        let mut q: HashMap<String, f64> = HashMap::new();
        for w in tokenize(text) {
            *q.entry(w).or_insert(0.0) += 1.0;
        }
        for (term, x) in q.iter_mut() {
            let df = self.df.get(term).copied().unwrap_or(0) as f64;
            let idf = ((n + 1.0) / (df + 1.0)).ln() + 1.0;
            *x = (1.0 + x.ln()) * idf;
        }
        let qnorm = q.values().map(|x| x * x).sum::<f64>().sqrt();
        if qnorm == 0.0 {
            return Vec::new();
        }

        let mut hits: Vec<Hit> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(doc_id, v)| {
                let dot: f64 = q
                    .iter()
                    .filter_map(|(term, &x)| v.get(term).map(|&y| x * y))
                    .sum();
                Hit {
                    doc_id,
                    score: dot / qnorm,
                }
            })
            .filter(|h| h.score > 0.0)
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc_id.cmp(&b.doc_id)));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> TfIdfIndex {
        let mut idx = TfIdfIndex::new();
        idx.add_document(
            "nested miller compensation controls the dominant pole of a three stage opamp",
        );
        idx.add_document("the damping factor control block drives large capacitive loads");
        idx.add_document("bayesian optimization tunes circuit parameters with gaussian processes");
        idx.finalize();
        idx
    }

    #[test]
    fn relevant_document_ranks_first() {
        let idx = sample_index();
        let hits = idx.query("how should the dominant pole be compensated?", 3);
        assert_eq!(hits[0].doc_id, 0, "{hits:?}");
        let hits = idx.query("what block can drive a large capacitive load?", 3);
        assert_eq!(hits[0].doc_id, 1);
        let hits = idx.query("gaussian process parameter optimization", 3);
        assert_eq!(hits[0].doc_id, 2);
    }

    #[test]
    fn scores_are_cosines_in_unit_range() {
        let idx = sample_index();
        for h in idx.query("miller compensation pole", 3) {
            assert!(h.score > 0.0 && h.score <= 1.0 + 1e-12, "{h:?}");
        }
    }

    #[test]
    fn identical_query_scores_near_one() {
        let mut idx = TfIdfIndex::new();
        idx.add_document("alpha beta gamma");
        idx.finalize();
        let hits = idx.query("alpha beta gamma", 1);
        assert!((hits[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_overlap_means_no_hits() {
        let idx = sample_index();
        assert!(idx.query("xylophone zephyr", 5).is_empty());
        assert!(idx.query("", 5).is_empty());
    }

    #[test]
    fn k_truncates() {
        let idx = sample_index();
        assert_eq!(idx.query("the", 1).len().max(1), 1);
    }

    #[test]
    #[should_panic(expected = "finalize")]
    fn query_before_finalize_panics() {
        let mut idx = TfIdfIndex::new();
        idx.add_document("a b c");
        idx.query("a", 1);
    }

    #[test]
    #[should_panic(expected = "finalized")]
    fn add_after_finalize_panics() {
        let mut idx = TfIdfIndex::new();
        idx.add_document("a");
        idx.finalize();
        idx.add_document("b");
    }

    #[test]
    fn tokenization_strips_punctuation_and_case() {
        let mut idx = TfIdfIndex::new();
        idx.add_document("Miller-compensation, (nested)!");
        idx.finalize();
        let hits = idx.query("miller compensation nested", 1);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].score > 0.9);
    }
}
