//! The [`DomainLm`] façade: two-stage training (DAPT + SFT) and QA
//! answering — the functional stand-in for Artisan-LLM.

use crate::ngram::NgramLm;
use crate::retrieval::TfIdfIndex;
use crate::tokenizer::BpeTokenizer;
use rand::Rng;

/// An answer produced by the model.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The answer text (the retrieved training answer).
    pub text: String,
    /// Retrieval confidence (cosine similarity of the matched question).
    pub confidence: f64,
    /// Index of the matched QA pair.
    pub matched_pair: usize,
}

/// The domain language model: tokenizer + n-gram LM (DAPT) + retrieval
/// QA head (SFT).
///
/// Training mirrors §3.4's two-step process:
///
/// 1. [`DomainLm::pretrain`] — *domain-adaptive pretraining*: the BPE
///    tokenizer and the n-gram distribution are fitted on the domain
///    corpus. [`DomainLm::perplexity`] before/after quantifies the
///    adaptation.
/// 2. [`DomainLm::fine_tune`] — *supervised fine-tuning*: the DesignQA
///    pairs are indexed; [`DomainLm::answer`] retrieves the best match
///    for a question. With `temperature > 0`, retrieval occasionally
///    picks a lower-ranked document — the noise source behind the
///    paper's non-perfect success rates.
#[derive(Debug, Clone)]
pub struct DomainLm {
    vocab_budget: usize,
    order: usize,
    tokenizer: Option<BpeTokenizer>,
    ngram: Option<NgramLm>,
    qa_index: Option<TfIdfIndex>,
    answers: Vec<String>,
    pretrained_docs: usize,
}

impl DomainLm {
    /// Creates an untrained model with a tokenizer vocabulary budget and
    /// n-gram order.
    pub fn new(vocab_budget: usize, order: usize) -> Self {
        DomainLm {
            vocab_budget,
            order,
            tokenizer: None,
            ngram: None,
            qa_index: None,
            answers: Vec::new(),
            pretrained_docs: 0,
        }
    }

    /// Stage 1 — DAPT: trains the tokenizer and fits the n-gram model on
    /// the domain corpus.
    pub fn pretrain(&mut self, corpus: &[&str]) {
        let tokenizer = BpeTokenizer::train(corpus, self.vocab_budget);
        let mut ngram = NgramLm::new(self.order, tokenizer.vocab_size() + 1);
        for doc in corpus {
            let ids = tokenizer.encode(doc);
            if !ids.is_empty() {
                ngram.observe(&ids);
            }
        }
        self.pretrained_docs = corpus.len();
        self.tokenizer = Some(tokenizer);
        self.ngram = Some(ngram);
    }

    /// Stage 2 — SFT: indexes question→answer pairs and continues n-gram
    /// training on the answer texts.
    ///
    /// # Panics
    ///
    /// Panics if called before [`DomainLm::pretrain`] — the paper's
    /// pipeline order is DAPT then SFT.
    #[allow(clippy::expect_used)] // the documented panic contract above
    pub fn fine_tune(&mut self, qa_pairs: &[(&str, &str)]) {
        let tokenizer = self
            .tokenizer
            .as_ref()
            .expect("pretrain (DAPT) before fine_tune (SFT)");
        let ngram = self.ngram.as_mut().expect("pretrain before fine_tune");
        let mut index = TfIdfIndex::new();
        self.answers.clear();
        for (q, a) in qa_pairs {
            index.add_document(q);
            self.answers.push((*a).to_string());
            let ids = tokenizer.encode(a);
            if !ids.is_empty() {
                ngram.observe(&ids);
            }
        }
        index.finalize();
        self.qa_index = Some(index);
    }

    /// True once both training stages have run.
    pub fn is_trained(&self) -> bool {
        self.tokenizer.is_some() && self.qa_index.is_some()
    }

    /// Number of pretraining documents consumed.
    pub fn pretrained_docs(&self) -> usize {
        self.pretrained_docs
    }

    /// Number of fine-tuning pairs indexed.
    pub fn qa_pairs(&self) -> usize {
        self.answers.len()
    }

    /// Perplexity of held-out text under the DAPT-fitted distribution.
    /// Returns `None` before pretraining or for empty text.
    pub fn perplexity(&self, text: &str) -> Option<f64> {
        let tokenizer = self.tokenizer.as_ref()?;
        let ngram = self.ngram.as_ref()?;
        let ids = tokenizer.encode(text);
        ngram.perplexity(&ids)
    }

    /// Answers a question by retrieval.
    ///
    /// `temperature = 0` always returns the best match. With positive
    /// temperature, the choice among the top matches is softmax-sampled
    /// on `score/temperature` — modelling the generation noise of a real
    /// LLM. Returns `None` when untrained or when nothing matches.
    pub fn answer<R: Rng + ?Sized>(
        &self,
        question: &str,
        temperature: f64,
        rng: &mut R,
    ) -> Option<Answer> {
        let index = self.qa_index.as_ref()?;
        let hits = index.query(question, 5);
        if hits.is_empty() {
            return None;
        }
        let chosen = if temperature <= 0.0 || hits.len() == 1 {
            &hits[0]
        } else {
            let weights: Vec<f64> = hits.iter().map(|h| (h.score / temperature).exp()).collect();
            let total: f64 = weights.iter().sum();
            let mut draw = rng.gen_range(0.0..total);
            let mut pick = hits.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                draw -= w;
                if draw <= 0.0 {
                    pick = i;
                    break;
                }
            }
            &hits[pick]
        };
        Some(Answer {
            text: self.answers[chosen.doc_id].clone(),
            confidence: chosen.score,
            matched_pair: chosen.doc_id,
        })
    }

    /// Generates free text from a seed string (n-gram sampling) — used
    /// for qualitative inspection of what DAPT absorbed.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        seed: &str,
        max_tokens: usize,
        temperature: f64,
        rng: &mut R,
    ) -> Option<String> {
        let tokenizer = self.tokenizer.as_ref()?;
        let ngram = self.ngram.as_ref()?;
        let ids = tokenizer.encode(seed);
        let out = ngram.generate(&ids, max_tokens, temperature, rng);
        Some(tokenizer.decode(&out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const CORPUS: &[&str] = &[
        "the nested miller compensation architecture uses two miller capacitors to control the dominant and non dominant poles",
        "a damping factor control block is a gain stage with a feedback capacitor that damps the complex pole pair",
        "the butterworth methodology sets the pole ratio to one two four for maximal flatness",
    ];

    fn trained() -> DomainLm {
        let mut lm = DomainLm::new(600, 3);
        lm.pretrain(CORPUS);
        lm.fine_tune(&[
            (
                "which architecture suits moderate specs with a small load?",
                "use the nested miller compensation architecture with capacitors cm1 and cm2",
            ),
            (
                "how can the opamp drive a very large capacitive load?",
                "add a damping factor control block and remove the inner miller capacitor",
            ),
            (
                "how should the poles be allocated?",
                "follow the butterworth methodology with gbw to p2 to p3 ratio of one to two to four",
            ),
        ]);
        lm
    }

    #[test]
    fn pipeline_order_is_enforced() {
        let mut lm = DomainLm::new(100, 2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lm.fine_tune(&[("q", "a")]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn greedy_answers_are_correct_retrievals() {
        let lm = trained();
        let mut rng = StdRng::seed_from_u64(0);
        let a = lm
            .answer(
                "what architecture for a small capacitive load?",
                0.0,
                &mut rng,
            )
            .unwrap();
        assert!(a.text.contains("nested miller"), "{}", a.text);
        let a = lm
            .answer(
                "we must drive a huge capacitive load, what now?",
                0.0,
                &mut rng,
            )
            .unwrap();
        assert!(a.text.contains("damping factor"), "{}", a.text);
        let a = lm.answer("pole allocation ratio?", 0.0, &mut rng).unwrap();
        assert!(a.text.contains("butterworth"), "{}", a.text);
    }

    #[test]
    fn dapt_makes_domain_text_more_predictable() {
        // Perplexities are only comparable under one tokenizer: hold the
        // model fixed, vary the text.
        let mut lm = DomainLm::new(600, 3);
        lm.pretrain(CORPUS);
        let in_domain = "the nested miller compensation capacitors control the poles";
        let off_domain = "completely unrelated words about cooking pasta dinners";
        let ppl_in = lm.perplexity(in_domain).unwrap();
        let ppl_off = lm.perplexity(off_domain).unwrap();
        assert!(
            ppl_in < ppl_off / 2.0,
            "in-domain {ppl_in} vs off-domain {ppl_off}"
        );
    }

    #[test]
    fn temperature_injects_retrieval_noise() {
        let lm = trained();
        let mut rng = StdRng::seed_from_u64(7);
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..50 {
            let a = lm
                .answer(
                    "how should the opamp poles and load be handled?",
                    1.0,
                    &mut rng,
                )
                .unwrap();
            distinct.insert(a.matched_pair);
        }
        assert!(distinct.len() > 1, "temperature produced no diversity");
    }

    #[test]
    fn unmatched_question_returns_none() {
        let lm = trained();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(lm.answer("zzz qqq xxx", 0.0, &mut rng).is_none());
    }

    #[test]
    fn untrained_model_answers_none() {
        let lm = DomainLm::new(100, 2);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(lm.answer("anything", 0.0, &mut rng).is_none());
        assert!(!lm.is_trained());
        assert!(lm.perplexity("x").is_none());
    }

    #[test]
    fn generation_produces_domain_text() {
        let lm = trained();
        let mut rng = StdRng::seed_from_u64(3);
        let text = lm.generate("the nested", 12, 0.2, &mut rng).unwrap();
        assert!(text.starts_with("the nested"), "{text}");
        assert!(text.len() > "the nested".len());
    }

    #[test]
    fn counters_report_training_volume() {
        let lm = trained();
        assert!(lm.is_trained());
        assert_eq!(lm.pretrained_docs(), 3);
        assert_eq!(lm.qa_pairs(), 3);
    }
}
