//! Screening soundness under chaos: the pre-simulation ERC screen must
//! stay decision-invisible when stacked under fault injection.
//!
//! The supported production stack is `FaultySim<ScreenedSim<CachedSim<B>>>`
//! — faults outermost (the dice roll above everything), the screen
//! outside the cache (rejected candidates never enter the report
//! cache). These properties pin the two contracts that stacking adds on
//! top of the sim-level soundness suite:
//!
//! 1. screened chaos sessions stay pure functions of their seed
//!    (exact replay, like every other supported stack), and
//! 2. the screen never changes a session's *decisions* — only its
//!    bill. Event traces, outcomes and fault schedules match the
//!    unscreened reference; billed testbed seconds may only shrink.
//!
//! Case count follows `PROPTEST_CASES` (default 256); the CI `chaos`
//! job raises it and sweeps `CHAOS_SEED_OFFSET` so each matrix leg
//! exercises a disjoint seed window.

use artisan_circuit::sample::{mutate_netlist, sample_topology, SampleRanges};
use artisan_circuit::{Netlist, Topology};
use artisan_resilience::{FaultPlan, FaultySim, RetryPolicy, SessionBudget, Supervisor};
use artisan_sim::{CachedSim, ScreenedSim, SimBackend, SimCache, Simulator, Spec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shifts every sampled seed by a per-CI-leg window.
fn offset(seed: u64) -> u64 {
    let leg: u64 = std::env::var("CHAOS_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    seed.wrapping_add(leg.wrapping_mul(1_000_000_007))
}

fn supervisor() -> Supervisor {
    Supervisor::new(
        RetryPolicy {
            max_attempts: 3,
            backoff_base_seconds: 30.0,
            backoff_factor: 2.0,
        },
        SessionBudget {
            max_simulations: 24,
            max_llm_steps: 120,
            max_testbed_seconds: 7200.0,
        },
    )
}

/// The full production stack: faults above, screen outside the cache.
fn screened_stack(plan: FaultPlan) -> FaultySim<ScreenedSim<CachedSim<Simulator>>> {
    let cache = SimCache::shared(256);
    FaultySim::new(
        ScreenedSim::new(CachedSim::new(Simulator::new(), Arc::clone(&cache))).with_cache(cache),
        plan,
    )
}

/// A netlist from the broken neighbourhood of the design space: a legal
/// base put through 1–3 random structural/value mutations.
fn broken_neighbourhood(seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = if rng.gen_bool(0.5) {
        Topology::nmc_example()
    } else {
        sample_topology(&mut rng, &SampleRanges::default(), 10e-12)
    };
    let netlist = base.elaborate().expect("legal base elaborates");
    mutate_netlist(&mut rng, &netlist)
}

proptest! {
    /// Screened chaos sessions are pure functions of their seed:
    /// identical plan + session seed replays to the identical report,
    /// with the screen in the stack.
    #[test]
    fn screened_chaos_sessions_replay_exactly(seed in 0u64..1_000_000, rate in 0.0f64..0.5) {
        let seed = offset(seed);
        let run = || {
            let mut sim = screened_stack(FaultPlan::flaky(seed, rate));
            supervisor().run(&Spec::g1(), &mut sim, seed)
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.success, b.success);
        prop_assert_eq!(a.degraded, b.degraded);
        prop_assert_eq!(a.attempts, b.attempts);
        prop_assert_eq!(a.faults_observed, b.faults_observed);
        prop_assert_eq!(&a.events, &b.events);
        prop_assert_eq!(a.cache_hits, b.cache_hits);
        prop_assert_eq!(a.testbed_seconds, b.testbed_seconds);
    }

    /// The screen never changes what a session *decides* — only what it
    /// pays. Against an unscreened reference with the identical fault
    /// plan, the screened session walks the same event trace to the
    /// same outcome, observes the same faults, and never bills more.
    #[test]
    fn screened_chaos_sessions_match_the_unscreened_schedule(
        seed in 0u64..1_000_000,
        rate in 0.0f64..0.5,
    ) {
        let seed = offset(seed);
        let mut screened = screened_stack(FaultPlan::flaky(seed, rate));
        let a = supervisor().run(&Spec::g1(), &mut screened, seed);
        let mut plain = FaultySim::new(Simulator::new(), FaultPlan::flaky(seed, rate));
        let b = supervisor().run(&Spec::g1(), &mut plain, seed);
        prop_assert_eq!(a.success, b.success);
        prop_assert_eq!(a.degraded, b.degraded);
        prop_assert_eq!(a.attempts, b.attempts);
        prop_assert_eq!(a.faults_observed, b.faults_observed);
        prop_assert_eq!(&a.events, &b.events);
        prop_assert!(
            a.testbed_seconds <= b.testbed_seconds + 1e-9,
            "screened session billed more: {} > {}", a.testbed_seconds, b.testbed_seconds
        );
    }

    /// Per-candidate decision equivalence survives fault injection:
    /// for netlists from the broken neighbourhood, the screened stack
    /// and the bare-cached stack under the identical fault plan agree
    /// call-for-call on accept/reject and on the error itself.
    #[test]
    fn screening_decisions_survive_fault_injection(
        seed in 0u64..100_000,
        rate in 0.0f64..0.6,
    ) {
        let seed = offset(seed);
        let netlist = broken_neighbourhood(seed);
        let plan = FaultPlan::flaky(seed, rate);

        let mut screened = screened_stack(plan.clone());
        let got = screened.analyze_netlist(&netlist);

        let cache = SimCache::shared(256);
        let mut plain = FaultySim::new(CachedSim::new(Simulator::new(), cache), plan);
        let expected = plain.analyze_netlist(&netlist);

        // Same fault dice (call index 0 in both stacks), same inner
        // verdict underneath ⇒ byte-identical decisions.
        prop_assert_eq!(format!("{got:?}"), format!("{expected:?}"));
    }
}
