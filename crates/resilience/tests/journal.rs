//! Crash-recovery property suite for the session write-ahead journal.
//!
//! Two families of properties pin the journal's contract:
//!
//! 1. **Kill/resume**: a session interrupted after *any* number of
//!    checkpointed attempts and resumed on a fresh process produces a
//!    [`SessionReport`] field-identical to the uninterrupted run, with
//!    the backend making exactly the same total number of calls — the
//!    resumed leg re-buys only the un-checkpointed tail, never the
//!    restored prefix.
//! 2. **Corruption**: arbitrary single-byte flips and truncations of
//!    the on-disk journal never panic the loader and never change the
//!    final report — a damaged journal degrades to a (possibly empty)
//!    true prefix of the original, and the resumed session converges
//!    to the same verdict at worst by re-running everything.
//!
//! Case count follows `PROPTEST_CASES` (default 256); the CI `chaos`
//! job raises it and sweeps `CHAOS_SEED_OFFSET` (see `tests/chaos.rs`).

use artisan_resilience::{
    expire_terminal, scan_dir, session_file_name, FaultPlan, FaultySim, JournalRecord, RetryPolicy,
    SessionBudget, SessionJournal, Supervisor,
};
use artisan_sim::{SimBackend, Simulator, Spec};
use proptest::prelude::*;

/// Shifts every sampled seed by a per-CI-leg window.
fn offset(seed: u64) -> u64 {
    let leg: u64 = std::env::var("CHAOS_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    seed.wrapping_add(leg.wrapping_mul(1_000_000_007))
}

fn supervisor() -> Supervisor {
    Supervisor::new(
        RetryPolicy {
            max_attempts: 3,
            backoff_base_seconds: 30.0,
            backoff_factor: 2.0,
        },
        SessionBudget {
            max_simulations: 24,
            max_llm_steps: 120,
            max_testbed_seconds: 7200.0,
        },
    )
}

fn plan(seed: u64, error_rate: f64, nan_rate: f64, dead_on_arrival: bool) -> FaultPlan {
    FaultPlan {
        seed,
        error_rate,
        nan_rate,
        latency_rate: 0.2,
        latency_seconds: 10.0,
        persistent_from: if dead_on_arrival { Some(0) } else { None },
    }
}

/// An arbitrary but fixed plan fingerprint: these tests drive
/// [`SessionJournal`] directly, so only self-consistency matters.
const FP: u64 = 0xA11C_E0DE_CAFE_F00D;

proptest! {
    /// Kill the session after `cut` checkpointed attempts (any cut,
    /// including zero and all-of-them), resume on a fresh backend, and
    /// the report and total backend call count must be identical to the
    /// uninterrupted run.
    #[test]
    fn kill_after_any_attempt_resumes_field_identical(
        seed in 0u64..1_000_000,
        error_rate in 0.0f64..0.6,
        nan_rate in 0.0f64..0.6,
        doa_sel in 0u32..4,
        cut_sel in 0usize..16,
    ) {
        let seed = offset(seed);
        let supervisor = supervisor();
        let spec = Spec::g1();
        let plan = plan(seed, error_rate, nan_rate, doa_sel == 0);

        let mut reference_sim = FaultySim::new(Simulator::new(), plan);
        let mut reference_journal = SessionJournal::in_memory(FP, seed);
        let reference = supervisor.run_journaled_default_agent(
            &spec, &mut reference_sim, seed, &mut reference_journal,
        );
        let reference_calls = reference_sim.calls_made();
        let records: Vec<_> = reference_journal.attempt_records().cloned().collect();
        prop_assert_eq!(records.len(), reference.attempts);

        let cut = cut_sel % (records.len() + 1);
        let mut resumed_journal = SessionJournal::in_memory(FP, seed);
        for record in &records[..cut] {
            resumed_journal
                .append(JournalRecord::Attempt(record.clone()))
                .unwrap_or_else(|e| panic!("in-memory append failed: {e}"));
        }
        let mut resumed_sim = FaultySim::new(Simulator::new(), plan);
        let resumed = supervisor.run_journaled_default_agent(
            &spec, &mut resumed_sim, seed, &mut resumed_journal,
        );

        prop_assert_eq!(&resumed, &reference);
        // The resumed backend's cumulative call counter lands exactly
        // where the uninterrupted run's did: the restored attempts were
        // fast-forwarded, not re-simulated (a mis-resume would re-buy
        // them and overshoot).
        prop_assert_eq!(resumed_sim.calls_made(), reference_calls);
        // And the resumed journal converges to the same record stream.
        prop_assert_eq!(
            resumed_journal.attempt_records().count(),
            records.len()
        );
        prop_assert!(resumed_journal.terminal().is_some());
    }

    /// A journal holding the terminal verdict resumes without a single
    /// backend call — the report comes straight off the journal.
    #[test]
    fn terminal_journal_resumes_for_free(
        seed in 0u64..1_000_000,
        error_rate in 0.0f64..0.6,
        nan_rate in 0.0f64..0.6,
    ) {
        let seed = offset(seed);
        let supervisor = supervisor();
        let spec = Spec::g1();
        let plan = plan(seed, error_rate, nan_rate, false);

        let mut reference_sim = FaultySim::new(Simulator::new(), plan);
        let mut journal = SessionJournal::in_memory(FP, seed);
        let reference = supervisor.run_journaled_default_agent(
            &spec, &mut reference_sim, seed, &mut journal,
        );
        prop_assert!(journal.terminal().is_some());

        let mut resumed_sim = FaultySim::new(Simulator::new(), plan);
        let resumed = supervisor.run_journaled_default_agent(
            &spec, &mut resumed_sim, seed, &mut journal,
        );
        prop_assert_eq!(&resumed, &reference);
        prop_assert_eq!(resumed_sim.calls_made(), 0);
        prop_assert_eq!(resumed_sim.ledger().simulations(), 0);
    }

    /// Flip a byte, cut the tail, or both: the loader must never panic
    /// and never mis-resume. Whatever survives is a true prefix of the
    /// original record stream, so the resumed session always lands on
    /// the uninterrupted run's exact report.
    #[test]
    fn corrupted_journal_never_panics_and_never_changes_the_result(
        seed in 0u64..1_000_000,
        error_rate in 0.0f64..0.6,
        flip_sel in 0u32..4,
        flip_at in 0usize..1_000_000,
        truncate_sel in 0u32..4,
        truncate_at in 0usize..1_000_000,
    ) {
        let seed = offset(seed);
        // 3-in-4 odds each, independently: flip a byte, cut the tail.
        let flip = (flip_sel > 0).then_some(flip_at);
        let truncate = (truncate_sel > 0).then_some(truncate_at);
        let supervisor = supervisor();
        let spec = Spec::g1();
        let plan = plan(seed, error_rate, 0.2, false);
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "artisan-journal-prop-{}-{seed:x}-{:x}.wal",
            std::process::id(),
            flip.unwrap_or(0) ^ truncate.unwrap_or(0).rotate_left(13)
        ));
        std::fs::remove_file(&path).ok();

        let mut reference_sim = FaultySim::new(Simulator::new(), plan);
        let (mut journal, load) = SessionJournal::open(&path, FP, seed);
        prop_assert!(load.warning.is_none());
        let reference = supervisor.run_journaled_default_agent(
            &spec, &mut reference_sim, seed, &mut journal,
        );
        prop_assert!(journal.io_errors().is_empty());

        let mut bytes = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("journal unreadable: {e}"));
        if let Some(at) = flip {
            let at = at % bytes.len();
            bytes[at] ^= 0x41;
        }
        if let Some(at) = truncate {
            bytes.truncate(at % (bytes.len() + 1));
        }
        std::fs::write(&path, &bytes)
            .unwrap_or_else(|e| panic!("cannot write mutated journal: {e}"));

        // Loading must not panic; what it salvages must be a true
        // prefix of the reference stream.
        let (mut damaged, _load) = SessionJournal::open(&path, FP, seed);
        let salvaged = damaged.attempt_records().count();
        prop_assert!(salvaged <= reference.attempts);
        for (a, b) in damaged
            .attempt_records()
            .zip(journal.attempt_records())
        {
            prop_assert_eq!(a, b);
        }

        let mut resumed_sim = FaultySim::new(Simulator::new(), plan);
        let resumed = supervisor.run_journaled_default_agent(
            &spec, &mut resumed_sim, seed, &mut damaged,
        );
        prop_assert_eq!(&resumed, &reference);

        std::fs::remove_file(&path).ok();
    }
}

/// The journal janitor: terminal journals past `max_age` are removed,
/// younger terminal journals and in-progress (non-terminal) journals
/// are always left alone.
#[test]
fn expire_terminal_removes_only_old_terminal_journals() {
    let dir = std::env::temp_dir().join(format!("artisan-janitor-test-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("cannot create scratch dir: {e}"));

    // A finished session: journal holds a terminal verdict.
    let supervisor = supervisor();
    let spec = Spec::g1();
    let plan = plan(7, 0.2, 0.1, false);
    let terminal_path = dir.join(session_file_name(FP, 7));
    let mut sim = FaultySim::new(Simulator::new(), plan);
    let (mut journal, _) = SessionJournal::open(&terminal_path, FP, 7);
    let report = supervisor.run_journaled_default_agent(&spec, &mut sim, 7, &mut journal);
    assert!(journal.terminal().is_some());
    let records: Vec<_> = journal.attempt_records().cloned().collect();
    assert_eq!(records.len(), report.attempts);
    drop(journal);

    // An in-flight session: attempts checkpointed, no terminal verdict.
    let live_path = dir.join(session_file_name(FP, 8));
    let (mut live, _) = SessionJournal::open(&live_path, FP, 8);
    live.append(JournalRecord::Attempt(records[0].clone()))
        .unwrap_or_else(|e| panic!("append failed: {e}"));
    assert!(live.terminal().is_none());
    drop(live);

    // Generous age: nothing is old enough, nothing is touched.
    let kept = expire_terminal(&dir, std::time::Duration::from_secs(1_000_000))
        .unwrap_or_else(|e| panic!("expire failed: {e}"));
    assert_eq!(kept.scanned, 2);
    assert_eq!(kept.terminal, 1);
    assert_eq!(kept.expired, 0);
    assert_eq!(kept.failed, 0);
    assert!(terminal_path.exists());
    assert!(live_path.exists());

    // Zero age: the terminal journal goes, the live one survives.
    let swept = expire_terminal(&dir, std::time::Duration::ZERO)
        .unwrap_or_else(|e| panic!("expire failed: {e}"));
    assert_eq!(swept.scanned, 2);
    assert_eq!(swept.terminal, 1);
    assert_eq!(swept.expired, 1);
    assert_eq!(swept.failed, 0);
    assert!(!terminal_path.exists());
    assert!(live_path.exists());

    // The survivor still scans as a resumable in-flight session.
    let remaining = scan_dir(&dir).unwrap_or_else(|e| panic!("scan failed: {e}"));
    assert_eq!(remaining.len(), 1);
    assert!(!remaining[0].load.terminal);
    assert_eq!(remaining[0].load.attempts_loaded, 1);

    std::fs::remove_dir_all(&dir).ok();
}
