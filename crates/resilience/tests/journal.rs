//! Crash-recovery property suite for the session write-ahead journal.
//!
//! Two families of properties pin the journal's contract:
//!
//! 1. **Kill/resume**: a session interrupted after *any* number of
//!    checkpointed attempts and resumed on a fresh process produces a
//!    [`SessionReport`] field-identical to the uninterrupted run, with
//!    the backend making exactly the same total number of calls — the
//!    resumed leg re-buys only the un-checkpointed tail, never the
//!    restored prefix.
//! 2. **Corruption**: arbitrary single-byte flips and truncations of
//!    the on-disk journal never panic the loader and never change the
//!    final report — a damaged journal degrades to a (possibly empty)
//!    true prefix of the original, and the resumed session converges
//!    to the same verdict at worst by re-running everything.
//!
//! Case count follows `PROPTEST_CASES` (default 256); the CI `chaos`
//! job raises it and sweeps `CHAOS_SEED_OFFSET` (see `tests/chaos.rs`).

use artisan_resilience::{
    FaultPlan, FaultySim, JournalRecord, RetryPolicy, SessionBudget, SessionJournal, Supervisor,
};
use artisan_sim::{SimBackend, Simulator, Spec};
use proptest::prelude::*;

/// Shifts every sampled seed by a per-CI-leg window.
fn offset(seed: u64) -> u64 {
    let leg: u64 = std::env::var("CHAOS_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    seed.wrapping_add(leg.wrapping_mul(1_000_000_007))
}

fn supervisor() -> Supervisor {
    Supervisor::new(
        RetryPolicy {
            max_attempts: 3,
            backoff_base_seconds: 30.0,
            backoff_factor: 2.0,
        },
        SessionBudget {
            max_simulations: 24,
            max_llm_steps: 120,
            max_testbed_seconds: 7200.0,
        },
    )
}

fn plan(seed: u64, error_rate: f64, nan_rate: f64, dead_on_arrival: bool) -> FaultPlan {
    FaultPlan {
        seed,
        error_rate,
        nan_rate,
        latency_rate: 0.2,
        latency_seconds: 10.0,
        persistent_from: if dead_on_arrival { Some(0) } else { None },
    }
}

/// An arbitrary but fixed plan fingerprint: these tests drive
/// [`SessionJournal`] directly, so only self-consistency matters.
const FP: u64 = 0xA11C_E0DE_CAFE_F00D;

proptest! {
    /// Kill the session after `cut` checkpointed attempts (any cut,
    /// including zero and all-of-them), resume on a fresh backend, and
    /// the report and total backend call count must be identical to the
    /// uninterrupted run.
    #[test]
    fn kill_after_any_attempt_resumes_field_identical(
        seed in 0u64..1_000_000,
        error_rate in 0.0f64..0.6,
        nan_rate in 0.0f64..0.6,
        doa_sel in 0u32..4,
        cut_sel in 0usize..16,
    ) {
        let seed = offset(seed);
        let supervisor = supervisor();
        let spec = Spec::g1();
        let plan = plan(seed, error_rate, nan_rate, doa_sel == 0);

        let mut reference_sim = FaultySim::new(Simulator::new(), plan);
        let mut reference_journal = SessionJournal::in_memory(FP, seed);
        let reference = supervisor.run_journaled_default_agent(
            &spec, &mut reference_sim, seed, &mut reference_journal,
        );
        let reference_calls = reference_sim.calls_made();
        let records: Vec<_> = reference_journal.attempt_records().cloned().collect();
        prop_assert_eq!(records.len(), reference.attempts);

        let cut = cut_sel % (records.len() + 1);
        let mut resumed_journal = SessionJournal::in_memory(FP, seed);
        for record in &records[..cut] {
            resumed_journal
                .append(JournalRecord::Attempt(record.clone()))
                .unwrap_or_else(|e| panic!("in-memory append failed: {e}"));
        }
        let mut resumed_sim = FaultySim::new(Simulator::new(), plan);
        let resumed = supervisor.run_journaled_default_agent(
            &spec, &mut resumed_sim, seed, &mut resumed_journal,
        );

        prop_assert_eq!(&resumed, &reference);
        // The resumed backend's cumulative call counter lands exactly
        // where the uninterrupted run's did: the restored attempts were
        // fast-forwarded, not re-simulated (a mis-resume would re-buy
        // them and overshoot).
        prop_assert_eq!(resumed_sim.calls_made(), reference_calls);
        // And the resumed journal converges to the same record stream.
        prop_assert_eq!(
            resumed_journal.attempt_records().count(),
            records.len()
        );
        prop_assert!(resumed_journal.terminal().is_some());
    }

    /// A journal holding the terminal verdict resumes without a single
    /// backend call — the report comes straight off the journal.
    #[test]
    fn terminal_journal_resumes_for_free(
        seed in 0u64..1_000_000,
        error_rate in 0.0f64..0.6,
        nan_rate in 0.0f64..0.6,
    ) {
        let seed = offset(seed);
        let supervisor = supervisor();
        let spec = Spec::g1();
        let plan = plan(seed, error_rate, nan_rate, false);

        let mut reference_sim = FaultySim::new(Simulator::new(), plan);
        let mut journal = SessionJournal::in_memory(FP, seed);
        let reference = supervisor.run_journaled_default_agent(
            &spec, &mut reference_sim, seed, &mut journal,
        );
        prop_assert!(journal.terminal().is_some());

        let mut resumed_sim = FaultySim::new(Simulator::new(), plan);
        let resumed = supervisor.run_journaled_default_agent(
            &spec, &mut resumed_sim, seed, &mut journal,
        );
        prop_assert_eq!(&resumed, &reference);
        prop_assert_eq!(resumed_sim.calls_made(), 0);
        prop_assert_eq!(resumed_sim.ledger().simulations(), 0);
    }

    /// Flip a byte, cut the tail, or both: the loader must never panic
    /// and never mis-resume. Whatever survives is a true prefix of the
    /// original record stream, so the resumed session always lands on
    /// the uninterrupted run's exact report.
    #[test]
    fn corrupted_journal_never_panics_and_never_changes_the_result(
        seed in 0u64..1_000_000,
        error_rate in 0.0f64..0.6,
        flip_sel in 0u32..4,
        flip_at in 0usize..1_000_000,
        truncate_sel in 0u32..4,
        truncate_at in 0usize..1_000_000,
    ) {
        let seed = offset(seed);
        // 3-in-4 odds each, independently: flip a byte, cut the tail.
        let flip = (flip_sel > 0).then_some(flip_at);
        let truncate = (truncate_sel > 0).then_some(truncate_at);
        let supervisor = supervisor();
        let spec = Spec::g1();
        let plan = plan(seed, error_rate, 0.2, false);
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "artisan-journal-prop-{}-{seed:x}-{:x}.wal",
            std::process::id(),
            flip.unwrap_or(0) ^ truncate.unwrap_or(0).rotate_left(13)
        ));
        std::fs::remove_file(&path).ok();

        let mut reference_sim = FaultySim::new(Simulator::new(), plan);
        let (mut journal, load) = SessionJournal::open(&path, FP, seed);
        prop_assert!(load.warning.is_none());
        let reference = supervisor.run_journaled_default_agent(
            &spec, &mut reference_sim, seed, &mut journal,
        );
        prop_assert!(journal.io_errors().is_empty());

        let mut bytes = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("journal unreadable: {e}"));
        if let Some(at) = flip {
            let at = at % bytes.len();
            bytes[at] ^= 0x41;
        }
        if let Some(at) = truncate {
            bytes.truncate(at % (bytes.len() + 1));
        }
        std::fs::write(&path, &bytes)
            .unwrap_or_else(|e| panic!("cannot write mutated journal: {e}"));

        // Loading must not panic; what it salvages must be a true
        // prefix of the reference stream.
        let (mut damaged, _load) = SessionJournal::open(&path, FP, seed);
        let salvaged = damaged.attempt_records().count();
        prop_assert!(salvaged <= reference.attempts);
        for (a, b) in damaged
            .attempt_records()
            .zip(journal.attempt_records())
        {
            prop_assert_eq!(a, b);
        }

        let mut resumed_sim = FaultySim::new(Simulator::new(), plan);
        let resumed = supervisor.run_journaled_default_agent(
            &spec, &mut resumed_sim, seed, &mut damaged,
        );
        prop_assert_eq!(&resumed, &reference);

        std::fs::remove_file(&path).ok();
    }
}
