//! Chaos suite: supervised sessions under randomized fault plans.
//!
//! Each property samples a fault plan and runs a full supervised design
//! session against it. The invariants are the crate's contract:
//!
//! 1. the session never panics (any panic fails the test),
//! 2. it stops within its budget (pre-flight enforcement),
//! 3. `success` and `degraded` are truthful — `success` implies a
//!    finite, stable, spec-clearing report; `degraded` implies a
//!    best-so-far outcome without success,
//! 4. a NaN/∞-poisoned backend can never produce `success = true`.
//!
//! Case count follows `PROPTEST_CASES` (default 256); the CI `chaos`
//! job raises it and sweeps `CHAOS_SEED_OFFSET` so each matrix leg
//! exercises a disjoint window of fault-plan seeds.

use artisan_math::ThreadPool;
use artisan_resilience::{
    FaultPlan, FaultySim, RetryPolicy, Scheduler, SessionBudget, SessionReport, Supervisor,
};
use artisan_sim::{CachedSim, SimCache, Simulator, Spec};
use proptest::prelude::*;

/// Shifts every sampled seed by a per-CI-leg window.
fn offset(seed: u64) -> u64 {
    let leg: u64 = std::env::var("CHAOS_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    seed.wrapping_add(leg.wrapping_mul(1_000_000_007))
}

fn supervisor() -> Supervisor {
    Supervisor::new(
        RetryPolicy {
            max_attempts: 3,
            backoff_base_seconds: 30.0,
            backoff_factor: 2.0,
        },
        SessionBudget {
            max_simulations: 24,
            max_llm_steps: 120,
            max_testbed_seconds: 7200.0,
        },
    )
}

proptest! {
    #[test]
    fn chaos_sessions_respect_budget_and_report_truthfully(
        seed in 0u64..1_000_000,
        error_rate in 0.0f64..0.6,
        nan_rate in 0.0f64..0.6,
        latency_rate in 0.0f64..0.5,
    ) {
        let seed = offset(seed);
        let plan = FaultPlan {
            seed,
            error_rate,
            nan_rate,
            latency_rate,
            latency_seconds: 15.0,
            persistent_from: None,
        };
        let mut sim = FaultySim::new(Simulator::new(), plan);
        let sup = supervisor();
        let report = sup.run(&Spec::g1(), &mut sim, seed);

        // (2) budget: the pre-flight projection makes these hard caps.
        prop_assert!(report.simulations <= sup.budget.max_simulations);
        prop_assert!(report.llm_steps <= sup.budget.max_llm_steps);
        prop_assert!(report.attempts <= sup.retry.max_attempts);

        // (3) truthfulness.
        prop_assert!(!(report.success && report.degraded));
        if report.success {
            let validated = report.outcome.as_ref().and_then(|o| o.report.as_ref());
            prop_assert!(validated.is_some());
            if let Some(r) = validated {
                prop_assert!(r.performance.is_finite());
                prop_assert!(r.stable);
                prop_assert!(Spec::g1().check(&r.performance).success());
            }
        }
        if report.degraded {
            prop_assert!(report.outcome.is_some());
        }
        // A kept report is always sanitized, success or not.
        if let Some(r) = report.outcome.as_ref().and_then(|o| o.report.as_ref()) {
            prop_assert!(r.performance.is_finite());
        }
    }

    /// (4) the adversarial case: every report poisoned to +∞/NaN.
    #[test]
    fn poisoned_sessions_never_report_success(seed in 0u64..1_000_000) {
        let seed = offset(seed);
        let mut sim = FaultySim::new(Simulator::new(), FaultPlan::poisoned(seed));
        let report = supervisor().run(&Spec::g1(), &mut sim, seed);
        prop_assert!(!report.success, "poisoned session claimed success: {report}");
        if let Some(r) = report.outcome.as_ref().and_then(|o| o.report.as_ref()) {
            prop_assert!(r.performance.is_finite(), "poisoned report leaked: {}", r.performance);
        }
    }

    /// Persistent outages: the session must stop on retries or budget,
    /// never loop, and never claim success once the outage starts at
    /// call zero.
    #[test]
    fn outage_sessions_stop_cleanly(seed in 0u64..1_000_000, from in 0u64..6) {
        let seed = offset(seed);
        let mut sim = FaultySim::new(Simulator::new(), FaultPlan::outage_from(seed, from));
        let sup = supervisor();
        let report = sup.run(&Spec::g1(), &mut sim, seed);
        prop_assert!(report.simulations <= sup.budget.max_simulations);
        prop_assert!(report.llm_steps <= sup.budget.max_llm_steps);
        prop_assert!(report.attempts <= sup.retry.max_attempts);
        if from == 0 {
            prop_assert!(!report.success, "no call ever succeeded, yet: {report}");
        }
    }

    /// The scheduler is a pure fan-out: a batch of flaky supervised
    /// sessions produces field-identical [`SessionReport`]s at every
    /// worker count (the `ARTISAN_THREADS` contract), and each session
    /// matches a solo [`Supervisor::run`] with the same derived seed
    /// against an identically-faulted backend.
    #[test]
    fn scheduled_batches_are_identical_for_any_worker_count(
        seed in 0u64..1_000_000,
        rate in 0.0f64..0.5,
        n_sessions in 1usize..5,
    ) {
        let seed = offset(seed);
        let backends = |n: usize| -> Vec<FaultySim<Simulator>> {
            (0..n)
                .map(|k| {
                    let plan = FaultPlan::flaky(seed.wrapping_add(k as u64), rate);
                    FaultySim::new(Simulator::new(), plan)
                })
                .collect()
        };
        let batch = |workers: usize| {
            Scheduler::with_pool(supervisor(), ThreadPool::with_workers(workers))
                .run_batch(&Spec::g1(), backends(n_sessions), seed)
        };
        let same = |a: &SessionReport, b: &SessionReport| -> bool {
            a.success == b.success
                && a.degraded == b.degraded
                && a.attempts == b.attempts
                && a.simulations == b.simulations
                && a.llm_steps == b.llm_steps
                && a.faults_observed == b.faults_observed
                && a.events == b.events
                && a.testbed_seconds == b.testbed_seconds
        };
        let solo = batch(1);
        for workers in [2usize, 4, 8] {
            let many = batch(workers);
            prop_assert_eq!(many.len(), solo.len());
            for (a, b) in solo.iter().zip(&many) {
                prop_assert_eq!(a.session, b.session);
                prop_assert_eq!(a.seed, b.seed);
                prop_assert!(same(&a.report, &b.report), "workers = {}, session = {}", workers, a.session);
            }
        }
        // Cross-check against solo supervised runs with the derived seeds.
        for (k, (scheduled, mut backend)) in solo.iter().zip(backends(n_sessions)).enumerate() {
            let session_seed = Scheduler::session_seed(seed, k);
            prop_assert_eq!(scheduled.seed, session_seed);
            let reference = supervisor().run(&Spec::g1(), &mut backend, session_seed);
            prop_assert!(same(&scheduled.report, &reference), "session = {}", k);
        }
    }

    /// Sessions are pure functions of their seeds: identical plan +
    /// session seed replays to the identical report.
    #[test]
    fn chaos_sessions_replay_exactly(seed in 0u64..1_000_000, rate in 0.0f64..0.5) {
        let seed = offset(seed);
        let run = || {
            let mut sim = FaultySim::new(Simulator::new(), FaultPlan::flaky(seed, rate));
            supervisor().run(&Spec::g1(), &mut sim, seed)
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.success, b.success);
        prop_assert_eq!(a.degraded, b.degraded);
        prop_assert_eq!(a.attempts, b.attempts);
        prop_assert_eq!(a.faults_observed, b.faults_observed);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.testbed_seconds, b.testbed_seconds);
    }

    /// The supported cache stacking — `FaultySim<CachedSim<B>>` — keeps
    /// sessions exact-replayable: the fault dice roll *above* the
    /// cache, so hits below never shift the schedule, and with a fresh
    /// per-run cache the hit/miss ledger split is itself a pure
    /// function of the seed. The cached session must also walk the same
    /// event trace as the uncached one.
    #[test]
    fn cached_chaos_sessions_replay_exactly(seed in 0u64..1_000_000, rate in 0.0f64..0.5) {
        let seed = offset(seed);
        let run = || {
            let mut sim = FaultySim::new(
                CachedSim::new(Simulator::new(), SimCache::shared(256)),
                FaultPlan::flaky(seed, rate),
            );
            supervisor().run(&Spec::g1(), &mut sim, seed)
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.success, b.success);
        prop_assert_eq!(a.degraded, b.degraded);
        prop_assert_eq!(a.attempts, b.attempts);
        prop_assert_eq!(a.faults_observed, b.faults_observed);
        prop_assert_eq!(&a.events, &b.events);
        prop_assert_eq!(a.cache_hits, b.cache_hits);
        prop_assert_eq!(a.testbed_seconds, b.testbed_seconds);
        // Same fault schedule and decisions as the uncached session;
        // only the billed seconds may differ (hits bill retrieval).
        let mut plain = FaultySim::new(Simulator::new(), FaultPlan::flaky(seed, rate));
        let reference = supervisor().run(&Spec::g1(), &mut plain, seed);
        prop_assert_eq!(a.success, reference.success);
        prop_assert_eq!(a.attempts, reference.attempts);
        prop_assert_eq!(a.faults_observed, reference.faults_observed);
        prop_assert_eq!(&a.events, &reference.events);
    }

    /// The full production stack — `FaultySim<CornerSim<CachedSim<B>>>`,
    /// faults outermost, corners outside the report cache — keeps chaos
    /// sessions exact-replayable: `CornerSim` makes exactly one inner
    /// call per outer call, so the fault dice advance identically and
    /// the whole session is a pure function of its seeds.
    #[test]
    fn cornered_chaos_sessions_replay_exactly(seed in 0u64..1_000_000, rate in 0.0f64..0.5) {
        use artisan_sim::{CornerGrid, CornerSim};
        let seed = offset(seed);
        let run = || {
            let mut sim = FaultySim::new(
                CornerSim::new(
                    CachedSim::new(Simulator::new(), SimCache::shared(256)),
                    CornerGrid::default(),
                ),
                FaultPlan::flaky(seed, rate),
            );
            let report = supervisor().run(&Spec::g1(), &mut sim, seed);
            (report, *artisan_sim::SimBackend::ledger(&sim))
        };
        let ((a, la), (b, lb)) = (run(), run());
        prop_assert_eq!(a.success, b.success);
        prop_assert_eq!(a.degraded, b.degraded);
        prop_assert_eq!(a.attempts, b.attempts);
        prop_assert_eq!(a.faults_observed, b.faults_observed);
        prop_assert_eq!(&a.events, &b.events);
        prop_assert_eq!(a.cache_hits, b.cache_hits);
        prop_assert_eq!(a.testbed_seconds, b.testbed_seconds);
        prop_assert_eq!(la, lb);
    }

    /// A nominal-only corner grid in the full stack is observationally
    /// inert under chaos: the session walks the same event trace with
    /// the same outcomes and fault schedule as the plain
    /// `FaultySim<CachedSim<B>>` stack, and every billed second is
    /// conserved — the ledgers differ *only* in the corner-sim and
    /// verdict-cache-hit accounts, so the testbed-time delta equals
    /// exactly what the corner layer billed.
    #[test]
    fn nominal_cornered_stack_matches_plain_and_conserves_billing(
        seed in 0u64..1_000_000,
        rate in 0.0f64..0.5,
    ) {
        use artisan_sim::cost::CostModel;
        use artisan_sim::{CornerGrid, CornerSim, SimBackend};
        let seed = offset(seed);
        let mut cornered = FaultySim::new(
            CornerSim::new(
                CachedSim::new(Simulator::new(), SimCache::shared(256)),
                CornerGrid::nominal(),
            ),
            FaultPlan::flaky(seed, rate),
        );
        let with_corners = supervisor().run(&Spec::g1(), &mut cornered, seed);
        let mut plain = FaultySim::new(
            CachedSim::new(Simulator::new(), SimCache::shared(256)),
            FaultPlan::flaky(seed, rate),
        );
        let without = supervisor().run(&Spec::g1(), &mut plain, seed);

        // Non-corner observables are untouched.
        prop_assert_eq!(with_corners.success, without.success);
        prop_assert_eq!(with_corners.degraded, without.degraded);
        prop_assert_eq!(with_corners.attempts, without.attempts);
        prop_assert_eq!(with_corners.faults_observed, without.faults_observed);
        prop_assert_eq!(&with_corners.events, &without.events);

        // Every non-corner ledger account matches call for call; the
        // corner layer may only *add* corner sims and verdict-cache
        // hits, and the billed-time delta is exactly their price.
        let (lc, lp) = (SimBackend::ledger(&cornered), SimBackend::ledger(&plain));
        prop_assert_eq!(lc.simulations(), lp.simulations());
        prop_assert_eq!(lc.llm_steps(), lp.llm_steps());
        prop_assert_eq!(lc.penalty_seconds(), lp.penalty_seconds());
        prop_assert!(lc.cache_hits() >= lp.cache_hits());
        let model = CostModel::default();
        let expected = lc.corner_sims() as f64 * model.seconds_per_corner_sim
            + (lc.cache_hits() - lp.cache_hits()) as f64 * model.seconds_per_cache_hit;
        let delta = lc.testbed_seconds(&model) - lp.testbed_seconds(&model);
        prop_assert!(
            (delta - expected).abs() < 1e-9,
            "billed seconds not conserved: delta {} expected {}", delta, expected
        );
    }

    /// Persistence keeps chaos sessions exact: a session warm-started
    /// from a snapshot of a prior identical session's cache walks the
    /// same event trace with the same outcomes, observes the same
    /// faults (the dice roll above the cache), and bills no more
    /// testbed time than the cold run — the snapshot round-trip can
    /// change billing only in the cheaper direction.
    #[test]
    fn snapshot_warm_started_chaos_sessions_stay_exact(
        seed in 0u64..1_000_000,
        rate in 0.0f64..0.5,
        salt in 0u64..1_000,
    ) {
        let seed = offset(seed);
        let run = |cache: std::sync::Arc<SimCache>| {
            let mut sim = FaultySim::new(
                CachedSim::new(Simulator::new(), cache),
                FaultPlan::flaky(seed, rate),
            );
            supervisor().run(&Spec::g1(), &mut sim, seed)
        };
        let cold_cache = SimCache::shared(256);
        let cold = run(std::sync::Arc::clone(&cold_cache));
        // Snapshot → bytes → fresh cache, as a second process would.
        let bytes = cold_cache.snapshot_bytes(salt);
        let (warm_cache, outcome) = SimCache::from_snapshot_bytes(&bytes, 256, salt);
        prop_assert!(outcome.warning.is_none(), "{:?}", outcome.warning);
        prop_assert_eq!(outcome.entries_loaded, cold_cache.len());
        let warm = run(std::sync::Arc::new(warm_cache));
        prop_assert_eq!(cold.success, warm.success);
        prop_assert_eq!(cold.degraded, warm.degraded);
        prop_assert_eq!(cold.attempts, warm.attempts);
        prop_assert_eq!(cold.faults_observed, warm.faults_observed);
        prop_assert_eq!(&cold.events, &warm.events);
        // Warm start can only convert simulations into hits.
        prop_assert!(warm.simulations <= cold.simulations);
        prop_assert!(warm.cache_hits >= cold.cache_hits);
        prop_assert!(warm.testbed_seconds <= cold.testbed_seconds + 1e-9,
            "warm {} > cold {}", warm.testbed_seconds, cold.testbed_seconds);
    }
}
