//! Multi-session scheduling: N supervised sessions over a thread pool.
//!
//! A [`Scheduler`] fans a batch of supervised design sessions out over
//! an [`artisan_math::ThreadPool`]. Each session gets its own backend
//! from the caller-supplied pool of [`ParallelSimBackend`]s — so every
//! session's cost ledger is isolated, exactly as if it had run alone —
//! plus its own seed derived from the batch seed and its session index.
//!
//! Determinism is load-bearing: session `k` always receives seed
//! [`Scheduler::session_seed`]`(base_seed, k)` and backend `k`, the
//! thread pool restores input order, and no state is shared between
//! sessions. A batch therefore produces *identical* [`SessionReport`]s
//! for any worker count, including the `ARTISAN_THREADS=1` sequential
//! fallback — the chaos suite pins this.

use crate::journal::{
    agent_config_salt, plan_fingerprint, session_file_name, JournalOutcome, SessionJournal,
};
use crate::supervisor::{SessionReport, Supervisor};
use artisan_agents::{AgentConfig, ArtisanAgent};
use artisan_math::ThreadPool;
use artisan_sim::{ParallelSimBackend, Spec};
use std::path::Path;
use std::sync::{Mutex, PoisonError};

/// One scheduled session's result: the report plus the session's own
/// backend, handed back so callers can inspect its isolated ledger.
#[derive(Debug)]
pub struct ScheduledSession<B> {
    /// 0-based session index (stable across worker counts).
    pub session: usize,
    /// The seed this session ran with.
    pub seed: u64,
    /// The supervised session's report.
    pub report: SessionReport,
    /// The backend the session ran against, with its final ledger.
    pub backend: B,
}

/// A journaled batch: the sessions plus what each session's journal
/// observed (resume state, appended bytes, swallowed disk errors).
#[derive(Debug)]
pub struct JournaledBatch<B> {
    /// The plan fingerprint every session's journal file is keyed by.
    pub plan_fingerprint: u64,
    /// The scheduled sessions, in backend order.
    pub sessions: Vec<ScheduledSession<B>>,
    /// Per-session journal outcome, parallel to
    /// [`JournaledBatch::sessions`].
    pub journals: Vec<JournalOutcome>,
}

impl<B> JournaledBatch<B> {
    /// Sessions whose journal already held a terminal verdict (no work
    /// re-run, report restored from disk).
    pub fn resumed_terminal(&self) -> usize {
        self.journals.iter().filter(|j| j.load.terminal).count()
    }

    /// Completed attempts restored across the batch (work the crash
    /// did not lose).
    pub fn attempts_restored(&self) -> usize {
        self.journals.iter().map(|j| j.load.attempts_loaded).sum()
    }

    /// Every journal warning (rejected/truncated files) and swallowed
    /// disk error, with the session index it belongs to.
    pub fn warnings(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for (k, j) in self.journals.iter().enumerate() {
            if let Some(w) = &j.load.warning {
                out.push((k, w.clone()));
            }
            for e in &j.io_errors {
                out.push((k, format!("journal write failed: {e}")));
            }
        }
        out
    }
}

/// Runs batches of supervised sessions concurrently.
///
/// # Example
///
/// ```
/// use artisan_resilience::Scheduler;
/// use artisan_sim::{Simulator, Spec};
///
/// let scheduler = Scheduler::default();
/// let backends = (0..3).map(|_| Simulator::new()).collect();
/// let sessions = scheduler.run_batch(&Spec::g1(), backends, 7);
/// assert_eq!(sessions.len(), 3);
/// assert!(sessions.iter().all(|s| s.report.success));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Scheduler {
    /// The per-session retry/budget policy.
    pub supervisor: Supervisor,
    pool: ThreadPool,
}

/// Uncontended by construction — exactly one worker touches each cell —
/// so a poisoned lock only means a previous session panicked, and the
/// panic is already propagating through the pool join.
fn lock<B>(cell: &Mutex<B>) -> std::sync::MutexGuard<'_, B> {
    cell.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Scheduler {
    /// A scheduler over the environment-sized thread pool
    /// (`ARTISAN_THREADS`, see [`ThreadPool::from_env`]).
    pub fn new(supervisor: Supervisor) -> Self {
        Scheduler {
            supervisor,
            pool: ThreadPool::from_env(),
        }
    }

    /// A scheduler with an explicit thread pool (tests pin worker
    /// counts through this).
    pub fn with_pool(supervisor: Supervisor, pool: ThreadPool) -> Self {
        Scheduler { supervisor, pool }
    }

    /// The thread pool sessions are fanned out over.
    pub fn pool(&self) -> ThreadPool {
        self.pool
    }

    /// The seed session `k` of a batch runs with: a fixed bijective mix
    /// of the batch seed and the session index, independent of worker
    /// count and scheduling order.
    pub fn session_seed(base_seed: u64, session: usize) -> u64 {
        base_seed ^ (session as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Runs one supervised session per backend, each with a fresh
    /// untrained noiseless agent — the chaos-testing entry point,
    /// mirroring [`Supervisor::run`]. Results come back in backend
    /// order regardless of worker count.
    pub fn run_batch<B: ParallelSimBackend>(
        &self,
        spec: &Spec,
        backends: Vec<B>,
        base_seed: u64,
    ) -> Vec<ScheduledSession<B>> {
        self.run_batch_inner(spec, backends, base_seed, || {
            ArtisanAgent::untrained(AgentConfig::noiseless())
        })
    }

    /// Like [`Scheduler::run_batch`], but every session runs a clone of
    /// the caller's (possibly trained) agent — mirroring
    /// [`Supervisor::run_with_agent`].
    pub fn run_batch_with_agent<B: ParallelSimBackend>(
        &self,
        agent: &ArtisanAgent,
        spec: &Spec,
        backends: Vec<B>,
        base_seed: u64,
    ) -> Vec<ScheduledSession<B>> {
        self.run_batch_inner(spec, backends, base_seed, || agent.clone())
    }

    /// Like [`Scheduler::run_batch`], but crash-safe: each session
    /// keeps a write-ahead journal under `dir`, named
    /// [`session_file_name`]`(fingerprint, session_seed)`. Re-running
    /// the same batch against the same `dir` after a crash *is* the
    /// recovery protocol — deterministic file names mean every session
    /// reopens its predecessor's journal, fast-forwards past journaled
    /// attempts, and sessions that already reached a terminal verdict
    /// return the recorded report without touching their backend.
    ///
    /// `extra_salt` folds anything beyond `(spec, supervisor, agent
    /// config)` that changes session behaviour into the plan
    /// fingerprint — pass [`crate::fault::FaultPlan::fingerprint`] when
    /// backends inject faults, 0 otherwise. The composition matches
    /// [`crate::journal::faulted_plan_fingerprint`].
    pub fn run_batch_journaled<B: ParallelSimBackend>(
        &self,
        spec: &Spec,
        backends: Vec<B>,
        base_seed: u64,
        dir: &Path,
        extra_salt: u64,
    ) -> JournaledBatch<B> {
        self.run_batch_journaled_inner(spec, backends, base_seed, dir, extra_salt, || {
            ArtisanAgent::untrained(AgentConfig::noiseless())
        })
    }

    /// [`Scheduler::run_batch_journaled`] with a clone of the caller's
    /// (possibly trained) agent per session.
    pub fn run_batch_journaled_with_agent<B: ParallelSimBackend>(
        &self,
        agent: &ArtisanAgent,
        spec: &Spec,
        backends: Vec<B>,
        base_seed: u64,
        dir: &Path,
        extra_salt: u64,
    ) -> JournaledBatch<B> {
        self.run_batch_journaled_inner(spec, backends, base_seed, dir, extra_salt, || agent.clone())
    }

    fn run_batch_journaled_inner<B, F>(
        &self,
        spec: &Spec,
        backends: Vec<B>,
        base_seed: u64,
        dir: &Path,
        extra_salt: u64,
        make_agent: F,
    ) -> JournaledBatch<B>
    where
        B: ParallelSimBackend,
        F: Fn() -> ArtisanAgent + Sync,
    {
        let config = make_agent().config();
        let fingerprint = plan_fingerprint(
            spec,
            &self.supervisor,
            agent_config_salt(&config) ^ extra_salt.rotate_left(17),
        );
        let cells: Vec<Mutex<B>> = backends.into_iter().map(Mutex::new).collect();
        let results: Vec<(SessionReport, JournalOutcome)> =
            self.pool.par_map_indexed(&cells, |k, cell| {
                let mut agent = make_agent();
                let seed = Self::session_seed(base_seed, k);
                let path = dir.join(session_file_name(fingerprint, seed));
                let (mut journal, load) = SessionJournal::open(&path, fingerprint, seed);
                let mut backend = lock(cell);
                let report = self.supervisor.run_journaled(
                    &mut agent,
                    spec,
                    &mut *backend,
                    seed,
                    &mut journal,
                );
                let outcome = JournalOutcome {
                    path,
                    load,
                    appends: journal.appends(),
                    bytes_written: journal.bytes_written(),
                    encoded_len: journal.encoded_len(),
                    io_errors: journal.io_errors().to_vec(),
                };
                (report, outcome)
            });
        let mut sessions = Vec::with_capacity(cells.len());
        let mut journals = Vec::with_capacity(cells.len());
        for (k, (cell, (report, outcome))) in cells.into_iter().zip(results).enumerate() {
            sessions.push(ScheduledSession {
                session: k,
                seed: Self::session_seed(base_seed, k),
                report,
                backend: cell.into_inner().unwrap_or_else(PoisonError::into_inner),
            });
            journals.push(outcome);
        }
        JournaledBatch {
            plan_fingerprint: fingerprint,
            sessions,
            journals,
        }
    }

    fn run_batch_inner<B, F>(
        &self,
        spec: &Spec,
        backends: Vec<B>,
        base_seed: u64,
        make_agent: F,
    ) -> Vec<ScheduledSession<B>>
    where
        B: ParallelSimBackend,
        F: Fn() -> ArtisanAgent + Sync,
    {
        let cells: Vec<Mutex<B>> = backends.into_iter().map(Mutex::new).collect();
        let reports: Vec<SessionReport> = self.pool.par_map_indexed(&cells, |k, cell| {
            let mut agent = make_agent();
            let mut backend = lock(cell);
            self.supervisor.run_with_agent(
                &mut agent,
                spec,
                &mut *backend,
                Self::session_seed(base_seed, k),
            )
        });
        cells
            .into_iter()
            .zip(reports)
            .enumerate()
            .map(|(k, (cell, report))| ScheduledSession {
                session: k,
                seed: Self::session_seed(base_seed, k),
                report,
                backend: cell.into_inner().unwrap_or_else(PoisonError::into_inner),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultySim};
    use artisan_sim::{SimBackend, Simulator};

    fn field_equal(a: &SessionReport, b: &SessionReport) -> bool {
        a.success == b.success
            && a.degraded == b.degraded
            && a.attempts == b.attempts
            && a.faults_observed == b.faults_observed
            && a.events == b.events
            && a.simulations == b.simulations
            && a.llm_steps == b.llm_steps
            && a.testbed_seconds == b.testbed_seconds
    }

    #[test]
    fn batch_over_clean_backends_all_succeed_in_order() {
        let scheduler = Scheduler::with_pool(Supervisor::default(), ThreadPool::with_workers(4));
        let backends: Vec<Simulator> = (0..6).map(|_| Simulator::new()).collect();
        let sessions = scheduler.run_batch(&Spec::g1(), backends, 11);
        assert_eq!(sessions.len(), 6);
        for (k, s) in sessions.iter().enumerate() {
            assert_eq!(s.session, k);
            assert_eq!(s.seed, Scheduler::session_seed(11, k));
            assert!(s.report.success, "session {k}: {}", s.report);
        }
    }

    #[test]
    fn each_session_matches_a_solo_supervisor_run() {
        // Ledger isolation: a scheduled session must be byte-for-byte
        // the session a lone Supervisor would run with the same seed
        // and its own fresh backend.
        let supervisor = Supervisor::default();
        let scheduler = Scheduler::with_pool(supervisor, ThreadPool::with_workers(3));
        let backends: Vec<Simulator> = (0..4).map(|_| Simulator::new()).collect();
        let sessions = scheduler.run_batch(&Spec::g1(), backends, 42);
        for s in &sessions {
            let mut solo_sim = Simulator::new();
            let solo = supervisor.run(&Spec::g1(), &mut solo_sim, s.seed);
            assert!(field_equal(&s.report, &solo), "session {}", s.session);
            assert_eq!(
                s.backend.ledger().simulations(),
                solo_sim.ledger().simulations()
            );
        }
    }

    #[test]
    fn batch_is_identical_for_any_worker_count() {
        let run = |workers| {
            let scheduler =
                Scheduler::with_pool(Supervisor::default(), ThreadPool::with_workers(workers));
            let backends: Vec<FaultySim<Simulator>> = (0..5)
                .map(|k| FaultySim::new(Simulator::new(), FaultPlan::flaky(k, 0.3)))
                .collect();
            scheduler.run_batch(&Spec::g1(), backends, 99)
        };
        let baseline = run(1);
        for workers in [2, 4, 8] {
            let batch = run(workers);
            assert_eq!(batch.len(), baseline.len());
            for (a, b) in batch.iter().zip(&baseline) {
                assert!(
                    field_equal(&a.report, &b.report),
                    "workers {workers}, session {}",
                    a.session
                );
            }
        }
    }

    #[test]
    fn session_seeds_are_distinct_within_a_batch() {
        let seeds: Vec<u64> = (0..64).map(|k| Scheduler::session_seed(7, k)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len());
    }

    #[test]
    fn empty_batch_is_fine() {
        let scheduler = Scheduler::default();
        let sessions = scheduler.run_batch(&Spec::g1(), Vec::<Simulator>::new(), 0);
        assert!(sessions.is_empty());
    }

    #[test]
    fn shared_cache_across_sessions_cuts_billed_time() {
        // One Arc<SimCache> behind every session's CachedSim: later
        // sessions re-use earlier sessions' analyses. One worker pins
        // the session order so the hit/miss ledger split (and therefore
        // the per-session billed seconds) is deterministic.
        use artisan_sim::{CachedSim, SimCache};
        let scheduler = Scheduler::with_pool(Supervisor::default(), ThreadPool::with_workers(1));
        let plain: Vec<Simulator> = (0..4).map(|_| Simulator::new()).collect();
        let baseline = scheduler.run_batch(&Spec::g1(), plain, 17);
        let cache = SimCache::shared(512);
        let cached_backends: Vec<CachedSim<Simulator>> = (0..4)
            .map(|_| CachedSim::new(Simulator::new(), std::sync::Arc::clone(&cache)))
            .collect();
        let cached = scheduler.run_batch(&Spec::g1(), cached_backends, 17);
        for (a, b) in cached.iter().zip(&baseline) {
            assert_eq!(a.report.success, b.report.success, "session {}", a.session);
            let perf = |r: &SessionReport| {
                r.outcome
                    .as_ref()
                    .and_then(|o| o.report.as_ref())
                    .map(|rep| rep.performance)
            };
            assert_eq!(
                perf(&a.report),
                perf(&b.report),
                "session {}: cache changed the design",
                a.session
            );
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "no cross-session reuse: {stats}");
        let cold: f64 = baseline.iter().map(|s| s.report.testbed_seconds).sum();
        let warm: f64 = cached.iter().map(|s| s.report.testbed_seconds).sum();
        assert!(warm < cold, "warm batch {warm}s >= cold batch {cold}s");
        let total_hits: usize = cached.iter().map(|s| s.report.cache_hits).sum();
        assert_eq!(total_hits as u64, stats.hits);
    }

    #[test]
    fn concurrent_shared_cache_sessions_conserve_accounting() {
        // Multi-worker sharing: the hit/miss/coalesced split across
        // sessions is timing-dependent, but the conservation laws are
        // not — designs match the uncached baseline, every session
        // ledger line sums to the cache's global counters, and the
        // batch never bills more than the cold baseline.
        use artisan_sim::{CachedSim, SimCache};
        const SESSIONS: usize = 6;
        let scheduler = Scheduler::with_pool(Supervisor::default(), ThreadPool::with_workers(4));
        let plain: Vec<Simulator> = (0..SESSIONS).map(|_| Simulator::new()).collect();
        let baseline = scheduler.run_batch(&Spec::g1(), plain, 23);
        let cache = SimCache::shared(512);
        let cached_backends: Vec<CachedSim<Simulator>> = (0..SESSIONS)
            .map(|_| CachedSim::new(Simulator::new(), std::sync::Arc::clone(&cache)))
            .collect();
        let cached = scheduler.run_batch(&Spec::g1(), cached_backends, 23);
        let perf = |r: &SessionReport| {
            r.outcome
                .as_ref()
                .and_then(|o| o.report.as_ref())
                .map(|rep| rep.performance)
        };
        for (a, b) in cached.iter().zip(&baseline) {
            assert_eq!(a.report.success, b.report.success, "session {}", a.session);
            assert_eq!(perf(&a.report), perf(&b.report), "session {}", a.session);
        }
        let stats = cache.stats();
        let total_hits: u64 = cached.iter().map(|s| s.report.cache_hits as u64).sum();
        let total_waits: u64 = cached.iter().map(|s| s.report.coalesced_waits as u64).sum();
        // Session-billed hits include coalesced waits; the cache splits
        // them into `hits` and `coalesced`.
        assert_eq!(total_hits, stats.hits + stats.coalesced);
        assert_eq!(total_waits, stats.coalesced);
        // Every analysis request is served exactly once per session:
        // simulated or billed as a (possibly coalesced) hit. The cached
        // run's designs match the baseline, so the request sequences
        // match too.
        for (a, b) in cached.iter().zip(&baseline) {
            assert_eq!(
                a.report.simulations + a.report.cache_hits,
                b.report.simulations,
                "session {}",
                a.session
            );
        }
        let cold: f64 = baseline.iter().map(|s| s.report.testbed_seconds).sum();
        let warm: f64 = cached.iter().map(|s| s.report.testbed_seconds).sum();
        assert!(warm < cold, "warm batch {warm}s >= cold batch {cold}s");
    }

    #[test]
    fn journaled_batch_matches_plain_and_resumes_for_free() {
        let dir = std::env::temp_dir().join(format!(
            "artisan-sched-journal-{}-{}",
            std::process::id(),
            77
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("{e}"));
        let scheduler = Scheduler::with_pool(Supervisor::default(), ThreadPool::with_workers(2));
        let make_backends = || -> Vec<FaultySim<Simulator>> {
            (0..4)
                .map(|k| FaultySim::new(Simulator::new(), FaultPlan::flaky(k as u64, 0.3)))
                .collect()
        };
        let plain = scheduler.run_batch(&Spec::g1(), make_backends(), 31);
        let salt = FaultPlan::flaky(0, 0.3).fingerprint();
        let journaled = scheduler.run_batch_journaled(&Spec::g1(), make_backends(), 31, &dir, salt);
        assert_eq!(journaled.resumed_terminal(), 0);
        assert!(
            journaled.warnings().is_empty(),
            "{:?}",
            journaled.warnings()
        );
        for (a, b) in journaled.sessions.iter().zip(&plain) {
            assert!(
                field_equal(&a.report, &b.report),
                "session {}: journaling changed the session",
                a.session
            );
        }
        for j in &journaled.journals {
            assert!(j.path.exists(), "{} missing", j.path.display());
            assert!(j.appends >= 2, "attempt + terminal at minimum");
        }
        // Second run over the same dir: every session resumes from its
        // terminal record — field-identical reports, untouched backends.
        let resumed = scheduler.run_batch_journaled(&Spec::g1(), make_backends(), 31, &dir, salt);
        assert_eq!(resumed.resumed_terminal(), 4);
        for (a, b) in resumed.sessions.iter().zip(&plain) {
            assert!(field_equal(&a.report, &b.report), "session {}", a.session);
            assert_eq!(
                a.backend.ledger().simulations(),
                0,
                "resumed session {} re-simulated",
                a.session
            );
        }
        for j in &resumed.journals {
            assert_eq!(j.appends, 0, "terminal resume must not append");
        }
        // A different fault salt must not resume from these files: the
        // fingerprint differs, so sessions run fresh in their own files.
        let other = scheduler.run_batch_journaled(&Spec::g1(), make_backends(), 31, &dir, salt ^ 1);
        assert_eq!(other.resumed_terminal(), 0);
        assert_ne!(other.plan_fingerprint, resumed.plan_fingerprint);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_backends_keep_their_own_ledgers() {
        let scheduler = Scheduler::with_pool(Supervisor::default(), ThreadPool::with_workers(2));
        let backends = vec![
            FaultySim::new(Simulator::new(), FaultPlan::outage_from(0, 0)),
            FaultySim::new(Simulator::new(), FaultPlan::flaky(3, 0.1)),
        ];
        let sessions = scheduler.run_batch(&Spec::g1(), backends, 5);
        // The outage session fails without success; its retries (and
        // backoff penalties) never leak into the healthy session's
        // ledger.
        assert!(!sessions[0].report.success);
        assert!(sessions[0].backend.ledger().penalty_seconds() > 0.0);
        assert_eq!(
            sessions[1].backend.ledger().simulations() as usize,
            sessions[1].report.simulations
        );
    }
}
