//! Supervised design sessions: retry, backoff, budget, degradation.
//!
//! A [`Supervisor`] runs [`ArtisanAgent::design`] attempts against any
//! [`SimBackend`] until one validates, the [`RetryPolicy`] is spent, or
//! the [`SessionBudget`] cannot worst-case afford another attempt. The
//! result is a [`SessionReport`]: a structured record of what happened
//! (attempts, observed faults, backoff, budget stops) plus the best
//! outcome seen.
//!
//! Two invariants the chaos suite leans on:
//!
//! - **Budgets are pre-flight enforced.** Before each attempt the
//!   supervisor projects the attempt's *worst-case* cost from the
//!   agent's configuration; an attempt that could overrun the
//!   simulation or LLM-step budget never starts, so the final ledger
//!   never exceeds those caps.
//! - **Success is independently validated.** The supervisor re-checks
//!   the best outcome itself — report present, metrics finite, spec
//!   satisfied, stable — so a NaN/∞-poisoned report can never be
//!   reported as `success = true` no matter what the agent concluded.
//!
//! Backoff is billed to the cost ledger as testbed-equivalent penalty
//! seconds rather than slept on the wall clock: a supervised session is
//! a deterministic function of its seeds, and replaying it (or running
//! thousands of them in a chaos sweep) costs no real time.

use crate::journal::{AttemptRecord, JournalRecord, SessionJournal};
use artisan_agents::{AgentConfig, ArtisanAgent, DesignOutcome};
use artisan_sim::cost::CostModel;
use artisan_sim::{SimBackend, Spec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// When and how hard to retry a failed design attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum design attempts per session (≥ 1).
    pub max_attempts: usize,
    /// Testbed seconds billed before the second attempt.
    pub backoff_base_seconds: f64,
    /// Multiplier applied to the backoff after each further attempt.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_seconds: 30.0,
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// The backoff billed after `failed_attempts` attempts have failed
    /// (exponential: base · factor^(failed_attempts − 1)).
    pub fn backoff_seconds(&self, failed_attempts: usize) -> f64 {
        if failed_attempts == 0 {
            return 0.0;
        }
        self.backoff_base_seconds * self.backoff_factor.powi(failed_attempts as i32 - 1)
    }
}

/// Hard caps on what one supervised session may consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionBudget {
    /// Maximum billed simulations.
    pub max_simulations: usize,
    /// Maximum billed LLM exchanges.
    pub max_llm_steps: usize,
    /// Maximum testbed-equivalent seconds (simulations + LLM steps +
    /// penalties, under the supervisor's cost model).
    pub max_testbed_seconds: f64,
}

impl Default for SessionBudget {
    /// Roomy enough for [`RetryPolicy::default`]'s three noiseless
    /// attempts: ~1 h of testbed time.
    fn default() -> Self {
        SessionBudget {
            max_simulations: 48,
            max_llm_steps: 160,
            max_testbed_seconds: 3600.0,
        }
    }
}

/// One entry in the session's event log.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// An attempt began.
    AttemptStarted {
        /// 1-based attempt number.
        attempt: usize,
    },
    /// An attempt finished.
    AttemptFinished {
        /// 1-based attempt number.
        attempt: usize,
        /// Whether the attempt's outcome passed independent validation.
        validated: bool,
    },
    /// A fault note drained from the backend during the attempt.
    FaultObserved {
        /// The backend's note text.
        note: String,
    },
    /// Backoff billed before the next attempt.
    Backoff {
        /// Attempt that just failed.
        after_attempt: usize,
        /// Testbed seconds billed.
        seconds: f64,
    },
    /// The session stopped because the budget could not worst-case
    /// afford the next attempt.
    BudgetExhausted {
        /// Which cap stopped it.
        reason: String,
    },
}

/// The structured record of one supervised session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Whether the best outcome passed independent validation (finite
    /// metrics, every spec constraint, stable).
    pub success: bool,
    /// True when the session delivers a best-so-far result *without*
    /// success: the retry/budget envelope was exhausted and the caller
    /// is getting the least-bad design, not a validated one.
    pub degraded: bool,
    /// Design attempts actually run.
    pub attempts: usize,
    /// Faults observed across all attempts (backend notes).
    pub faults_observed: usize,
    /// The event log, in order.
    pub events: Vec<SessionEvent>,
    /// The best design outcome seen (None only when no attempt ran or
    /// every attempt died without a report).
    pub outcome: Option<DesignOutcome>,
    /// Billed simulations at session end.
    pub simulations: usize,
    /// Billed LLM exchanges at session end.
    pub llm_steps: usize,
    /// Simulation-cache hits at session end (analyses served from a
    /// `CachedSim` at retrieval cost instead of full testbed seconds).
    pub cache_hits: usize,
    /// Single-flight coalesced waits at session end: analyses this
    /// session received from another session's in-flight computation
    /// (informational; each is also billed in
    /// [`SessionReport::cache_hits`]).
    pub coalesced_waits: usize,
    /// Analyses that went through a batched `analyze_batch` fan-out at
    /// session end (informational; each is still billed as one sim).
    pub batched_solves: usize,
    /// Testbed-equivalent seconds at session end (includes backoff and
    /// injected-latency penalties).
    pub testbed_seconds: f64,
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "session: {} in {} attempt(s), {} fault(s) observed, {} sims, {} LLM steps, {:.1}s testbed",
            if self.success {
                "success"
            } else if self.degraded {
                "degraded"
            } else {
                "failed"
            },
            self.attempts,
            self.faults_observed,
            self.simulations,
            self.llm_steps,
            self.testbed_seconds,
        )?;
        if self.cache_hits > 0 {
            write!(f, ", {} cache hit(s)", self.cache_hits)?;
        }
        if self.coalesced_waits > 0 {
            write!(f, ", {} coalesced wait(s)", self.coalesced_waits)?;
        }
        if self.batched_solves > 0 {
            write!(f, ", {} batched solve(s)", self.batched_solves)?;
        }
        Ok(())
    }
}

/// Runs design sessions under retry and budget control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Supervisor {
    /// Retry/backoff policy.
    pub retry: RetryPolicy,
    /// Session budget.
    pub budget: SessionBudget,
    /// Cost model used to project and report testbed seconds.
    pub cost_model: CostModel,
}

impl Default for Supervisor {
    /// Default policies and budget with the environment-aware cost
    /// model, so `ARTISAN_CACHE_HIT_SECONDS` reaches every supervised
    /// session without plumbing. The environment is constant within a
    /// process, so replay determinism is unaffected.
    fn default() -> Self {
        Supervisor {
            retry: RetryPolicy::default(),
            budget: SessionBudget::default(),
            cost_model: CostModel::from_env(),
        }
    }
}

/// Worst-case cost of one design attempt under `config`: every
/// iteration re-simulates through the full retry budget, and every
/// iteration spends its 8 CoT exchanges plus the feedback exchange on
/// top of Q0. Sibling-scored architecture selection additionally
/// batch-simulates its two candidates once per attempt.
fn worst_case_attempt(config: &AgentConfig) -> (usize, usize) {
    let iterations = config.max_iterations + 1;
    let scoring_sims = if config.score_architectures { 2 } else { 0 };
    let sims = iterations * (1 + config.sim_retries) + scoring_sims;
    let llm_steps = 1 + iterations * 9;
    (sims, llm_steps)
}

/// Independent validation: the supervisor trusts the simulator's
/// numbers, not the agent's flag. When the backend attached a PVT
/// corner verdict (a `CornerSim` in the stack), nominal success is not
/// enough — the worst corner must also exist, be finite, and clear the
/// spec, so supervised sessions sign off on worst-case designs.
fn validate(spec: &Spec, outcome: &DesignOutcome) -> bool {
    outcome.report.as_ref().is_some_and(|r| {
        let nominal = r.stable && r.performance.is_finite() && spec.check(&r.performance).success();
        let corners = r.worst_case.as_ref().is_none_or(|wc| {
            wc.worst
                .as_ref()
                .is_some_and(|w| w.performance.is_finite() && spec.check(&w.performance).success())
        });
        nominal && corners
    })
}

/// How many spec constraints an outcome misses (∞ when it has no
/// usable report).
fn failure_count(spec: &Spec, outcome: &DesignOutcome) -> usize {
    match &outcome.report {
        Some(r) if r.performance.is_finite() => spec.check(&r.performance).failures().len(),
        _ => usize::MAX,
    }
}

impl Supervisor {
    /// A supervisor with an explicit retry policy and budget.
    pub fn new(retry: RetryPolicy, budget: SessionBudget) -> Self {
        Supervisor {
            retry,
            budget,
            cost_model: CostModel::default(),
        }
    }

    /// Runs a session with a fresh untrained noiseless agent — the
    /// common chaos-testing entry point.
    pub fn run<B: SimBackend + ?Sized>(
        &self,
        spec: &Spec,
        sim: &mut B,
        seed: u64,
    ) -> SessionReport {
        let mut agent = ArtisanAgent::untrained(AgentConfig::noiseless());
        self.run_with_agent(&mut agent, spec, sim, seed)
    }

    /// Runs a session with a caller-supplied agent (trained or not).
    /// Attempt `k` derives its RNG from `seed` and `k`, so a session is
    /// reproducible end to end from `(seed, plan, config)`.
    pub fn run_with_agent<B: SimBackend + ?Sized>(
        &self,
        agent: &mut ArtisanAgent,
        spec: &Spec,
        sim: &mut B,
        seed: u64,
    ) -> SessionReport {
        self.run_journaled(agent, spec, sim, seed, &mut SessionJournal::detached())
    }

    /// [`Supervisor::run_journaled`] with a fresh untrained noiseless
    /// agent — the journaled sibling of [`Supervisor::run`].
    pub fn run_journaled_default_agent<B: SimBackend + ?Sized>(
        &self,
        spec: &Spec,
        sim: &mut B,
        seed: u64,
        journal: &mut SessionJournal,
    ) -> SessionReport {
        let mut agent = ArtisanAgent::untrained(AgentConfig::noiseless());
        self.run_journaled(&mut agent, spec, sim, seed, journal)
    }

    /// Runs a session with crash-safe checkpointing: every attempt
    /// boundary is appended to `journal`, and a journal that already
    /// holds completed attempts is fast-forwarded instead of re-run —
    /// restored events, best-so-far outcome, the cumulative cost
    /// ledger, and the backend's analysis-call count (so a
    /// deterministic fault-injecting backend resumes on the exact dice
    /// it would have rolled). A journal whose last record is terminal
    /// returns the recorded report without running anything.
    ///
    /// The unjournaled entry points delegate here with a
    /// [`SessionJournal::detached`] journal, so a resumed session and
    /// an uninterrupted one execute the *same* loop — the
    /// field-identity guarantee is structural, not replicated logic.
    /// Journal I/O failures never perturb the session; they accumulate
    /// in [`SessionJournal::io_errors`].
    ///
    /// Caller contract: `sim` must be in the same state the journaled
    /// session's backend was in at its last recorded boundary *modulo*
    /// the restored ledger and call counter — i.e. a freshly
    /// constructed backend of the same configuration. Stateful stacks
    /// (a warm `CachedSim`) resume correctly in billing and events, but
    /// exact cost equality additionally needs the companion cache
    /// snapshot (see DESIGN.md §4.12).
    pub fn run_journaled<B: SimBackend + ?Sized>(
        &self,
        agent: &mut ArtisanAgent,
        spec: &Spec,
        sim: &mut B,
        seed: u64,
        journal: &mut SessionJournal,
    ) -> SessionReport {
        if let Some(report) = journal.terminal() {
            return report.clone();
        }
        let (attempt_sims, attempt_llm) = worst_case_attempt(&agent.config());
        let mut events = Vec::new();
        let mut best: Option<(usize, DesignOutcome)> = None;
        let mut success = false;
        let mut attempts = 0;
        let mut faults_observed = 0;
        let mut start_attempt = 1;

        // Fast-forward past journaled attempts: rebuild the loop state
        // they produced and restore the backend's billing + fault dice.
        {
            let restored: Vec<AttemptRecord> = journal.attempt_records().cloned().collect();
            if let Some(last) = restored.last() {
                for rec in &restored {
                    faults_observed += rec
                        .events
                        .iter()
                        .filter(|e| matches!(e, SessionEvent::FaultObserved { .. }))
                        .count();
                    events.extend(rec.events.iter().cloned());
                    if let Some((fails, outcome)) = &rec.best {
                        best = Some((*fails, outcome.clone()));
                    }
                }
                attempts = last.attempt;
                success = last.validated;
                start_attempt = last.attempt + 1;
                *sim.ledger_mut() = last.ledger;
                sim.fast_forward_calls(last.backend_calls);
            }
        }

        for attempt in start_attempt..=self.retry.max_attempts.max(1) {
            if success {
                break;
            }
            // Pre-flight: never start an attempt the budget cannot
            // worst-case afford.
            let ledger = sim.ledger();
            let projected_seconds = ledger.testbed_seconds(&self.cost_model)
                + attempt_sims as f64 * self.cost_model.seconds_per_simulation
                + attempt_llm as f64 * self.cost_model.seconds_per_llm_step;
            let stop = if ledger.simulations() as usize + attempt_sims > self.budget.max_simulations
            {
                Some("simulations")
            } else if ledger.llm_steps() as usize + attempt_llm > self.budget.max_llm_steps {
                Some("llm-steps")
            } else if projected_seconds > self.budget.max_testbed_seconds {
                Some("testbed-seconds")
            } else {
                None
            };
            if let Some(cap) = stop {
                events.push(SessionEvent::BudgetExhausted {
                    reason: format!("next attempt could exceed the {cap} cap"),
                });
                break;
            }

            attempts = attempt;
            let events_before = events.len();
            events.push(SessionEvent::AttemptStarted { attempt });
            let mut rng = StdRng::seed_from_u64(seed ^ (attempt as u64).wrapping_mul(0x9E37));
            let outcome = agent.design(spec, sim, &mut rng);
            for note in sim.drain_fault_notes() {
                faults_observed += 1;
                events.push(SessionEvent::FaultObserved { note });
            }
            let validated = validate(spec, &outcome);
            events.push(SessionEvent::AttemptFinished { attempt, validated });

            let fails = failure_count(spec, &outcome);
            let improved = best.as_ref().is_none_or(|(prev, _)| fails < *prev);
            if improved {
                best = Some((fails, outcome));
            }
            if validated {
                success = true;
            } else if attempt < self.retry.max_attempts {
                let seconds = self.retry.backoff_seconds(attempt);
                if seconds > 0.0 {
                    sim.ledger_mut().record_penalty_seconds(seconds);
                    events.push(SessionEvent::Backoff {
                        after_attempt: attempt,
                        seconds,
                    });
                }
            }
            // Attempt boundary: checkpoint the delta (after backoff
            // billing, so the recorded ledger is the resume point).
            if journal.is_recording() {
                journal.append_best_effort(JournalRecord::Attempt(AttemptRecord {
                    attempt,
                    validated,
                    events: events[events_before..].to_vec(),
                    best: if improved { best.clone() } else { None },
                    ledger: *sim.ledger(),
                    backend_calls: sim.calls_made(),
                }));
            }
            if validated {
                break;
            }
        }

        let ledger = sim.ledger();
        let outcome = best.map(|(_, o)| o);
        let report = SessionReport {
            success,
            degraded: !success && outcome.is_some(),
            attempts,
            faults_observed,
            events,
            outcome,
            simulations: ledger.simulations() as usize,
            llm_steps: ledger.llm_steps() as usize,
            cache_hits: ledger.cache_hits() as usize,
            coalesced_waits: ledger.coalesced_waits() as usize,
            batched_solves: ledger.batched_solves() as usize,
            testbed_seconds: ledger.testbed_seconds(&self.cost_model),
        };
        if journal.is_recording() {
            journal.append_best_effort(JournalRecord::Terminal(report.clone()));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultySim};
    use artisan_sim::Simulator;

    #[test]
    fn clean_backend_succeeds_first_attempt() {
        let mut sim = Simulator::new();
        let report = Supervisor::default().run(&Spec::g1(), &mut sim, 0);
        assert!(report.success, "{report}");
        assert!(!report.degraded);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.faults_observed, 0);
        assert!(report.outcome.is_some());
        assert!(!report
            .events
            .iter()
            .any(|e| matches!(e, SessionEvent::Backoff { .. })));
    }

    #[test]
    fn flaky_backend_recovers_within_retries() {
        // A moderately flaky backend: across seeds the supervisor must
        // recover to success in the large majority of sessions.
        let mut successes = 0;
        for seed in 0..20 {
            let mut sim = FaultySim::new(Simulator::new(), FaultPlan::flaky(seed, 0.25));
            let report = Supervisor::default().run(&Spec::g1(), &mut sim, seed);
            if report.success {
                successes += 1;
            }
        }
        assert!(
            successes >= 15,
            "only {successes}/20 flaky sessions recovered"
        );
    }

    #[test]
    fn poisoned_backend_never_reports_success() {
        for seed in 0..10 {
            let mut sim = FaultySim::new(Simulator::new(), FaultPlan::poisoned(seed));
            let report = Supervisor::default().run(&Spec::g1(), &mut sim, seed);
            assert!(!report.success, "seed {seed}: poisoned session succeeded");
            assert!(report.faults_observed > 0);
        }
    }

    #[test]
    fn outage_session_is_degraded_or_failed_with_budget_intact() {
        let mut sim = FaultySim::new(Simulator::new(), FaultPlan::outage_from(0, 0));
        let supervisor = Supervisor::default();
        let report = supervisor.run(&Spec::g1(), &mut sim, 0);
        assert!(!report.success);
        assert!(report.outcome.is_none() || report.degraded);
        assert!(report.simulations <= supervisor.budget.max_simulations);
        assert!(report.llm_steps <= supervisor.budget.max_llm_steps);
    }

    #[test]
    fn backoff_is_billed_as_testbed_time() {
        let mut sim = FaultySim::new(Simulator::new(), FaultPlan::outage_from(0, 0));
        let report = Supervisor::default().run(&Spec::g1(), &mut sim, 0);
        assert!(report.attempts >= 2, "{report}");
        // 30s + 60s of exponential backoff on the default policy.
        assert!(
            sim.ledger().penalty_seconds() >= 90.0,
            "penalties: {}",
            sim.ledger().penalty_seconds()
        );
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, SessionEvent::Backoff { seconds, .. } if *seconds == 30.0)));
    }

    #[test]
    fn tiny_budget_stops_before_the_first_attempt() {
        let budget = SessionBudget {
            max_simulations: 1,
            max_llm_steps: 5,
            max_testbed_seconds: 10.0,
        };
        let mut sim = Simulator::new();
        let report = Supervisor::new(RetryPolicy::default(), budget).run(&Spec::g1(), &mut sim, 0);
        assert_eq!(report.attempts, 0);
        assert!(!report.success && !report.degraded);
        assert!(report.outcome.is_none());
        assert!(matches!(
            report.events.first(),
            Some(SessionEvent::BudgetExhausted { .. })
        ));
        assert_eq!(sim.ledger().simulations(), 0);
    }

    #[test]
    fn budget_stops_mid_session_and_keeps_best_so_far() {
        // Enough budget for roughly one attempt, against a dead backend:
        // the session must stop on BudgetExhausted, not loop.
        let budget = SessionBudget {
            max_simulations: 10,
            max_llm_steps: 60,
            max_testbed_seconds: 3000.0,
        };
        let mut sim = FaultySim::new(Simulator::new(), FaultPlan::outage_from(0, 0));
        let report = Supervisor::new(RetryPolicy::default(), budget).run(&Spec::g1(), &mut sim, 0);
        assert!(!report.success);
        assert!(report.attempts >= 1);
        assert!(report.simulations <= budget.max_simulations);
        assert!(report.llm_steps <= budget.max_llm_steps);
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, SessionEvent::BudgetExhausted { .. })));
    }

    #[test]
    fn session_is_reproducible_from_seeds() {
        let run = || {
            let mut sim = FaultySim::new(Simulator::new(), FaultPlan::flaky(5, 0.3));
            Supervisor::default().run(&Spec::g1(), &mut sim, 9)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.success, b.success);
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.events, b.events);
        assert_eq!(a.testbed_seconds, b.testbed_seconds);
    }

    #[test]
    fn cached_sessions_report_hits_and_cheaper_testbed_time() {
        use artisan_sim::{CachedSim, SimCache};
        let cache = SimCache::shared(256);
        let supervisor = Supervisor::default();
        let mut cold = CachedSim::new(Simulator::new(), std::sync::Arc::clone(&cache));
        let first = supervisor.run(&Spec::g1(), &mut cold, 0);
        assert!(first.success, "{first}");
        // Same spec + seed against a warmed shared cache: every analysis
        // is a hit, the outcome is identical, and billed time drops.
        let mut warm = CachedSim::new(Simulator::new(), cache);
        let second = supervisor.run(&Spec::g1(), &mut warm, 0);
        assert!(second.success, "{second}");
        assert!(second.cache_hits > 0, "{second}");
        assert!(
            second.testbed_seconds < first.testbed_seconds,
            "warm {} >= cold {}",
            second.testbed_seconds,
            first.testbed_seconds
        );
        let (a, b) = (first.outcome.as_ref(), second.outcome.as_ref());
        assert_eq!(
            a.and_then(|o| o.report.as_ref()).map(|r| r.performance),
            b.and_then(|o| o.report.as_ref()).map(|r| r.performance),
            "cached session changed the reported design"
        );
        assert!(second.to_string().contains("cache hit"), "{second}");
    }

    #[test]
    fn display_summarizes_the_session() {
        let mut sim = Simulator::new();
        let report = Supervisor::default().run(&Spec::g1(), &mut sim, 0);
        let s = report.to_string();
        assert!(s.contains("success"), "{s}");
        assert!(s.contains("attempt"), "{s}");
    }
}
