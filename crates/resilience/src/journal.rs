//! Crash-safe session write-ahead journal: checkpoint/resume for
//! supervised design sessions.
//!
//! A supervised session burns tens of testbed-equivalent minutes per
//! attempt; a killed worker must never lose paid-for progress. This
//! module records each attempt boundary in an append-only, versioned,
//! checksummed journal file (the same format discipline as the
//! `artisan_sim::cache::persist` snapshot), so a restarted process
//! fast-forwards past completed attempts and resumes billing exactly
//! where the crash left it.
//!
//! # File format (version 1, all integers/floats little-endian)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 8    | magic `b"ARTSNJL1"` |
//! | 8      | 4    | format version (`u32`, currently 1) |
//! | 12     | 8    | plan fingerprint (`u64`) — see invalidation below |
//! | 20     | 8    | session seed (`u64`) |
//! | 28     | 8    | FNV-1a 64 checksum of the 28 header bytes |
//! | 36     | …    | records, appended in session order |
//!
//! Each record is a self-checksummed frame:
//!
//! | size | field |
//! |-----:|-------|
//! | 4    | payload length (`u32`) |
//! | len  | payload (`[type u8][body…]`) |
//! | 8    | FNV-1a 64 checksum of the payload |
//!
//! Record type 1 is one [`AttemptRecord`] — the delta one attempt added
//! to the session (its events, whether it improved the best-so-far
//! outcome, the cumulative [`CostLedger`] snapshot, and the backend's
//! cumulative analysis-call count for deterministic fault-dice resume).
//! Record type 2 is the terminal verdict: the full final
//! [`SessionReport`]. A journal whose last record is terminal describes
//! a *finished* session; resuming it returns the recorded report
//! without running anything.
//!
//! # Invalidation rules — reject, never mis-resume
//!
//! A journal file is resumed **only** when the header checksum, magic,
//! and format version match **and** the header's plan fingerprint and
//! session seed equal the caller's. Anything else starts the session
//! fresh with a diagnostic warning — a journal written under a
//! different spec, retry policy, budget, cost model, agent
//! configuration, or fault plan must never splice foreign attempts into
//! this session. Record frames are checksummed individually: a torn
//! tail (the crash happened mid-append) is truncated and the intact
//! prefix resumes, while a checksum-valid record that fails to decode
//! rejects the whole file (that is corruption FNV happened to miss, not
//! a clean crash).
//!
//! # Atomicity
//!
//! Every append rewrites the full journal to a process-unique temp file
//! in the destination directory and `rename`s it into place, so a
//! reader — or the next process after a SIGKILL — only ever observes a
//! complete previous generation or a complete new one. The torn-tail
//! truncation above is belt-and-braces for filesystems that weaken the
//! rename guarantee under power loss.
//!
//! # Environment wiring
//!
//! When [`JOURNAL_DIR_ENV`] (`ARTISAN_JOURNAL_DIR`) names a directory,
//! batch runners keep one journal file per session under it, named
//! [`session_file_name`]`(plan_fingerprint, seed)` — deterministic, so
//! a restarted process reopens exactly the files its predecessor wrote.
//! [`scan_dir`] lists them with their resume state for recovery
//! reporting.

use crate::fault::FaultPlan;
use crate::supervisor::{SessionEvent, SessionReport, Supervisor};
use artisan_agents::tot::{TotNode, TotTrace};
use artisan_agents::{AgentConfig, Architecture, ChatTranscript, ChatTurn, DesignOutcome, Speaker};
use artisan_circuit::units::{Farads, Ohms, Siemens};
use artisan_circuit::{
    ConnectionParams, ConnectionType, Placement, Position, Skeleton, StageParams, Topology,
};
use artisan_sim::cost::CostLedger;
use artisan_sim::{wire, Spec};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable naming the directory that holds per-session
/// journal files.
pub const JOURNAL_DIR_ENV: &str = "ARTISAN_JOURNAL_DIR";

/// Leading magic of every journal file.
const MAGIC: &[u8; 8] = b"ARTSNJL1";

/// Current journal format version. Bump on any layout change: version
/// mismatches load fresh, never as garbage. Version 2 grew the ledger
/// wire layout by the corner-sims counter.
pub const FORMAT_VERSION: u32 = 2;

/// magic + version + plan fingerprint + seed.
const HEADER_BODY_LEN: usize = 8 + 4 + 8 + 8;

/// Header body plus its trailing checksum.
const HEADER_LEN: usize = HEADER_BODY_LEN + 8;

const RECORD_ATTEMPT: u8 = 1;
const RECORD_TERMINAL: u8 = 2;

/// Per-process counter distinguishing concurrent temp files from the
/// same process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The journal directory named by [`JOURNAL_DIR_ENV`], if set (and
/// non-empty).
pub fn journal_dir_from_env() -> Option<PathBuf> {
    match std::env::var(JOURNAL_DIR_ENV) {
        Ok(dir) if !dir.trim().is_empty() => Some(PathBuf::from(dir)),
        _ => None,
    }
}

/// Deterministic per-session file name: the same `(plan fingerprint,
/// seed)` always maps to the same file, which is what lets a restarted
/// process find its predecessor's journals without any registry.
pub fn session_file_name(plan_fingerprint: u64, seed: u64) -> String {
    format!("session-{plan_fingerprint:016x}-{seed:016x}.wal")
}

/// FNV-64 salt of every [`AgentConfig`] knob that changes what a
/// session does (noise model, iteration budget, retry count,
/// architecture scoring). Folded into [`plan_fingerprint`] so a journal
/// from a differently-configured agent can never resume.
pub fn agent_config_salt(config: &AgentConfig) -> u64 {
    let mut bytes = Vec::with_capacity(64);
    wire::push_f64(&mut bytes, config.noise.sigma);
    wire::push_f64(&mut bytes, config.noise.blunder_rate);
    wire::push_f64(&mut bytes, config.noise.retrieval_temperature);
    wire::push_u64(&mut bytes, config.max_iterations as u64);
    wire::push_u64(&mut bytes, config.sim_retries as u64);
    wire::push_u8(&mut bytes, u8::from(config.score_architectures));
    wire::fnv1a64(&bytes)
}

/// FNV-64 fingerprint of everything that determines a supervised
/// session's behaviour besides its seed: the spec, the retry policy,
/// the budget, the cost model, and `extra_salt` (callers fold in the
/// [`agent_config_salt`] and, when fault-injecting, the
/// [`FaultPlan::fingerprint`]). Two sessions share a fingerprint only
/// when replaying one's journal under the other is sound.
pub fn plan_fingerprint(spec: &Spec, supervisor: &Supervisor, extra_salt: u64) -> u64 {
    let mut bytes = Vec::with_capacity(128);
    wire::push_f64(&mut bytes, spec.gain_min_db);
    wire::push_f64(&mut bytes, spec.gbw_min_hz);
    wire::push_f64(&mut bytes, spec.pm_min_deg);
    wire::push_f64(&mut bytes, spec.power_max_w);
    wire::push_f64(&mut bytes, spec.cl.value());
    wire::push_u64(&mut bytes, supervisor.retry.max_attempts as u64);
    wire::push_f64(&mut bytes, supervisor.retry.backoff_base_seconds);
    wire::push_f64(&mut bytes, supervisor.retry.backoff_factor);
    wire::push_u64(&mut bytes, supervisor.budget.max_simulations as u64);
    wire::push_u64(&mut bytes, supervisor.budget.max_llm_steps as u64);
    wire::push_f64(&mut bytes, supervisor.budget.max_testbed_seconds);
    wire::push_f64(&mut bytes, supervisor.cost_model.seconds_per_simulation);
    wire::push_f64(&mut bytes, supervisor.cost_model.seconds_per_llm_step);
    wire::push_f64(&mut bytes, supervisor.cost_model.seconds_per_optimizer_step);
    wire::push_f64(&mut bytes, supervisor.cost_model.seconds_per_cache_hit);
    wire::push_f64(&mut bytes, supervisor.cost_model.seconds_per_screen);
    wire::push_u64(&mut bytes, extra_salt);
    wire::fnv1a64(&bytes)
}

/// Convenience composition for fault-injected sessions: the plan
/// fingerprint with both the agent-config salt and the fault plan's own
/// fingerprint folded in.
pub fn faulted_plan_fingerprint(
    spec: &Spec,
    supervisor: &Supervisor,
    config: &AgentConfig,
    plan: Option<&FaultPlan>,
) -> u64 {
    let fault_salt = plan.map_or(0, FaultPlan::fingerprint);
    plan_fingerprint(
        spec,
        supervisor,
        agent_config_salt(config) ^ fault_salt.rotate_left(17),
    )
}

/// The delta one design attempt added to its session.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: usize,
    /// Whether this attempt's outcome passed independent validation
    /// (a validated attempt is the session's last).
    pub validated: bool,
    /// Events this attempt appended to the session log (attempt
    /// start/finish, fault notes, backoff).
    pub events: Vec<SessionEvent>,
    /// Present exactly when this attempt improved the best-so-far
    /// outcome: the spec-failure count and the outcome itself.
    pub best: Option<(usize, DesignOutcome)>,
    /// Cumulative ledger snapshot at the attempt boundary (after any
    /// backoff billing).
    pub ledger: CostLedger,
    /// Cumulative backend analysis calls at the attempt boundary, so a
    /// deterministic fault-injecting backend resumes on the same dice.
    pub backend_calls: u64,
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// An attempt boundary.
    Attempt(AttemptRecord),
    /// The session's terminal verdict — always the last record.
    Terminal(SessionReport),
}

/// Result of opening a journal. `warning` is `Some` exactly when a
/// present file was rejected or tail-truncated; a *missing* file is a
/// normal fresh session and carries no warning.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JournalLoad {
    /// Completed attempts restored for fast-forward.
    pub attempts_loaded: usize,
    /// Whether a terminal verdict was restored (the session is already
    /// finished; resuming returns it without running anything).
    pub terminal: bool,
    /// Diagnostic for a rejected or truncated file.
    pub warning: Option<String>,
}

/// One entry of a [`scan_dir`] recovery report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalScan {
    /// The journal file.
    pub path: PathBuf,
    /// Plan fingerprint from the header.
    pub plan_fingerprint: u64,
    /// Session seed from the header.
    pub seed: u64,
    /// How the file loaded under its own header identity.
    pub load: JournalLoad,
}

/// What one journaled session's journal did, for recovery reporting
/// and overhead accounting (`bench_report`'s `journal` section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalOutcome {
    /// The backing journal file.
    pub path: PathBuf,
    /// How the file loaded when the session opened it.
    pub load: JournalLoad,
    /// Durable appends this run performed (0 when the session was
    /// already terminal).
    pub appends: u64,
    /// Total bytes written to disk by this run's appends.
    pub bytes_written: u64,
    /// Final encoded journal size (header + frames).
    pub encoded_len: usize,
    /// Disk errors swallowed during the run (journaling never perturbs
    /// the session).
    pub io_errors: Vec<String>,
}

/// Result of one durable append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Bytes this append added to the journal (frame overhead
    /// included).
    pub record_bytes: usize,
    /// Total bytes written to disk by this append (the whole file is
    /// rewritten for atomicity; 0 for in-memory journals).
    pub bytes_written: usize,
}

/// An append-only, checksummed session journal.
///
/// Three flavours share the type: *detached* (no buffering at all — the
/// zero-cost default inside `Supervisor::run_with_agent`), *in-memory*
/// (buffers frames, never touches disk — tests and overhead
/// measurement), and *durable* (every append atomically rewrites the
/// backing file).
#[derive(Debug)]
pub struct SessionJournal {
    path: Option<PathBuf>,
    recording: bool,
    plan_fingerprint: u64,
    seed: u64,
    /// The full encoded file image (header + valid frames).
    bytes: Vec<u8>,
    records: Vec<JournalRecord>,
    appends: u64,
    bytes_written: u64,
    io_errors: Vec<String>,
}

impl SessionJournal {
    fn header_bytes(plan_fingerprint: u64, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN);
        out.extend_from_slice(MAGIC);
        wire::push_u32(&mut out, FORMAT_VERSION);
        wire::push_u64(&mut out, plan_fingerprint);
        wire::push_u64(&mut out, seed);
        let checksum = wire::fnv1a64(&out);
        wire::push_u64(&mut out, checksum);
        out
    }

    /// A journal that records nothing — the zero-overhead stand-in for
    /// unjournaled sessions.
    pub fn detached() -> Self {
        SessionJournal {
            path: None,
            recording: false,
            plan_fingerprint: 0,
            seed: 0,
            bytes: Vec::new(),
            records: Vec::new(),
            appends: 0,
            bytes_written: 0,
            io_errors: Vec::new(),
        }
    }

    /// A journal that buffers frames in memory and never touches disk.
    pub fn in_memory(plan_fingerprint: u64, seed: u64) -> Self {
        SessionJournal {
            path: None,
            recording: true,
            plan_fingerprint,
            seed,
            bytes: Self::header_bytes(plan_fingerprint, seed),
            records: Vec::new(),
            appends: 0,
            bytes_written: 0,
            io_errors: Vec::new(),
        }
    }

    /// Opens (or starts) the durable journal at `path` for the session
    /// identified by `(plan_fingerprint, seed)`.
    ///
    /// A missing file is a fresh session (no warning). A present file
    /// resumes only when its header checksum, magic, version,
    /// fingerprint, and seed all match — anything else starts fresh
    /// with a warning, and the first append overwrites the rejected
    /// file. A torn tail is truncated to the last intact frame.
    pub fn open(path: &Path, plan_fingerprint: u64, seed: u64) -> (SessionJournal, JournalLoad) {
        let mut journal = SessionJournal {
            path: Some(path.to_path_buf()),
            recording: true,
            plan_fingerprint,
            seed,
            bytes: Self::header_bytes(plan_fingerprint, seed),
            records: Vec::new(),
            appends: 0,
            bytes_written: 0,
            io_errors: Vec::new(),
        };
        let raw = match fs::read(path) {
            Ok(raw) => raw,
            Err(err) if err.kind() == io::ErrorKind::NotFound => {
                return (journal, JournalLoad::default());
            }
            Err(err) => {
                let load = JournalLoad {
                    warning: Some(format!(
                        "session journal unreadable ({}): {err}",
                        path.display()
                    )),
                    ..JournalLoad::default()
                };
                return (journal, load);
            }
        };
        let load = journal.restore(&raw, Some((plan_fingerprint, seed)));
        (journal, load)
    }

    /// Decodes `raw` into this journal. `expected`, when set, pins the
    /// header identity; `None` accepts whatever identity the header
    /// carries (the [`scan_dir`] peek path).
    fn restore(&mut self, raw: &[u8], expected: Option<(u64, u64)>) -> JournalLoad {
        let reject = |reason: String| JournalLoad {
            warning: Some(format!("session journal rejected: {reason}")),
            ..JournalLoad::default()
        };
        if raw.len() < HEADER_LEN {
            return reject(format!("too short ({} bytes) — truncated?", raw.len()));
        }
        let (header, rest) = raw.split_at(HEADER_LEN);
        let (header_body, header_sum) = header.split_at(HEADER_BODY_LEN);
        let mut sum = [0u8; 8];
        sum.copy_from_slice(header_sum);
        if u64::from_le_bytes(sum) != wire::fnv1a64(header_body) {
            return reject("header checksum mismatch".into());
        }
        let mut reader = wire::Reader::new(header_body);
        match reader.take(8) {
            Ok(magic) if magic == MAGIC => {}
            _ => return reject("not an artisan session journal (bad magic)".into()),
        }
        let version = reader.u32().unwrap_or(0);
        if version != FORMAT_VERSION {
            return reject(format!(
                "format version {version} != supported {FORMAT_VERSION}"
            ));
        }
        let file_fp = reader.u64().unwrap_or(0);
        let file_seed = reader.u64().unwrap_or(0);
        if let Some((fp, seed)) = expected {
            if file_fp != fp {
                return reject(format!(
                    "plan fingerprint {file_fp:#018x} != expected {fp:#018x} — written under a different plan"
                ));
            }
            if file_seed != seed {
                return reject(format!(
                    "session seed {file_seed} != expected {seed} — a different session's journal"
                ));
            }
        } else {
            self.plan_fingerprint = file_fp;
            self.seed = file_seed;
            self.bytes = Self::header_bytes(file_fp, file_seed);
        }

        // Frame scan: keep every intact, decodable record; truncate at
        // the first torn frame.
        let mut records = Vec::new();
        let mut valid_len = 0usize;
        let mut truncated = None;
        let mut pos = 0usize;
        while pos < rest.len() {
            let Some(frame) = read_frame(&rest[pos..]) else {
                truncated = Some(format!(
                    "torn tail truncated at byte {} ({} bytes dropped)",
                    HEADER_LEN + pos,
                    rest.len() - pos
                ));
                break;
            };
            let (payload, frame_len) = frame;
            match decode_record(payload) {
                Ok(record) => {
                    records.push(record);
                    pos += frame_len;
                    valid_len = pos;
                }
                // Checksum-valid but undecodable: not a torn append —
                // reject the whole file rather than resume over it.
                Err(reason) => return reject(format!("record {}: {reason}", records.len())),
            }
        }
        // Structural sanity: attempts numbered 1, 2, … with the
        // terminal verdict (if any) last. Anything else mis-resumes.
        let mut expected_attempt = 1usize;
        for (i, record) in records.iter().enumerate() {
            match record {
                JournalRecord::Attempt(rec) => {
                    if rec.attempt != expected_attempt {
                        return reject(format!(
                            "attempt record {} out of order (attempt {}, expected {})",
                            i, rec.attempt, expected_attempt
                        ));
                    }
                    expected_attempt += 1;
                }
                JournalRecord::Terminal(_) if i + 1 == records.len() => {}
                JournalRecord::Terminal(_) => {
                    return reject(format!("terminal record {i} is not last"));
                }
            }
        }
        self.bytes.extend_from_slice(&rest[..valid_len]);
        let attempts_loaded = records
            .iter()
            .filter(|r| matches!(r, JournalRecord::Attempt(_)))
            .count();
        let terminal = matches!(records.last(), Some(JournalRecord::Terminal(_)));
        self.records = records;
        JournalLoad {
            attempts_loaded,
            terminal,
            warning: truncated,
        }
    }

    /// Whether appends are recorded at all (false only for
    /// [`SessionJournal::detached`]).
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// The plan fingerprint this journal is bound to.
    pub fn plan_fingerprint(&self) -> u64 {
        self.plan_fingerprint
    }

    /// The session seed this journal is bound to.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The backing file, for durable journals.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Every restored or appended record, in session order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// The attempt records, in attempt order.
    pub fn attempt_records(&self) -> impl Iterator<Item = &AttemptRecord> {
        self.records.iter().filter_map(|r| match r {
            JournalRecord::Attempt(rec) => Some(rec),
            JournalRecord::Terminal(_) => None,
        })
    }

    /// The terminal verdict, when the session already finished.
    pub fn terminal(&self) -> Option<&SessionReport> {
        match self.records.last() {
            Some(JournalRecord::Terminal(report)) => Some(report),
            _ => None,
        }
    }

    /// Durable appends performed so far.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Total bytes written to disk across all appends (each append
    /// rewrites the whole file).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Current encoded journal size (header + frames).
    pub fn encoded_len(&self) -> usize {
        if self.recording {
            self.bytes.len()
        } else {
            0
        }
    }

    /// I/O errors swallowed by [`SessionJournal::append_best_effort`],
    /// oldest first. A failed append never perturbs the session itself
    /// — the supervisor keeps running and the errors surface here.
    pub fn io_errors(&self) -> &[String] {
        &self.io_errors
    }

    /// Appends one record: frames it into the buffer and, for durable
    /// journals, atomically rewrites the backing file.
    ///
    /// # Errors
    ///
    /// Disk failures from the durable rewrite; the in-memory buffer is
    /// updated regardless, so a later append retries the full state.
    pub fn append(&mut self, record: JournalRecord) -> io::Result<AppendOutcome> {
        if !self.recording {
            return Ok(AppendOutcome {
                record_bytes: 0,
                bytes_written: 0,
            });
        }
        let mut payload = Vec::with_capacity(256);
        encode_record(&mut payload, &record);
        let before = self.bytes.len();
        wire::push_u32(&mut self.bytes, payload.len() as u32);
        let checksum = wire::fnv1a64(&payload);
        self.bytes.extend_from_slice(&payload);
        wire::push_u64(&mut self.bytes, checksum);
        self.records.push(record);
        self.appends += 1;
        let record_bytes = self.bytes.len() - before;
        let mut outcome = AppendOutcome {
            record_bytes,
            bytes_written: 0,
        };
        if let Some(path) = self.path.clone() {
            self.write_atomic(&path)?;
            outcome.bytes_written = self.bytes.len();
            self.bytes_written += self.bytes.len() as u64;
        }
        Ok(outcome)
    }

    /// [`SessionJournal::append`] with disk errors recorded in
    /// [`SessionJournal::io_errors`] instead of propagated — journaling
    /// must never change what the session computes.
    pub fn append_best_effort(&mut self, record: JournalRecord) {
        if let Err(err) = self.append(record) {
            self.io_errors.push(err.to_string());
        }
    }

    fn write_atomic(&self, path: &Path) -> io::Result<()> {
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(dir) = dir {
            fs::create_dir_all(dir)?;
        }
        let temp_name = format!(
            ".{}.tmp-{}-{}",
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "journal.wal".to_owned()),
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        );
        let temp_path = match dir {
            Some(dir) => dir.join(&temp_name),
            None => PathBuf::from(&temp_name),
        };
        let result = (|| {
            let mut file = fs::File::create(&temp_path)?;
            file.write_all(&self.bytes)?;
            file.sync_all()?;
            drop(file);
            fs::rename(&temp_path, path)
        })();
        if result.is_err() {
            // Best-effort cleanup; the original error is what matters.
            let _ = fs::remove_file(&temp_path);
        }
        result
    }
}

/// Splits the next `[len][payload][fnv]` frame off `bytes`. `None` when
/// the frame is incomplete or its checksum fails — the torn-tail case.
fn read_frame(bytes: &[u8]) -> Option<(&[u8], usize)> {
    if bytes.len() < 4 {
        return None;
    }
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&bytes[..4]);
    let len = u32::from_le_bytes(len_bytes) as usize;
    let frame_len = 4usize.checked_add(len)?.checked_add(8)?;
    if bytes.len() < frame_len {
        return None;
    }
    let payload = &bytes[4..4 + len];
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[4 + len..frame_len]);
    if u64::from_le_bytes(sum) != wire::fnv1a64(payload) {
        return None;
    }
    Some((payload, frame_len))
}

// ---------------------------------------------------------------------
// Record codecs. Everything below is a straight-line application of the
// shared `wire` helpers; decode errors are diagnostics, never panics.
// ---------------------------------------------------------------------

fn encode_record(out: &mut Vec<u8>, record: &JournalRecord) {
    match record {
        JournalRecord::Attempt(rec) => {
            wire::push_u8(out, RECORD_ATTEMPT);
            wire::push_u64(out, rec.attempt as u64);
            wire::push_u8(out, u8::from(rec.validated));
            wire::push_u32(out, rec.events.len() as u32);
            for event in &rec.events {
                encode_event(out, event);
            }
            match &rec.best {
                Some((fails, outcome)) => {
                    wire::push_u8(out, 1);
                    wire::push_u64(out, *fails as u64);
                    encode_outcome(out, outcome);
                }
                None => wire::push_u8(out, 0),
            }
            rec.ledger.encode_wire(out);
            wire::push_u64(out, rec.backend_calls);
        }
        JournalRecord::Terminal(report) => {
            wire::push_u8(out, RECORD_TERMINAL);
            encode_report(out, report);
        }
    }
}

fn decode_record(payload: &[u8]) -> Result<JournalRecord, String> {
    let mut reader = wire::Reader::new(payload);
    let record = match reader.u8()? {
        RECORD_ATTEMPT => {
            let attempt = reader.u64()? as usize;
            let validated = reader.bool()?;
            let event_count = reader.u32()? as usize;
            if event_count > reader.remaining() {
                return Err(format!("event count {event_count} exceeds payload"));
            }
            let mut events = Vec::with_capacity(event_count);
            for _ in 0..event_count {
                events.push(decode_event(&mut reader)?);
            }
            let best = match reader.bool()? {
                true => {
                    let fails = reader.u64()? as usize;
                    let outcome = decode_outcome(&mut reader)?;
                    Some((fails, outcome))
                }
                false => None,
            };
            let ledger = CostLedger::decode_wire(&mut reader)?;
            let backend_calls = reader.u64()?;
            JournalRecord::Attempt(AttemptRecord {
                attempt,
                validated,
                events,
                best,
                ledger,
                backend_calls,
            })
        }
        RECORD_TERMINAL => JournalRecord::Terminal(decode_report(&mut reader)?),
        other => return Err(format!("unknown record type {other}")),
    };
    if reader.remaining() != 0 {
        return Err(format!("{} trailing bytes in record", reader.remaining()));
    }
    Ok(record)
}

fn encode_event(out: &mut Vec<u8>, event: &SessionEvent) {
    match event {
        SessionEvent::AttemptStarted { attempt } => {
            wire::push_u8(out, 0);
            wire::push_u64(out, *attempt as u64);
        }
        SessionEvent::AttemptFinished { attempt, validated } => {
            wire::push_u8(out, 1);
            wire::push_u64(out, *attempt as u64);
            wire::push_u8(out, u8::from(*validated));
        }
        SessionEvent::FaultObserved { note } => {
            wire::push_u8(out, 2);
            wire::push_str(out, note);
        }
        SessionEvent::Backoff {
            after_attempt,
            seconds,
        } => {
            wire::push_u8(out, 3);
            wire::push_u64(out, *after_attempt as u64);
            wire::push_f64(out, *seconds);
        }
        SessionEvent::BudgetExhausted { reason } => {
            wire::push_u8(out, 4);
            wire::push_str(out, reason);
        }
    }
}

fn decode_event(reader: &mut wire::Reader<'_>) -> Result<SessionEvent, String> {
    Ok(match reader.u8()? {
        0 => SessionEvent::AttemptStarted {
            attempt: reader.u64()? as usize,
        },
        1 => SessionEvent::AttemptFinished {
            attempt: reader.u64()? as usize,
            validated: reader.bool()?,
        },
        2 => SessionEvent::FaultObserved {
            note: reader.str()?,
        },
        3 => SessionEvent::Backoff {
            after_attempt: reader.u64()? as usize,
            seconds: reader.f64()?,
        },
        4 => SessionEvent::BudgetExhausted {
            reason: reader.str()?,
        },
        other => return Err(format!("unknown event tag {other}")),
    })
}

fn encode_stage(out: &mut Vec<u8>, stage: &StageParams) {
    wire::push_f64(out, stage.gm.value());
    wire::push_f64(out, stage.ro.value());
    wire::push_f64(out, stage.cp.value());
}

fn decode_stage(reader: &mut wire::Reader<'_>) -> Result<StageParams, String> {
    Ok(StageParams {
        gm: Siemens(reader.f64()?),
        ro: Ohms(reader.f64()?),
        cp: Farads(reader.f64()?),
    })
}

fn push_opt_f64(out: &mut Vec<u8>, value: Option<f64>) {
    match value {
        Some(v) => {
            wire::push_u8(out, 1);
            wire::push_f64(out, v);
        }
        None => wire::push_u8(out, 0),
    }
}

fn read_opt_f64(reader: &mut wire::Reader<'_>) -> Result<Option<f64>, String> {
    Ok(match reader.bool()? {
        true => Some(reader.f64()?),
        false => None,
    })
}

fn encode_topology(out: &mut Vec<u8>, topo: &Topology) {
    encode_stage(out, &topo.skeleton.stage1);
    encode_stage(out, &topo.skeleton.stage2);
    encode_stage(out, &topo.skeleton.stage3);
    wire::push_f64(out, topo.skeleton.rl.value());
    wire::push_f64(out, topo.skeleton.cl.value());
    wire::push_u32(out, topo.placements().len() as u32);
    for placement in topo.placements() {
        // Indices into the canonical ALL orders — stable across
        // processes by construction.
        let position = Position::ALL
            .iter()
            .position(|p| *p == placement.position)
            .unwrap_or(0) as u8;
        let connection = ConnectionType::ALL
            .iter()
            .position(|c| *c == placement.connection)
            .unwrap_or(0) as u8;
        wire::push_u8(out, position);
        wire::push_u8(out, connection);
        push_opt_f64(out, placement.params.r.map(|v| v.value()));
        push_opt_f64(out, placement.params.c.map(|v| v.value()));
        push_opt_f64(out, placement.params.gm.map(|v| v.value()));
    }
}

fn decode_topology(reader: &mut wire::Reader<'_>) -> Result<Topology, String> {
    let stage1 = decode_stage(reader)?;
    let stage2 = decode_stage(reader)?;
    let stage3 = decode_stage(reader)?;
    let rl = reader.f64()?;
    let cl = reader.f64()?;
    let mut topo = Topology::new(Skeleton {
        stage1,
        stage2,
        stage3,
        rl: Ohms(rl),
        cl: Farads(cl),
    });
    let count = reader.u32()? as usize;
    if count > Position::ALL.len() {
        return Err(format!("placement count {count} exceeds the 7 positions"));
    }
    for _ in 0..count {
        let position = *Position::ALL
            .get(reader.u8()? as usize)
            .ok_or("invalid position index")?;
        let connection = *ConnectionType::ALL
            .get(reader.u8()? as usize)
            .ok_or("invalid connection index")?;
        let params = ConnectionParams {
            r: read_opt_f64(reader)?.map(Ohms),
            c: read_opt_f64(reader)?.map(Farads),
            gm: read_opt_f64(reader)?.map(Siemens),
        };
        topo.place(Placement::new(position, connection, params))
            .map_err(|e| format!("illegal journaled placement: {e}"))?;
    }
    Ok(topo)
}

fn encode_outcome(out: &mut Vec<u8>, outcome: &DesignOutcome) {
    wire::push_u8(out, u8::from(outcome.success));
    encode_topology(out, &outcome.topology);
    match &outcome.report {
        Some(report) => {
            wire::push_u8(out, 1);
            wire::encode_report(out, report);
        }
        None => wire::push_u8(out, 0),
    }
    wire::push_u32(out, outcome.transcript.turns().len() as u32);
    for turn in outcome.transcript.turns() {
        let speaker = match turn.speaker {
            Speaker::Prompter => 0u8,
            Speaker::ArtisanLlm => 1,
            Speaker::Tool => 2,
        };
        wire::push_u8(out, speaker);
        wire::push_u64(out, turn.index as u64);
        wire::push_str(out, &turn.text);
    }
    wire::push_u64(out, outcome.transcript.exchange_count() as u64);
    wire::push_u32(out, outcome.tot_trace.nodes().len() as u32);
    for node in outcome.tot_trace.nodes() {
        wire::push_str(out, &node.question);
        wire::push_u32(out, node.options.len() as u32);
        for option in &node.options {
            wire::push_str(out, option);
        }
        wire::push_str(out, &node.chosen);
        wire::push_str(out, &node.rationale);
    }
    wire::push_u64(out, outcome.iterations as u64);
    let architecture = Architecture::ALL
        .iter()
        .position(|a| *a == outcome.architecture)
        .unwrap_or(0) as u8;
    wire::push_u8(out, architecture);
    wire::push_str(out, &outcome.netlist_text);
}

fn decode_outcome(reader: &mut wire::Reader<'_>) -> Result<DesignOutcome, String> {
    let success = reader.bool()?;
    let topology = decode_topology(reader)?;
    let report = match reader.bool()? {
        true => Some(reader.report()?),
        false => None,
    };
    let turn_count = reader.u32()? as usize;
    if turn_count > reader.remaining() {
        return Err(format!("turn count {turn_count} exceeds payload"));
    }
    let mut turns = Vec::with_capacity(turn_count);
    for _ in 0..turn_count {
        let speaker = match reader.u8()? {
            0 => Speaker::Prompter,
            1 => Speaker::ArtisanLlm,
            2 => Speaker::Tool,
            other => return Err(format!("unknown speaker tag {other}")),
        };
        let index = reader.u64()? as usize;
        let text = reader.str()?;
        turns.push(ChatTurn {
            speaker,
            index,
            text,
        });
    }
    let next_index = reader.u64()? as usize;
    let transcript = ChatTranscript::from_parts(turns, next_index);
    let node_count = reader.u32()? as usize;
    if node_count > reader.remaining() {
        return Err(format!("tot node count {node_count} exceeds payload"));
    }
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let question = reader.str()?;
        let option_count = reader.u32()? as usize;
        if option_count > reader.remaining() {
            return Err(format!("option count {option_count} exceeds payload"));
        }
        let mut options = Vec::with_capacity(option_count);
        for _ in 0..option_count {
            options.push(reader.str()?);
        }
        let chosen = reader.str()?;
        let rationale = reader.str()?;
        nodes.push(TotNode {
            question,
            options,
            chosen,
            rationale,
        });
    }
    let tot_trace = TotTrace::from_nodes(nodes);
    let iterations = reader.u64()? as usize;
    let architecture = *Architecture::ALL
        .get(reader.u8()? as usize)
        .ok_or("invalid architecture index")?;
    let netlist_text = reader.str()?;
    Ok(DesignOutcome {
        success,
        topology,
        report,
        transcript,
        tot_trace,
        iterations,
        architecture,
        netlist_text,
    })
}

fn encode_report(out: &mut Vec<u8>, report: &SessionReport) {
    wire::push_u8(out, u8::from(report.success));
    wire::push_u8(out, u8::from(report.degraded));
    wire::push_u64(out, report.attempts as u64);
    wire::push_u64(out, report.faults_observed as u64);
    wire::push_u32(out, report.events.len() as u32);
    for event in &report.events {
        encode_event(out, event);
    }
    match &report.outcome {
        Some(outcome) => {
            wire::push_u8(out, 1);
            encode_outcome(out, outcome);
        }
        None => wire::push_u8(out, 0),
    }
    wire::push_u64(out, report.simulations as u64);
    wire::push_u64(out, report.llm_steps as u64);
    wire::push_u64(out, report.cache_hits as u64);
    wire::push_u64(out, report.coalesced_waits as u64);
    wire::push_u64(out, report.batched_solves as u64);
    wire::push_f64(out, report.testbed_seconds);
}

fn decode_report(reader: &mut wire::Reader<'_>) -> Result<SessionReport, String> {
    let success = reader.bool()?;
    let degraded = reader.bool()?;
    let attempts = reader.u64()? as usize;
    let faults_observed = reader.u64()? as usize;
    let event_count = reader.u32()? as usize;
    if event_count > reader.remaining() {
        return Err(format!("event count {event_count} exceeds payload"));
    }
    let mut events = Vec::with_capacity(event_count);
    for _ in 0..event_count {
        events.push(decode_event(reader)?);
    }
    let outcome = match reader.bool()? {
        true => Some(decode_outcome(reader)?),
        false => None,
    };
    Ok(SessionReport {
        success,
        degraded,
        attempts,
        faults_observed,
        events,
        outcome,
        simulations: reader.u64()? as usize,
        llm_steps: reader.u64()? as usize,
        cache_hits: reader.u64()? as usize,
        coalesced_waits: reader.u64()? as usize,
        batched_solves: reader.u64()? as usize,
        testbed_seconds: reader.f64()?,
    })
}

/// Lists every `session-*.wal` file under `dir` with its header
/// identity and load state — the recovery report a restarting batch
/// runner prints before resuming. Files whose header cannot be trusted
/// appear with the rejection warning and zeroed identity.
///
/// # Errors
///
/// Propagates directory-read failures; individual unreadable files are
/// reported in their entry, not as an error.
pub fn scan_dir(dir: &Path) -> io::Result<Vec<JournalScan>> {
    let mut scans = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !(name.starts_with("session-") && name.ends_with(".wal")) {
            continue;
        }
        let path = entry.path();
        let mut journal = SessionJournal::detached();
        journal.recording = true;
        let load = match fs::read(&path) {
            Ok(raw) => journal.restore(&raw, None),
            Err(err) => JournalLoad {
                warning: Some(format!("unreadable: {err}")),
                ..JournalLoad::default()
            },
        };
        scans.push(JournalScan {
            path,
            plan_fingerprint: journal.plan_fingerprint,
            seed: journal.seed,
            load,
        });
    }
    scans.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(scans)
}

/// What the journal janitor did in one pass — see [`expire_terminal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpireOutcome {
    /// Journal files examined.
    pub scanned: usize,
    /// Of those, journals whose last record is terminal.
    pub terminal: usize,
    /// Terminal journals removed (old enough).
    pub expired: usize,
    /// Journals that could not be aged or removed (I/O errors on the
    /// individual file; the pass continues past them).
    pub failed: usize,
}

/// The journal janitor: removes terminal `session-*.wal` files whose
/// modification time is at least `max_age` old.
///
/// Only *terminal* journals are candidates — a session that crashed
/// mid-attempt keeps its WAL indefinitely, because that file is the
/// resume point. Terminal journals are pure archive once their report
/// has shipped, so a serving deployment expires them by age (wired
/// into the server's graceful drain and `table3
/// --journal-expire-secs`). `Duration::ZERO` expires every terminal
/// journal immediately.
///
/// # Errors
///
/// Propagates directory-read failures; per-file failures are counted
/// in [`ExpireOutcome::failed`] instead.
pub fn expire_terminal(dir: &Path, max_age: std::time::Duration) -> io::Result<ExpireOutcome> {
    let mut outcome = ExpireOutcome::default();
    let now = std::time::SystemTime::now();
    for scan in scan_dir(dir)? {
        outcome.scanned += 1;
        if !scan.load.terminal {
            continue;
        }
        outcome.terminal += 1;
        let age = match fs::metadata(&scan.path).and_then(|m| m.modified()) {
            Ok(mtime) => now
                .duration_since(mtime)
                .unwrap_or(std::time::Duration::ZERO),
            Err(_) => {
                outcome.failed += 1;
                continue;
            }
        };
        if age < max_age {
            continue;
        }
        match fs::remove_file(&scan.path) {
            Ok(()) => outcome.expired += 1,
            Err(_) => outcome.failed += 1,
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultySim};
    use artisan_sim::Simulator;
    use std::sync::atomic::AtomicU32;

    fn scratch_dir(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "artisan-journal-{tag}-{}-{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("{e}"));
        dir
    }

    /// A finished faulty session's journal, for round-trip tests.
    fn journaled_session(dir: &Path) -> (SessionJournal, SessionReport) {
        let supervisor = Supervisor::default();
        let spec = Spec::g1();
        let seed = 5;
        let fp = plan_fingerprint(&spec, &supervisor, 0);
        let path = dir.join(session_file_name(fp, seed));
        let (mut journal, load) = SessionJournal::open(&path, fp, seed);
        assert_eq!(load, JournalLoad::default());
        let mut sim = FaultySim::new(Simulator::new(), FaultPlan::flaky(3, 0.3));
        let report = supervisor.run_journaled_default_agent(&spec, &mut sim, seed, &mut journal);
        (journal, report)
    }

    #[test]
    fn journal_round_trips_a_finished_session() {
        let dir = scratch_dir("roundtrip");
        let (journal, report) = journaled_session(&dir);
        assert!(journal.appends() >= 2, "attempt + terminal at minimum");
        assert!(journal.io_errors().is_empty(), "{:?}", journal.io_errors());
        let path = journal.path().map(Path::to_path_buf);
        let path = path.unwrap_or_else(|| panic!("durable journal has a path"));
        let (reloaded, load) = SessionJournal::open(&path, journal.plan_fingerprint(), 5);
        assert!(load.warning.is_none(), "{load:?}");
        assert!(load.terminal);
        assert_eq!(load.attempts_loaded, report.attempts);
        let stored = reloaded.terminal().unwrap_or_else(|| panic!("no terminal"));
        assert_eq!(stored.success, report.success);
        assert_eq!(stored.events, report.events);
        assert_eq!(stored.testbed_seconds, report.testbed_seconds);
        let original = report
            .outcome
            .as_ref()
            .unwrap_or_else(|| panic!("no outcome"));
        let restored = stored
            .outcome
            .as_ref()
            .unwrap_or_else(|| panic!("no stored outcome"));
        assert_eq!(restored.topology, original.topology);
        assert_eq!(restored.report, original.report);
        assert_eq!(restored.transcript, original.transcript);
        assert_eq!(restored.tot_trace, original.tot_trace);
        assert_eq!(restored.netlist_text, original.netlist_text);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_or_seed_mismatch_starts_fresh_with_warning() {
        let dir = scratch_dir("mismatch");
        let (journal, _) = journaled_session(&dir);
        let path = journal.path().map(Path::to_path_buf);
        let path = path.unwrap_or_else(|| panic!("durable journal has a path"));
        let fp = journal.plan_fingerprint();
        let (fresh, load) = SessionJournal::open(&path, fp ^ 1, 5);
        assert!(fresh.records().is_empty());
        let warning = load.warning.unwrap_or_else(|| panic!("no fp warning"));
        assert!(warning.contains("fingerprint"), "{warning}");
        let (fresh, load) = SessionJournal::open(&path, fp, 6);
        assert!(fresh.records().is_empty());
        let warning = load.warning.unwrap_or_else(|| panic!("no seed warning"));
        assert!(warning.contains("seed"), "{warning}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_intact_prefix() {
        let dir = scratch_dir("torn");
        let (journal, _) = journaled_session(&dir);
        let path = journal.path().map(Path::to_path_buf);
        let path = path.unwrap_or_else(|| panic!("durable journal has a path"));
        let bytes = fs::read(&path).unwrap_or_else(|e| panic!("{e}"));
        let total_records = journal.records().len();
        // Cut the file mid-way through the last frame: every record but
        // the last must survive, with a truncation warning.
        for cut in [bytes.len() - 1, bytes.len() - 9] {
            fs::write(&path, &bytes[..cut]).unwrap_or_else(|e| panic!("{e}"));
            let (reloaded, load) = SessionJournal::open(&path, journal.plan_fingerprint(), 5);
            assert_eq!(reloaded.records().len(), total_records - 1, "cut {cut}");
            let warning = load
                .warning
                .unwrap_or_else(|| panic!("cut {cut}: no warning"));
            assert!(warning.contains("torn tail"), "{warning}");
            assert!(!load.terminal, "the terminal record was the torn one");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_header_or_flipped_bits_never_panic_or_resume() {
        let dir = scratch_dir("corrupt");
        let (journal, _) = journaled_session(&dir);
        let path = journal.path().map(Path::to_path_buf);
        let path = path.unwrap_or_else(|| panic!("durable journal has a path"));
        let bytes = fs::read(&path).unwrap_or_else(|e| panic!("{e}"));
        let fp = journal.plan_fingerprint();
        // Flip one bit in every header byte: always a full rejection.
        for i in 0..HEADER_LEN {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            fs::write(&path, &corrupt).unwrap_or_else(|e| panic!("{e}"));
            let (reloaded, load) = SessionJournal::open(&path, fp, 5);
            assert!(reloaded.records().is_empty(), "header byte {i}");
            assert!(load.warning.is_some(), "header byte {i} must warn");
        }
        // Flip one bit in every 37th body byte (sampled for speed): the
        // record's frame checksum catches it — loads must never panic,
        // never load more records than the original, and always warn or
        // truncate.
        for i in (HEADER_LEN..bytes.len()).step_by(37) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            fs::write(&path, &corrupt).unwrap_or_else(|e| panic!("{e}"));
            let (reloaded, load) = SessionJournal::open(&path, fp, 5);
            assert!(
                reloaded.records().len() < journal.records().len(),
                "body byte {i} kept every record"
            );
            assert!(load.warning.is_some(), "body byte {i} must warn");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_version_is_rejected() {
        let dir = scratch_dir("version");
        let (journal, _) = journaled_session(&dir);
        let path = journal.path().map(Path::to_path_buf);
        let path = path.unwrap_or_else(|| panic!("durable journal has a path"));
        let mut bytes = fs::read(&path).unwrap_or_else(|e| panic!("{e}"));
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let checksum = wire::fnv1a64(&bytes[..HEADER_BODY_LEN]);
        bytes[HEADER_BODY_LEN..HEADER_LEN].copy_from_slice(&checksum.to_le_bytes());
        fs::write(&path, &bytes).unwrap_or_else(|e| panic!("{e}"));
        let (reloaded, load) = SessionJournal::open(&path, journal.plan_fingerprint(), 5);
        assert!(reloaded.records().is_empty());
        let warning = load.warning.unwrap_or_else(|| panic!("no warning"));
        assert!(warning.contains("version"), "{warning}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_a_silent_fresh_start() {
        let dir = scratch_dir("missing");
        let (journal, load) = SessionJournal::open(&dir.join("session-x.wal"), 1, 2);
        assert!(journal.records().is_empty());
        assert_eq!(load, JournalLoad::default());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_fingerprint_separates_plans() {
        let supervisor = Supervisor::default();
        let a = plan_fingerprint(&Spec::g1(), &supervisor, 0);
        assert_eq!(a, plan_fingerprint(&Spec::g1(), &supervisor, 0));
        assert_ne!(a, plan_fingerprint(&Spec::g2(), &supervisor, 0));
        assert_ne!(a, plan_fingerprint(&Spec::g1(), &supervisor, 1));
        let mut other = Supervisor::default();
        other.retry.max_attempts += 1;
        assert_ne!(a, plan_fingerprint(&Spec::g1(), &other, 0));
        let mut other = Supervisor::default();
        other.budget.max_simulations += 1;
        assert_ne!(a, plan_fingerprint(&Spec::g1(), &other, 0));
        let mut other = Supervisor::default();
        other.cost_model.seconds_per_simulation += 1.0;
        assert_ne!(a, plan_fingerprint(&Spec::g1(), &other, 0));
        // The composed fault-plan fingerprint separates plans too.
        let config = AgentConfig::noiseless();
        let clean = faulted_plan_fingerprint(&Spec::g1(), &supervisor, &config, None);
        let faulted = faulted_plan_fingerprint(
            &Spec::g1(),
            &supervisor,
            &config,
            Some(&FaultPlan::flaky(1, 0.2)),
        );
        assert_ne!(clean, faulted);
    }

    #[test]
    fn scan_dir_reports_terminal_and_foreign_files() {
        let dir = scratch_dir("scan");
        let (journal, report) = journaled_session(&dir);
        fs::write(dir.join("session-bogus.wal"), b"not a journal")
            .unwrap_or_else(|e| panic!("{e}"));
        fs::write(dir.join("unrelated.txt"), b"ignored").unwrap_or_else(|e| panic!("{e}"));
        let scans = scan_dir(&dir).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(scans.len(), 2, "{scans:?}");
        let by_name = |needle: &str| {
            scans
                .iter()
                .find(|s| s.path.to_string_lossy().contains(needle))
                .unwrap_or_else(|| panic!("{needle} not scanned"))
        };
        let bogus = by_name("bogus");
        assert!(bogus.load.warning.is_some());
        let real = by_name(&format!("{:016x}", journal.plan_fingerprint()));
        assert_eq!(real.plan_fingerprint, journal.plan_fingerprint());
        assert_eq!(real.seed, 5);
        assert!(real.load.terminal);
        assert_eq!(real.load.attempts_loaded, report.attempts);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detached_journal_is_free_and_silent() {
        let mut journal = SessionJournal::detached();
        assert!(!journal.is_recording());
        let outcome = journal
            .append(JournalRecord::Attempt(AttemptRecord {
                attempt: 1,
                validated: true,
                events: Vec::new(),
                best: None,
                ledger: CostLedger::new(),
                backend_calls: 0,
            }))
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(outcome.record_bytes, 0);
        assert!(journal.records().is_empty());
        assert_eq!(journal.encoded_len(), 0);
    }
}
