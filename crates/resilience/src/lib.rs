//! Resilience layer for the Artisan design loop: deterministic fault
//! injection and supervised design sessions.
//!
//! The paper's framework assumes a well-behaved Spectre testbed; real
//! EDA infrastructure is not. Licenses drop, solvers hit singular
//! matrices on corner netlists, and batch queues stall. This crate makes
//! those failure modes first-class so the rest of the workspace can be
//! tested against them:
//!
//! - [`FaultySim`] wraps any [`artisan_sim::SimBackend`] and injects
//!   faults from a [`FaultPlan`] — simulator errors, NaN-poisoned
//!   reports, and latency spikes billed to the cost ledger. Every
//!   decision is a pure function of `(plan.seed, call index)`, so a
//!   chaos run replays exactly.
//! - [`Supervisor`] runs whole design sessions under a [`RetryPolicy`]
//!   and a [`SessionBudget`], producing a [`SessionReport`] that records
//!   observed faults, retries, backoff, and whether the result is
//!   `degraded` (best-so-far after the budget ran out) — and that never
//!   reports success for a non-finite or spec-violating design.
//! - [`SessionJournal`] makes supervised sessions crash-safe: every
//!   attempt boundary is checkpointed to an append-only, checksummed
//!   write-ahead journal, and a restarted process fast-forwards past
//!   completed attempts instead of re-buying them (see
//!   [`Supervisor::run_journaled`]).
//! - [`Scheduler`] fans batches of supervised sessions out over a
//!   std-only thread pool ([`artisan_math::ThreadPool`], sized by
//!   `ARTISAN_THREADS`). Each session owns its backend and seed, so
//!   ledgers stay isolated and a batch produces identical
//!   [`SessionReport`]s for every worker count.
//!
//! Backoff and injected latency are billed as *testbed-equivalent
//! seconds* on the [`artisan_sim::cost::CostLedger`], never slept on
//! the wall clock: the whole stack stays deterministic and replayable
//! (see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use artisan_resilience::{FaultPlan, FaultySim, Supervisor};
//! use artisan_sim::{Simulator, Spec};
//!
//! let mut sim = FaultySim::new(Simulator::new(), FaultPlan::flaky(7, 0.2));
//! let report = Supervisor::default().run(&Spec::g1(), &mut sim, 0);
//! assert!(report.attempts >= 1);
//! if report.success {
//!     assert!(report.outcome.is_some());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod journal;
pub mod scheduler;
pub mod supervisor;

pub use fault::{FaultKind, FaultPlan, FaultRecord, FaultySim};
pub use journal::{
    agent_config_salt, expire_terminal, faulted_plan_fingerprint, journal_dir_from_env,
    plan_fingerprint, scan_dir, session_file_name, AppendOutcome, AttemptRecord, ExpireOutcome,
    JournalLoad, JournalOutcome, JournalRecord, JournalScan, SessionJournal, JOURNAL_DIR_ENV,
};
pub use scheduler::{JournaledBatch, ScheduledSession, Scheduler};
pub use supervisor::{RetryPolicy, SessionBudget, SessionEvent, SessionReport, Supervisor};
