//! Deterministic fault injection over any simulation backend.
//!
//! [`FaultySim`] sits between a caller and an inner [`SimBackend`] and
//! decides, per analysis call, whether to corrupt it. Every decision is
//! a pure hash of `(plan.seed, call index)` — no hidden RNG state — so
//! the same plan against the same call sequence injects the same faults,
//! which is what makes chaos tests and postmortem replays exact.
//!
//! # Stacking with the simulation cache
//!
//! When combining with `artisan_sim::CachedSim`, stack the fault layer
//! **outside**: `FaultySim<CachedSim<B>>`. Every analysis call then
//! still reaches the fault layer and advances the per-call dice exactly
//! once, so fault call-indices — and therefore chaos exact replay — are
//! unaffected by which calls the cache happens to serve. The inverted
//! stacking, `CachedSim<FaultySim<B>>`, is unsupported: a cache hit
//! would skip the inner fault roll, shifting every later decision, and
//! a first-call report could be memoized and replayed past faults that
//! were meant to perturb it. For the same reason `FaultySim` keeps the
//! trait's *serial-loop* `analyze_batch` (made explicit below): batch
//! items must roll the dice one call at a time, in input order.
//!
//! The PVT corner layer obeys the same discipline: the production stack
//! is `FaultySim<CornerSim<CachedSim<B>>>` — faults outermost, corners
//! outside the report cache. `CornerSim` makes exactly one inner call
//! per outer call, so the fault dice advance identically with or
//! without corners. An injected error drops the whole observation
//! (nominal report and verdict alike); a poisoned report NaNs the
//! *nominal* metrics, which already fails supervised validation, so a
//! clean-looking worst-case verdict can never launder a poisoned
//! nominal. See the "Stacking rule" section in `artisan_sim::corners`.

use artisan_circuit::{Netlist, Topology};
use artisan_math::MathError;
use artisan_sim::cost::CostLedger;
use artisan_sim::{wire, AnalysisReport, Result, SimBackend, SimError};

/// What kind of corruption a call suffered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The solve failed as a singular/ill-conditioned system
    /// ([`SimError::IllConditioned`]) — transient, retryable.
    IllConditioned,
    /// A numerical kernel failed ([`SimError::Math`]) — transient.
    MathFault,
    /// The backend claimed the gain never crossed unity
    /// ([`SimError::NoUnityCrossing`]).
    NoUnityCrossing,
    /// The backend rejected the netlist ([`SimError::BadNetlist`]).
    BadNetlist,
    /// The analysis "succeeded" but its metrics came back NaN/∞
    /// poisoned — the nastiest failure, because a +∞ gain *passes* a
    /// naive `>` spec check.
    PoisonedReport,
    /// The call stalled: extra testbed seconds billed to the ledger,
    /// result otherwise untouched.
    Latency,
}

impl FaultKind {
    /// Short stable name for logs and notes.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::IllConditioned => "ill-conditioned",
            FaultKind::MathFault => "math-fault",
            FaultKind::NoUnityCrossing => "no-unity-crossing",
            FaultKind::BadNetlist => "bad-netlist",
            FaultKind::PoisonedReport => "poisoned-report",
            FaultKind::Latency => "latency",
        }
    }
}

/// One injected fault, recorded for the session log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Zero-based analysis-call index the fault hit.
    pub call: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// A deterministic, seed-driven schedule of faults.
///
/// Rates are per-call probabilities in `[0, 1]`, evaluated from
/// independent hash draws: a call first rolls for latency (additive —
/// the call still proceeds), then for an injected error, then for
/// report poisoning. `persistent_from` switches the plan from
/// *transient* faults to a *persistent* outage: from that call index on,
/// every analysis fails, which is how a dead license server or a
/// crashed solver farm presents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every per-call decision.
    pub seed: u64,
    /// Probability a call fails with an injected [`SimError`].
    pub error_rate: f64,
    /// Probability a successful call's report comes back NaN/∞ poisoned.
    pub nan_rate: f64,
    /// Probability a call is hit by a latency spike.
    pub latency_rate: f64,
    /// Extra testbed seconds one latency spike bills.
    pub latency_seconds: f64,
    /// When set, every call at or after this index fails (persistent
    /// outage), regardless of `error_rate`.
    pub persistent_from: Option<u64>,
}

impl FaultPlan {
    /// No faults at all: the wrapper is a transparent pass-through.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            error_rate: 0.0,
            nan_rate: 0.0,
            latency_rate: 0.0,
            latency_seconds: 0.0,
            persistent_from: None,
        }
    }

    /// A flaky testbed: errors, poisoned reports, and 10-second stalls,
    /// each at `rate` per call.
    pub fn flaky(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            error_rate: rate,
            nan_rate: rate,
            latency_rate: rate,
            latency_seconds: 10.0,
            persistent_from: None,
        }
    }

    /// Every report comes back NaN/∞ poisoned — the adversarial case
    /// the chaos suite uses to prove poisoned metrics can never be
    /// reported as success.
    pub fn poisoned(seed: u64) -> Self {
        FaultPlan {
            seed,
            error_rate: 0.0,
            nan_rate: 1.0,
            latency_rate: 0.0,
            latency_seconds: 0.0,
            persistent_from: None,
        }
    }

    /// A testbed that dies permanently at call `from`.
    pub fn outage_from(seed: u64, from: u64) -> Self {
        FaultPlan {
            seed,
            error_rate: 0.0,
            nan_rate: 0.0,
            latency_rate: 0.0,
            latency_seconds: 0.0,
            persistent_from: Some(from),
        }
    }

    /// FNV-64 fingerprint of every field (rates as `f64` bit patterns),
    /// folded into the session-journal plan fingerprint so a journal
    /// written under one fault schedule can never resume a session
    /// running a different one.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(64);
        wire::push_u64(&mut bytes, self.seed);
        wire::push_f64(&mut bytes, self.error_rate);
        wire::push_f64(&mut bytes, self.nan_rate);
        wire::push_f64(&mut bytes, self.latency_rate);
        wire::push_f64(&mut bytes, self.latency_seconds);
        match self.persistent_from {
            Some(from) => {
                wire::push_u8(&mut bytes, 1);
                wire::push_u64(&mut bytes, from);
            }
            None => wire::push_u8(&mut bytes, 0),
        }
        wire::fnv1a64(&bytes)
    }
}

/// SplitMix64 finalizer: a well-mixed pure hash of one word.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from `(seed, call, salt)`.
fn unit(seed: u64, call: u64, salt: u64) -> f64 {
    let h = mix(seed ^ mix(call ^ mix(salt)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A fault-injecting wrapper around any simulation backend.
///
/// Injected errors still bill one simulation to the ledger — a failed
/// Spectre run consumes testbed time all the same — and latency spikes
/// bill [`FaultPlan::latency_seconds`] as penalty seconds. Injected
/// faults are appended to [`FaultySim::fault_log`] and surfaced as
/// human-readable notes through [`SimBackend::drain_fault_notes`], so a
/// supervisor observes them through the trait without downcasting.
#[derive(Debug, Clone)]
pub struct FaultySim<B> {
    inner: B,
    plan: FaultPlan,
    calls: u64,
    log: Vec<FaultRecord>,
    notes: Vec<String>,
}

impl<B: SimBackend> FaultySim<B> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        FaultySim {
            inner,
            plan,
            calls: 0,
            log: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Analysis calls seen so far (including faulted ones).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Every fault injected so far, in call order.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// Borrow of the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps the inner backend, discarding the fault state.
    pub fn into_inner(self) -> B {
        self.inner
    }

    fn record(&mut self, call: u64, kind: FaultKind) {
        self.log.push(FaultRecord { call, kind });
        self.notes
            .push(format!("injected {} at call {call}", kind.name()));
    }

    /// Rolls the per-call dice: bills latency if drawn, then returns the
    /// corruption (if any) for this call.
    fn decide(&mut self) -> (u64, Option<FaultKind>) {
        let call = self.calls;
        self.calls += 1;
        let p = self.plan;
        if p.latency_rate > 0.0 && unit(p.seed, call, 1) < p.latency_rate {
            self.inner
                .ledger_mut()
                .record_penalty_seconds(p.latency_seconds);
            self.record(call, FaultKind::Latency);
        }
        if p.persistent_from.is_some_and(|from| call >= from) {
            return (call, Some(FaultKind::IllConditioned));
        }
        if p.error_rate > 0.0 && unit(p.seed, call, 2) < p.error_rate {
            let kind = match mix(p.seed ^ mix(call ^ 0x5eed)) % 4 {
                0 => FaultKind::IllConditioned,
                1 => FaultKind::MathFault,
                2 => FaultKind::NoUnityCrossing,
                _ => FaultKind::BadNetlist,
            };
            return (call, Some(kind));
        }
        if p.nan_rate > 0.0 && unit(p.seed, call, 3) < p.nan_rate {
            return (call, Some(FaultKind::PoisonedReport));
        }
        (call, None)
    }

    /// Turns a drawn fault into the injected error, billing the wasted
    /// simulation.
    fn inject_error(&mut self, call: u64, kind: FaultKind) -> SimError {
        self.inner.ledger_mut().record_simulation();
        self.record(call, kind);
        match kind {
            FaultKind::MathFault => SimError::Math(MathError::Singular(call as usize)),
            FaultKind::NoUnityCrossing => SimError::NoUnityCrossing,
            FaultKind::BadNetlist => {
                SimError::BadNetlist("fault injection: netlist corrupted in transit".into())
            }
            // IllConditioned doubles as the persistent-outage error.
            _ => SimError::IllConditioned { frequency: 0.0 },
        }
    }

    fn poison(&mut self, call: u64, mut report: AnalysisReport) -> AnalysisReport {
        self.record(call, FaultKind::PoisonedReport);
        // The dangerous direction: +∞ *passes* `>` spec constraints, so
        // an unsanitized consumer would call this design a success.
        report.performance.gain = artisan_circuit::units::Decibels(f64::INFINITY);
        report.performance.pm = artisan_circuit::units::Degrees(f64::INFINITY);
        report.performance.fom = f64::NAN;
        report
    }
}

impl<B: SimBackend> SimBackend for FaultySim<B> {
    fn analyze_topology(&mut self, topo: &Topology) -> Result<AnalysisReport> {
        let (call, fault) = self.decide();
        match fault {
            None => self.inner.analyze_topology(topo),
            Some(FaultKind::PoisonedReport) => {
                let r = self.inner.analyze_topology(topo)?;
                Ok(self.poison(call, r))
            }
            Some(kind) => Err(self.inject_error(call, kind)),
        }
    }

    fn analyze_netlist(&mut self, netlist: &Netlist) -> Result<AnalysisReport> {
        let (call, fault) = self.decide();
        match fault {
            None => self.inner.analyze_netlist(netlist),
            Some(FaultKind::PoisonedReport) => {
                let r = self.inner.analyze_netlist(netlist)?;
                Ok(self.poison(call, r))
            }
            Some(kind) => Err(self.inject_error(call, kind)),
        }
    }

    fn analyze_batch(&mut self, topos: &[Topology]) -> Vec<Result<AnalysisReport>> {
        // Deliberately the serial loop, NOT a forward to the inner
        // backend's batch override: each item must roll the fault dice
        // exactly once, in input order, so call indices — and chaos
        // exact replay — match hand-written iteration over
        // `analyze_topology`. The inner backend's parallel fan-out is
        // only reachable below the fault layer, where it cannot reorder
        // decisions (see the module docs on stacking).
        topos.iter().map(|t| self.analyze_topology(t)).collect()
    }

    fn ledger(&self) -> &CostLedger {
        self.inner.ledger()
    }

    fn ledger_mut(&mut self) -> &mut CostLedger {
        self.inner.ledger_mut()
    }

    fn drain_fault_notes(&mut self) -> Vec<String> {
        std::mem::take(&mut self.notes)
    }

    fn calls_made(&self) -> u64 {
        self.calls
    }

    fn fast_forward_calls(&mut self, calls: u64) {
        // The dice are a pure hash of (seed, call index): restoring the
        // counter restores the entire future fault schedule. The
        // journal resume path replays a crashed session's remaining
        // attempts against exactly the faults they would have seen.
        self.calls = calls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artisan_sim::Simulator;

    fn nmc() -> Topology {
        Topology::nmc_example()
    }

    #[test]
    fn no_fault_plan_is_transparent() {
        let mut plain = Simulator::new();
        let expected = plain
            .analyze_topology(&nmc())
            .unwrap_or_else(|e| panic!("{e}"));
        let mut faulty = FaultySim::new(Simulator::new(), FaultPlan::none());
        let got = faulty
            .analyze_topology(&nmc())
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(expected.performance, got.performance);
        assert!(faulty.fault_log().is_empty());
        assert_eq!(faulty.calls(), 1);
        assert_eq!(faulty.ledger().simulations(), 1);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let run = |seed| {
            let mut sim = FaultySim::new(Simulator::new(), FaultPlan::flaky(seed, 0.4));
            for _ in 0..32 {
                let _ = sim.analyze_topology(&nmc());
            }
            sim.fault_log().to_vec()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds, identical schedule");
    }

    #[test]
    fn flaky_plan_injects_all_kinds_eventually() {
        let mut sim = FaultySim::new(Simulator::new(), FaultPlan::flaky(3, 0.5));
        for _ in 0..200 {
            let _ = sim.analyze_topology(&nmc());
        }
        let kinds: Vec<FaultKind> = sim.fault_log().iter().map(|r| r.kind).collect();
        for kind in [
            FaultKind::IllConditioned,
            FaultKind::MathFault,
            FaultKind::NoUnityCrossing,
            FaultKind::BadNetlist,
            FaultKind::PoisonedReport,
            FaultKind::Latency,
        ] {
            assert!(kinds.contains(&kind), "{} never injected", kind.name());
        }
    }

    #[test]
    fn poisoned_plan_returns_nonfinite_reports() {
        let mut sim = FaultySim::new(Simulator::new(), FaultPlan::poisoned(0));
        let r = sim
            .analyze_topology(&nmc())
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(!r.performance.is_finite());
        assert!(r.performance.gain.value().is_infinite());
    }

    #[test]
    fn outage_kills_every_call_after_onset() {
        let mut sim = FaultySim::new(Simulator::new(), FaultPlan::outage_from(0, 2));
        assert!(sim.analyze_topology(&nmc()).is_ok());
        assert!(sim.analyze_topology(&nmc()).is_ok());
        for _ in 0..5 {
            let e = sim.analyze_topology(&nmc());
            assert!(matches!(e, Err(SimError::IllConditioned { .. })), "{e:?}");
        }
    }

    #[test]
    fn latency_bills_penalty_seconds_not_wall_clock() {
        let plan = FaultPlan {
            latency_rate: 1.0,
            latency_seconds: 25.0,
            ..FaultPlan::none()
        };
        let mut sim = FaultySim::new(Simulator::new(), plan);
        let _ = sim.analyze_topology(&nmc());
        assert_eq!(sim.ledger().penalty_seconds(), 25.0);
        let _ = sim.analyze_topology(&nmc());
        assert_eq!(sim.ledger().penalty_seconds(), 50.0);
    }

    #[test]
    fn injected_errors_still_bill_a_simulation() {
        let plan = FaultPlan {
            error_rate: 1.0,
            ..FaultPlan::none()
        };
        let mut sim = FaultySim::new(Simulator::new(), plan);
        assert!(sim.analyze_topology(&nmc()).is_err());
        assert_eq!(sim.ledger().simulations(), 1);
    }

    #[test]
    fn notes_drain_through_the_trait() {
        let mut sim = FaultySim::new(Simulator::new(), FaultPlan::poisoned(0));
        let _ = sim.analyze_topology(&nmc());
        let notes = sim.drain_fault_notes();
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("poisoned-report"), "{}", notes[0]);
        assert!(sim.drain_fault_notes().is_empty(), "notes drained twice");
    }

    #[test]
    fn netlist_path_faults_identically() {
        let netlist = nmc().elaborate().unwrap_or_else(|e| panic!("{e}"));
        let plan = FaultPlan {
            error_rate: 1.0,
            ..FaultPlan::none()
        };
        let mut sim = FaultySim::new(Simulator::new(), plan);
        assert!(sim.analyze_netlist(&netlist).is_err());
        assert_eq!(sim.fault_log().len(), 1);
    }

    #[test]
    fn batch_faulting_matches_serial_faulting() {
        // The batch path must advance the fault dice exactly like the
        // hand-written loop: same outcomes, same call indices, same log.
        let topos = vec![nmc(), Topology::dfc_example(), nmc(), nmc()];
        let shape = |r: &Result<AnalysisReport>| match r {
            Ok(rep) => format!("ok finite={}", rep.performance.is_finite()),
            Err(e) => format!("err {e}"),
        };
        let mut serial = FaultySim::new(Simulator::new(), FaultPlan::flaky(21, 0.6));
        let serial_out: Vec<String> = topos
            .iter()
            .map(|t| shape(&serial.analyze_topology(t)))
            .collect();
        let mut batch = FaultySim::new(Simulator::new(), FaultPlan::flaky(21, 0.6));
        let batch_out: Vec<String> = batch.analyze_batch(&topos).iter().map(shape).collect();
        assert_eq!(batch_out, serial_out);
        assert_eq!(batch.fault_log(), serial.fault_log());
        assert_eq!(batch.calls(), serial.calls());
    }

    #[test]
    fn fast_forward_restores_the_fault_schedule() {
        // Run 40 calls straight through, then replay the last 25 from a
        // fresh wrapper fast-forwarded to call 15: the tail outcomes and
        // fault records must match the uninterrupted run exactly.
        let plan = FaultPlan::flaky(99, 0.5);
        let shape = |r: Result<AnalysisReport>| match r {
            Ok(rep) => format!("ok finite={}", rep.performance.is_finite()),
            Err(e) => format!("err {e}"),
        };
        let mut clean = FaultySim::new(Simulator::new(), plan);
        let clean_out: Vec<String> = (0..40)
            .map(|_| shape(clean.analyze_topology(&nmc())))
            .collect();
        let mut resumed = FaultySim::new(Simulator::new(), plan);
        resumed.fast_forward_calls(15);
        assert_eq!(resumed.calls_made(), 15);
        let tail: Vec<String> = (0..25)
            .map(|_| shape(resumed.analyze_topology(&nmc())))
            .collect();
        assert_eq!(tail, clean_out[15..]);
        let clean_tail: Vec<&FaultRecord> =
            clean.fault_log().iter().filter(|r| r.call >= 15).collect();
        let resumed_log: Vec<&FaultRecord> = resumed.fault_log().iter().collect();
        assert_eq!(resumed_log, clean_tail);
    }

    #[test]
    fn plan_fingerprint_separates_plans() {
        let a = FaultPlan::flaky(1, 0.25);
        assert_eq!(a.fingerprint(), FaultPlan::flaky(1, 0.25).fingerprint());
        // Every field participates.
        assert_ne!(a.fingerprint(), FaultPlan::flaky(2, 0.25).fingerprint());
        assert_ne!(a.fingerprint(), FaultPlan::flaky(1, 0.26).fingerprint());
        assert_ne!(a.fingerprint(), FaultPlan::none().fingerprint());
        assert_ne!(
            FaultPlan::outage_from(1, 5).fingerprint(),
            FaultPlan::outage_from(1, 6).fingerprint()
        );
        // Some(0) and None must differ (the tag byte matters).
        let mut zero_onset = FaultPlan::none();
        zero_onset.persistent_from = Some(0);
        assert_ne!(zero_onset.fingerprint(), FaultPlan::none().fingerprint());
    }

    #[test]
    fn fault_schedule_survives_an_inner_cache() {
        // FaultySim<CachedSim<B>> is the supported stacking: the dice
        // roll before the cache can answer, so hits and misses below
        // must not perturb the fault schedule.
        use artisan_sim::{CachedSim, SimCache};
        let run = |cache: Option<std::sync::Arc<SimCache>>| {
            let mut sim: Box<dyn SimBackend> = match cache {
                Some(c) => Box::new(FaultySim::new(
                    CachedSim::new(Simulator::new(), c),
                    FaultPlan::flaky(7, 0.5),
                )),
                None => Box::new(FaultySim::new(Simulator::new(), FaultPlan::flaky(7, 0.5))),
            };
            let mut outcomes = Vec::new();
            for _ in 0..24 {
                outcomes.push(match sim.analyze_topology(&nmc()) {
                    Ok(r) => format!("ok finite={}", r.performance.is_finite()),
                    Err(e) => format!("err {e}"),
                });
            }
            (outcomes, sim.drain_fault_notes())
        };
        let cache = SimCache::shared(64);
        let cached = run(Some(std::sync::Arc::clone(&cache)));
        let plain = run(None);
        assert_eq!(cached, plain, "cache below the fault layer changed faults");
        let stats = cache.stats();
        assert!(stats.hits > 0, "repeat workload never hit: {stats}");
    }
}
