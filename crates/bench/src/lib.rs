//! Shared helpers for the benchmark harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper (see `DESIGN.md`'s per-experiment index); the criterion benches
//! in `benches/` measure the kernels those binaries are built from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod netgen;

/// Parses a `--flag value` style argument from `std::env::args`.
///
/// # Example
///
/// ```
/// let trials = artisan_bench::arg_or("--trials", 10usize);
/// assert!(trials >= 1);
/// ```
pub fn arg_or<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True when `--quick` was passed (reduced budgets for smoke runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    #[test]
    fn arg_parsing_defaults() {
        assert_eq!(super::arg_or("--nope", 7usize), 7);
    }
}
