//! Deterministic behavioural benchmark netlists for the sparse/dense
//! MNA crossover study.
//!
//! The paper's own circuits top out at a handful of nodes (the NMC
//! example eliminates to a 3×3 system), which is exactly where dense LU
//! wins. To measure where the sparse CSR + symbolic-LU tier pays off,
//! the benches need *structurally honest* larger networks: long
//! behavioural gain ladders with local RC loads, occasional bridging
//! capacitors, and long-range feedback resistors — the topology family
//! a multi-stage compensation search walks through, scaled up to
//! dimensions 20–200.
//!
//! Everything here is deterministic (no RNG): a generator call with the
//! same `dim` always produces byte-identical netlist text, so bench
//! legs and CI smoke runs compare like with like.

use artisan_circuit::Netlist;

/// Per-stage transconductance (S). With [`STAGE_R`] this sets the
/// per-stage DC gain to `gm·R = 2`, keeping the end-to-end gain of even
/// a 200-stage ladder within `f64` range (2^200 ≈ 1.6e60 ≪ 1.8e308).
pub const STAGE_GM: f64 = 2.0e-4;

/// Per-stage load resistance (Ω).
pub const STAGE_R: f64 = 1.0e4;

/// Per-stage load capacitance (F) — parasitic-pole territory, matching
/// the recipe examples' `Cp` scale.
pub const STAGE_C: f64 = 2.0e-12;

/// Bridging (compensation-style) capacitance (F), stamped every
/// [`BRIDGE_EVERY`] stages back across three stages.
pub const BRIDGE_C: f64 = 5.0e-13;

/// Long-range feedback resistance (Ω), stamped every [`FEEDBACK_EVERY`]
/// stages back across five.
pub const FEEDBACK_R: f64 = 1.0e6;

/// A bridging capacitor lands on every stage index divisible by this.
pub const BRIDGE_EVERY: usize = 3;

/// A feedback resistor lands on every stage index divisible by this.
pub const FEEDBACK_EVERY: usize = 5;

/// Name of stage `k` of a `dim`-stage ladder: internal stages are
/// `x{k}`, the last is `out` (the simulator's probe node).
fn node(k: usize, dim: usize) -> String {
    if k == dim - 1 {
        "out".to_string()
    } else {
        format!("x{k}")
    }
}

/// Netlist text of a `dim`-stage behavioural gain ladder.
///
/// Stage `k` is a VCCS driven from the previous node into node `k`,
/// loaded by `R‖C` to ground. Every [`BRIDGE_EVERY`]-th stage gets a
/// bridging capacitor back to stage `k−3`; every
/// [`FEEDBACK_EVERY`]-th a feedback resistor back to stage `k−5`. The
/// MNA system of the result has dimension `dim` (the driven input node
/// is eliminated into the RHS) with `O(dim)` nonzeros — ~4 entries per
/// row — so the dense solve is `O(dim³)` where the sparse one stays
/// effectively linear.
///
/// # Panics
///
/// Panics if `dim < 2` (a ladder needs an internal node and `out`).
#[must_use]
pub fn ladder_text(dim: usize) -> String {
    assert!(dim >= 2, "ladder needs at least 2 stages, got {dim}");
    let mut text = format!("* behavioural gain ladder, {dim} stages\n");
    let mut prev = "in".to_string();
    for k in 0..dim {
        let n = node(k, dim);
        text.push_str(&format!("G{k} {n} 0 {prev} 0 {STAGE_GM:e}\n"));
        text.push_str(&format!("R{k} {n} 0 {STAGE_R:e}\n"));
        text.push_str(&format!("C{k} {n} 0 {STAGE_C:e}\n"));
        if k % BRIDGE_EVERY == 0 && k >= BRIDGE_EVERY {
            let back = node(k - BRIDGE_EVERY, dim);
            text.push_str(&format!("Cb{k} {n} {back} {BRIDGE_C:e}\n"));
        }
        if k % FEEDBACK_EVERY == 0 && k >= FEEDBACK_EVERY {
            let back = node(k - FEEDBACK_EVERY, dim);
            text.push_str(&format!("Rf{k} {n} {back} {FEEDBACK_R:e}\n"));
        }
        prev = n;
    }
    text.push_str(".end\n");
    text
}

/// Parses [`ladder_text`] into a [`Netlist`].
///
/// # Panics
///
/// Panics if the generated text fails to parse — a generator bug, not
/// an input condition.
#[must_use]
// A parse failure here is a generator bug; benches should abort loudly.
#[allow(clippy::expect_used)]
pub fn ladder(dim: usize) -> Netlist {
    Netlist::parse(&ladder_text(dim)).expect("generated ladder parses")
}

/// Explicit load capacitance (F) the corner benches scale — the `CL`
/// element of [`loaded_ladder_text`], matching the paper's 10 pF loads.
pub const LOAD_C: f64 = 1.0e-11;

/// [`ladder_text`] plus an explicit `CL` load capacitor on `out`.
///
/// The PVT corner engine scales the element *labelled* `CL` on its
/// load axis (see `artisan_sim::corners`), so corner benches need a
/// ladder that actually carries one. Deterministic like the base
/// generator; the plain [`ladder`] stays `CL`-free so existing sweeps
/// are untouched.
///
/// # Panics
///
/// Panics if `dim < 2`, as [`ladder_text`].
#[must_use]
// A missing .end suffix would be a generator bug; abort loudly.
#[allow(clippy::expect_used)]
pub fn loaded_ladder_text(dim: usize) -> String {
    let mut text = ladder_text(dim);
    let body = text
        .strip_suffix(".end\n")
        .expect("ladder_text ends with .end");
    text = format!("{body}CL out 0 {LOAD_C:e}\n.end\n");
    text
}

/// Parses [`loaded_ladder_text`] into a [`Netlist`].
///
/// # Panics
///
/// Panics if the generated text fails to parse — a generator bug, not
/// an input condition.
#[must_use]
// A parse failure here is a generator bug; benches should abort loudly.
#[allow(clippy::expect_used)]
pub fn loaded_ladder(dim: usize) -> Netlist {
    Netlist::parse(&loaded_ladder_text(dim)).expect("generated loaded ladder parses")
}

/// The dimension sweep the crossover benches walk: below, at, and well
/// above the dense/sparse crossover.
pub const CROSSOVER_DIMS: [usize; 4] = [8, 50, 120, 200];

#[cfg(test)]
mod tests {
    use super::*;
    use artisan_sim::mna::{MnaMode, MnaSystem};

    #[test]
    fn ladders_are_deterministic_and_solve_in_both_modes() {
        for dim in [2usize, 20, 50] {
            assert_eq!(ladder_text(dim), ladder_text(dim), "dim {dim} text drifted");
            let netlist = ladder(dim);
            let dense = MnaSystem::with_mode(&netlist, MnaMode::Dense).expect("dense builds");
            let sparse = MnaSystem::with_mode(&netlist, MnaMode::Sparse).expect("sparse builds");
            assert_eq!(dense.dim(), dim, "source elimination leaves dim nodes");
            let s = artisan_math::Complex64::jomega(2.0e6 * std::f64::consts::PI);
            let hd = dense.transfer(s).expect("dense solves");
            let hs = sparse.transfer(s).expect("sparse solves");
            assert!(
                (hd - hs).abs() <= 1e-9 * hd.abs().max(1e-300),
                "dim {dim}: dense {hd:?} vs sparse {hs:?}"
            );
        }
    }

    #[test]
    fn loaded_ladders_carry_cl_and_leave_the_base_untouched() {
        for dim in [2usize, 20, 50] {
            let loaded = loaded_ladder(dim);
            let cl = loaded.find("CL").expect("loaded ladder has a CL");
            assert_eq!(cl.value(), LOAD_C);
            // Same elements as the base ladder, plus exactly CL.
            let base = ladder(dim);
            assert_eq!(loaded.elements().len(), base.elements().len() + 1);
            assert!(base.find("CL").is_none(), "base ladder grew a CL");
            let sys = MnaSystem::new(&loaded).expect("loaded ladder builds");
            assert_eq!(sys.dim(), dim);
        }
    }

    #[test]
    fn ladders_stay_sparse_as_they_grow() {
        let netlist = ladder(200);
        let sys = MnaSystem::with_mode(&netlist, MnaMode::Sparse).expect("builds");
        let nnz = sys.sparse_nnz().expect("sparse");
        assert!(
            nnz * 4 <= 200 * 200,
            "200-stage ladder not sparse enough: {nnz} nonzeros"
        );
        // And the transfer stays finite: gm·R = 2 per stage keeps even
        // the 200-stage DC gain ≈ 2^200 far inside f64 range.
        let h0 = sys.transfer(artisan_math::Complex64::ZERO).expect("solves");
        assert!(h0.abs().is_finite() && h0.abs() > 1.0);
    }
}
