//! Regenerates **Table 3** (the performance comparison): BOBO, RLBO,
//! GPT-4, Llama2, and Artisan over the five Table 2 groups, `--trials`
//! seeded repetitions each. Metrics are averaged over successful trials
//! (the paper's convention); the Time column is testbed-equivalent (see
//! `artisan-sim::cost`). Also prints the §4.2 speedup headline.
//!
//! Run with:
//!   `cargo run --release -p artisan-bench --bin table3 [--trials 10] [--quick]`
//!
//! `--quick` cuts the baseline budgets 10× for a fast smoke run.

use artisan_bench::{arg_or, quick_mode};
use artisan_core::experiment::{ExperimentConfig, Table3};

fn main() {
    let trials: usize = arg_or("--trials", 10);
    let mut config = ExperimentConfig {
        trials,
        seed: arg_or("--seed", 2024),
        ..ExperimentConfig::default()
    };
    if quick_mode() {
        config.bobo.budget = 45;
        config.bobo.initial_samples = 15;
        config.rlbo.budget = 50;
        config.artisan = artisan_core::ArtisanOptions {
            dataset: None,
            ..artisan_core::ArtisanOptions::paper_default()
        };
    }
    let table = Table3::run(&config);
    println!("{table}");
}
