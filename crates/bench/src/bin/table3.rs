//! Regenerates **Table 3** (the performance comparison): BOBO, RLBO,
//! GPT-4, Llama2, and Artisan over the five Table 2 groups, `--trials`
//! seeded repetitions each. Metrics are averaged over successful trials
//! (the paper's convention); the Time column is testbed-equivalent (see
//! `artisan-sim::cost`). Also prints the §4.2 speedup headline.
//!
//! Run with:
//!   `cargo run --release -p artisan-bench --bin table3 [--trials 10] [--quick] [--cache N] [--supervised] [--fault-rate R] [--robustness R1,R2,...] [--journal DIR]`
//!
//! `--quick` cuts the baseline budgets 10× for a fast smoke run.
//! `--cache N` runs every trial against one shared simulation cache of
//! `N` fingerprints (0, the default, runs uncached) and appends the
//! cache accounting below the table; with `ARTISAN_SIM_CACHE_DIR` set,
//! the cache is warm-started from that directory's snapshot and saved
//! back at the end. `--supervised` runs the Artisan rows as supervised
//! sessions and prints each trial's session cost line.
//!
//! Robustness (implies `--supervised`):
//! `--fault-rate R` wraps every Artisan trial's backend in a
//! deterministic `FaultySim` injecting transient errors/poison at rate
//! `R`. `--robustness R1,R2,...` appends the robustness companion
//! table (success rate and billed-cost inflation per swept fault rate).
//!
//! Durability (implies `--supervised`): `--journal DIR` (or the
//! `ARTISAN_JOURNAL_DIR` environment variable) keeps a crash-safe
//! write-ahead journal per Artisan trial under `DIR`; re-running the
//! same configuration resumes finished sessions instead of re-buying
//! them. Journal/snapshot load warnings are surfaced on stderr.
//! `--journal-expire-secs S` runs the journal janitor after the tables:
//! finished (terminal) journals older than `S` seconds are deleted,
//! in-flight journals are never touched (`S = 0` sweeps every finished
//! journal immediately).

use artisan_bench::{arg_or, quick_mode};
use artisan_core::experiment::{ExperimentConfig, RobustnessReport, Table3};
use artisan_resilience::{expire_terminal, journal_dir_from_env, FaultPlan, Supervisor};
use artisan_sim::fingerprint::config_salt;
use artisan_sim::{AnalysisConfig, SimCache};
use std::path::PathBuf;

fn main() {
    let trials: usize = arg_or("--trials", 10);
    let cache_capacity: usize = arg_or("--cache", 0);
    let fault_rate: f64 = arg_or("--fault-rate", 0.0);
    let robustness: String = arg_or("--robustness", String::new());
    let journal_flag: String = arg_or("--journal", String::new());
    let journal_dir: Option<PathBuf> = if journal_flag.is_empty() {
        journal_dir_from_env()
    } else {
        Some(PathBuf::from(journal_flag))
    };
    let supervised = std::env::args().any(|a| a == "--supervised")
        || fault_rate > 0.0
        || !robustness.is_empty()
        || journal_dir.is_some();
    let mut config = ExperimentConfig {
        trials,
        seed: arg_or("--seed", 2024),
        ..ExperimentConfig::default()
    };
    if quick_mode() {
        config.bobo.budget = 45;
        config.bobo.initial_samples = 15;
        config.rlbo.budget = 50;
        config.artisan = artisan_core::ArtisanOptions {
            dataset: None,
            ..artisan_core::ArtisanOptions::paper_default()
        };
    }
    if supervised {
        config.supervision = Some(Supervisor::default());
    }
    if fault_rate > 0.0 {
        config.fault_plan = Some(FaultPlan::flaky(config.seed, fault_rate));
    }
    if let Some(dir) = &journal_dir {
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("journal dir {} unusable: {err}", dir.display());
        } else {
            config.journal_dir = Some(dir.clone());
        }
    }
    let table = if cache_capacity > 0 {
        // Trials run on `CachedSim::for_simulator`, whose fingerprint
        // salt is the default analysis config's salt — the same salt
        // keys the persistent snapshot.
        let salt = config_salt(&AnalysisConfig::default());
        let (cache, preload) = SimCache::from_env(cache_capacity, salt);
        if let Some(warning) = &preload.warning {
            eprintln!("cache snapshot warning: {warning}");
        }
        if preload.entries_loaded > 0 {
            eprintln!(
                "warm-started from {} cached entries",
                preload.entries_loaded
            );
        }
        let table = Table3::run_with_cache(&config, Some(std::sync::Arc::clone(&cache)));
        match cache.save_to_env_dir(salt) {
            Some(Ok(saved)) => eprintln!(
                "saved {} cache entries ({} bytes)",
                saved.entries_saved, saved.bytes
            ),
            Some(Err(err)) => eprintln!("cache snapshot save failed: {err}"),
            None => {}
        }
        table
    } else {
        Table3::run(&config)
    };
    for warning in table.journal_warnings() {
        eprintln!("journal warning: {warning}");
    }
    println!("{table}");
    if !robustness.is_empty() {
        let rates: Vec<f64> = robustness
            .split(',')
            .filter_map(|r| r.trim().parse().ok())
            .filter(|r| *r > 0.0)
            .collect();
        if rates.is_empty() {
            eprintln!("--robustness parsed no positive rates from {robustness:?}");
        } else {
            println!("Robustness sweep (Artisan supervised, all groups):");
            println!("{}", RobustnessReport::run(&config, &rates));
        }
    }
    let expire_secs: f64 = arg_or("--journal-expire-secs", -1.0);
    if expire_secs >= 0.0 {
        match &journal_dir {
            Some(dir) => {
                match expire_terminal(dir, std::time::Duration::from_secs_f64(expire_secs)) {
                    Ok(outcome) => eprintln!(
                        "journal janitor: scanned {}, terminal {}, expired {}, failed {}",
                        outcome.scanned, outcome.terminal, outcome.expired, outcome.failed
                    ),
                    Err(err) => eprintln!("journal janitor failed: {err}"),
                }
            }
            None => eprintln!(
                "--journal-expire-secs needs a journal dir (--journal or ARTISAN_JOURNAL_DIR)"
            ),
        }
    }
}
