//! Regenerates **Table 3** (the performance comparison): BOBO, RLBO,
//! GPT-4, Llama2, and Artisan over the five Table 2 groups, `--trials`
//! seeded repetitions each. Metrics are averaged over successful trials
//! (the paper's convention); the Time column is testbed-equivalent (see
//! `artisan-sim::cost`). Also prints the §4.2 speedup headline.
//!
//! Run with:
//!   `cargo run --release -p artisan-bench --bin table3 [--trials 10] [--quick] [--cache N] [--supervised]`
//!
//! `--quick` cuts the baseline budgets 10× for a fast smoke run.
//! `--cache N` runs every trial against one shared simulation cache of
//! `N` fingerprints (0, the default, runs uncached) and appends the
//! cache accounting below the table; with `ARTISAN_SIM_CACHE_DIR` set,
//! the cache is warm-started from that directory's snapshot and saved
//! back at the end. `--supervised` runs the Artisan rows as supervised
//! sessions and prints each trial's session cost line.

use artisan_bench::{arg_or, quick_mode};
use artisan_core::experiment::{ExperimentConfig, Table3};
use artisan_resilience::Supervisor;
use artisan_sim::fingerprint::config_salt;
use artisan_sim::{AnalysisConfig, SimCache};

fn main() {
    let trials: usize = arg_or("--trials", 10);
    let cache_capacity: usize = arg_or("--cache", 0);
    let supervised = std::env::args().any(|a| a == "--supervised");
    let mut config = ExperimentConfig {
        trials,
        seed: arg_or("--seed", 2024),
        ..ExperimentConfig::default()
    };
    if quick_mode() {
        config.bobo.budget = 45;
        config.bobo.initial_samples = 15;
        config.rlbo.budget = 50;
        config.artisan = artisan_core::ArtisanOptions {
            dataset: None,
            ..artisan_core::ArtisanOptions::paper_default()
        };
    }
    if supervised {
        config.supervision = Some(Supervisor::default());
    }
    let table = if cache_capacity > 0 {
        // Trials run on `CachedSim::for_simulator`, whose fingerprint
        // salt is the default analysis config's salt — the same salt
        // keys the persistent snapshot.
        let salt = config_salt(&AnalysisConfig::default());
        let (cache, preload) = SimCache::from_env(cache_capacity, salt);
        if let Some(warning) = &preload.warning {
            eprintln!("cache snapshot warning: {warning}");
        }
        if preload.entries_loaded > 0 {
            eprintln!(
                "warm-started from {} cached entries",
                preload.entries_loaded
            );
        }
        let table = Table3::run_with_cache(&config, Some(std::sync::Arc::clone(&cache)));
        match cache.save_to_env_dir(salt) {
            Some(Ok(saved)) => eprintln!(
                "saved {} cache entries ({} bytes)",
                saved.entries_saved, saved.bytes
            ),
            Some(Err(err)) => eprintln!("cache snapshot save failed: {err}"),
            None => {}
        }
        table
    } else {
        Table3::run(&config)
    };
    println!("{table}");
}
