//! Regenerates **Fig. 1** (behaviour-level opamp modeling): the
//! three-stage skeleton with its five initial nodes, and the per-stage
//! small-signal model (VCCS + Ro + Cp).
//!
//! Run with: `cargo run --release -p artisan-bench --bin fig1`

// Experiment driver: aborting on a failed setup step is the idiom here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use artisan_circuit::{Skeleton, Topology};

fn main() {
    let skeleton = Skeleton::default();
    println!("Fig. 1(a) — the basic three-stage opamp topology");
    println!("nodes: in -> [stage1] -> n1 -> [stage2] -> n2 -> [stage3] -> out (ground = 0)\n");

    println!("Fig. 1(b) — the small-signal model (each stage: VCCS gm_i ∥ Ro_i ∥ Cp_i)");
    for (k, s) in skeleton.stages().iter().enumerate() {
        println!(
            "  stage {}: gm{} = {}, Ro{} = {}, Cp{} = {}",
            k + 1,
            k + 1,
            s.gm,
            k + 1,
            s.ro,
            k + 1,
            s.cp,
        );
    }
    println!("  load: RL = {}, CL = {}\n", skeleton.rl, skeleton.cl);

    println!("elaborated skeleton netlist:");
    print!(
        "{}",
        Topology::new(skeleton)
            .elaborate()
            .expect("valid")
            .to_text()
    );
}
