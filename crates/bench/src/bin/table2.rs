//! Regenerates **Table 2** (the experimental group settings).
//!
//! Run with: `cargo run --release -p artisan-bench --bin table2`

use artisan_sim::Spec;

fn main() {
    println!(
        "{:<6} {:>9} {:>10} {:>7} {:>10} {:>8}",
        "Group", "Gain(dB)", "GBW(MHz)", "PM(deg)", "Power(uW)", "CL(pF)"
    );
    for (name, spec) in Spec::table2() {
        println!(
            "{:<6} {:>8} {:>10} {:>7} {:>10} {:>8}",
            name,
            format!(">{}", spec.gain_min_db),
            format!(">{}", spec.gbw_min_hz / 1e6),
            format!(">{}", spec.pm_min_deg),
            format!("<{}", spec.power_max_w * 1e6),
            format!("{:.0}", spec.cl.value() * 1e12),
        );
    }
}
