//! Regenerates **Table 1** (the dataset statistics): samples and tokens
//! per split, measured at a configurable fraction of the paper's scale
//! and extrapolated to full scale.
//!
//! Run with: `cargo run --release -p artisan-bench --bin table1 [--scale 1000]`

use artisan_bench::arg_or;
use artisan_dataset::Table1;

fn main() {
    let scale: usize = arg_or("--scale", 1000);
    let seed: u64 = arg_or("--seed", 2024);
    println!("{}", Table1::measure(scale, seed));
}
