//! Calibration probe: noisy-Artisan success rates per Table 2 group
//! (the paper's band is 7–9 out of 10).
//!
//! Run with: `cargo run --release -p artisan-bench --bin calibrate_artisan [--trials N]`

use artisan_agents::{AgentConfig, ArtisanAgent};
use artisan_bench::arg_or;
use artisan_sim::{Simulator, Spec};
use rand::SeedableRng;

fn main() {
    let trials: u64 = arg_or("--trials", 20u64);
    let mut agent = ArtisanAgent::untrained(AgentConfig::paper_default());
    for (name, spec) in Spec::table2() {
        let mut successes = 0;
        let mut iters = 0usize;
        for seed in 0..trials {
            let mut sim = Simulator::new();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed * 31 + 7);
            let outcome = agent.design(&spec, &mut sim, &mut rng);
            if outcome.success {
                successes += 1;
            }
            iters += outcome.iterations;
        }
        println!(
            "{name}: Artisan {successes}/{trials} (mean iterations {:.2})",
            iters as f64 / trials as f64
        );
    }
}
