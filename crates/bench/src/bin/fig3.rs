//! Regenerates **Fig. 3** (the bidirectional circuit representation):
//! a sampled topology's NetlistTuple — netlist text on one side, the
//! rule-based natural-language structural description on the other —
//! plus the parse-back direction.
//!
//! Run with: `cargo run --release -p artisan-bench --bin fig3 [--seed 42]`

// Experiment driver: aborting on a failed setup step is the idiom here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use artisan_bench::arg_or;
use artisan_circuit::sample::{sample_topology, SampleRanges};
use artisan_circuit::{Netlist, NetlistTuple, Topology};
use rand::SeedableRng;

fn main() {
    let seed: u64 = arg_or("--seed", 42);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let topo = sample_topology(&mut rng, &SampleRanges::default(), 10e-12);
    let tuple = NetlistTuple::from_topology(&topo);

    println!("=== netlist_i (structure) ===\n{}", tuple.netlist_text());
    println!(
        "=== description_i (structural semantics) ===\n{}\n",
        tuple.description()
    );

    let parsed = Netlist::parse(tuple.netlist_text()).expect("own emission parses");
    println!(
        "bidirectional check: re-parsed {} elements from the text form",
        parsed.element_count()
    );

    println!("\n=== the canonical NMC example ===");
    println!("{}", NetlistTuple::from_topology(&Topology::nmc_example()));
}
