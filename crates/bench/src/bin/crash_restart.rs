//! Crash/restart drill for the durable session journals: proves that a
//! process killed partway through a batch of supervised sessions can be
//! restarted against the same `ARTISAN_JOURNAL_DIR` and reproduce the
//! clean reference field-for-field, while paying strictly less than a
//! from-scratch rerun. This is the binary CI's `crash-restart` job
//! drives as three separate processes.
//!
//! Run with:
//!   `cargo run --release -p artisan-bench --bin crash_restart -- --phase reference|victim|resume [--dir DIR] [--sessions N] [--seed S] [--kill-after K] [--expect-resumed K]`
//!
//! Phases (all three must share `--dir`, `--sessions`, and `--seed`):
//! - `reference` runs every session with a *detached* journal (the
//!   uninterrupted baseline) and writes `reference.json` into the dir.
//! - `victim` runs journaled sessions sequentially and calls
//!   `std::process::abort()` after `--kill-after` of them — a hard
//!   SIGABRT with journals for the finished sessions on disk and
//!   nothing for the rest, exactly what a mid-batch crash leaves.
//! - `resume` re-runs the full journaled batch, asserts every session
//!   report is field-identical (f64s compared by bit pattern) to
//!   `reference.json`, that at least `--expect-resumed` sessions were
//!   restored from a terminal journal record, that the restart billed
//!   strictly fewer fresh testbed seconds than the reference, and
//!   writes `resume.json`. Prints `CRASH_RESTART OK` on success.

// Experiment driver: aborting on a failed setup step is the idiom here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use artisan_bench::arg_or;
use artisan_resilience::{
    faulted_plan_fingerprint, session_file_name, FaultPlan, FaultySim, SessionJournal, Supervisor,
};
use artisan_sim::cost::CostModel;
use artisan_sim::{SimBackend, Simulator, Spec};
use std::path::PathBuf;

/// The scheduler's golden-ratio seed stride, reused so every phase
/// derives identical per-session seeds from the base seed.
fn session_seed(base: u64, k: usize) -> u64 {
    base ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Per-session fault plan: deterministic, distinct dice per session.
/// Every third session runs against a dead-on-arrival testbed, so
/// the batch mixes first-try successes with
/// multi-attempt (retried, eventually failed) sessions — the resume
/// protocol must fast-forward both shapes.
fn session_fault(seed: u64, k: usize) -> FaultPlan {
    if k % 3 == 2 {
        FaultPlan::outage_from(seed ^ 0xF00D, 0)
    } else {
        FaultPlan::flaky(seed ^ 0xF00D, 0.3)
    }
}

struct SessionRow {
    seed: u64,
    success: bool,
    attempts: usize,
    faults_observed: usize,
    testbed_seconds: f64,
    fresh_billed: f64,
    resumed_terminal: bool,
    attempts_restored: usize,
}

/// Runs session `k`; `journaled` decides detached vs durable journal.
fn run_session(
    supervisor: &Supervisor,
    spec: &Spec,
    dir: &std::path::Path,
    base_seed: u64,
    k: usize,
    journaled: bool,
) -> SessionRow {
    let seed = session_seed(base_seed, k);
    let plan = session_fault(seed, k);
    let mut sim = FaultySim::new(Simulator::new(), plan);
    let mut journal = if journaled {
        let config = artisan_agents::AgentConfig::noiseless();
        let fingerprint = faulted_plan_fingerprint(spec, supervisor, &config, Some(&plan));
        let path = dir.join(session_file_name(fingerprint, seed));
        let (journal, load) = SessionJournal::open(&path, fingerprint, seed);
        if let Some(w) = &load.warning {
            eprintln!("journal warning (session {k}): {w}");
        }
        journal
    } else {
        SessionJournal::detached()
    };
    let resumed_terminal = journal.terminal().is_some();
    let attempts_restored = journal.attempt_records().count();
    let report = supervisor.run_journaled_default_agent(spec, &mut sim, seed, &mut journal);
    for err in journal.io_errors() {
        eprintln!("journal io error (session {k}): {err}");
    }
    let fresh_billed = if resumed_terminal {
        0.0
    } else {
        sim.ledger().testbed_seconds(&CostModel::default())
    };
    SessionRow {
        seed,
        success: report.success,
        attempts: report.attempts,
        faults_observed: report.faults_observed,
        testbed_seconds: report.testbed_seconds,
        fresh_billed,
        resumed_terminal,
        attempts_restored,
    }
}

fn rows_json(rows: &[SessionRow]) -> String {
    let body = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"seed\": {}, \"success\": {}, \"attempts\": {}, \"faults_observed\": {}, \"testbed_seconds\": {:.6}, \"testbed_seconds_bits\": {}, \"fresh_billed_seconds\": {:.6}, \"resumed_terminal\": {}, \"attempts_restored\": {} }}",
                r.seed,
                r.success,
                r.attempts,
                r.faults_observed,
                r.testbed_seconds,
                r.testbed_seconds.to_bits(),
                r.fresh_billed,
                r.resumed_terminal,
                r.attempts_restored,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{body}\n  ]")
}

fn main() {
    let phase: String = arg_or("--phase", "reference".to_string());
    let sessions: usize = arg_or("--sessions", 6);
    let base_seed: u64 = arg_or("--seed", 4242);
    let kill_after: usize = arg_or("--kill-after", sessions / 2);
    let expect_resumed: usize = arg_or("--expect-resumed", 0);
    let dir_flag: String = arg_or("--dir", String::new());
    let dir: PathBuf = if dir_flag.is_empty() {
        artisan_resilience::journal_dir_from_env()
            .unwrap_or_else(|| std::env::temp_dir().join("artisan-crash-restart"))
    } else {
        PathBuf::from(dir_flag)
    };
    std::fs::create_dir_all(&dir).expect("journal dir");

    let supervisor = Supervisor::default();
    let spec = Spec::g1();

    match phase.as_str() {
        "reference" => {
            let rows: Vec<SessionRow> = (0..sessions)
                .map(|k| run_session(&supervisor, &spec, &dir, base_seed, k, false))
                .collect();
            let total: f64 = rows.iter().map(|r| r.fresh_billed).sum();
            let json = format!(
                "{{\n  \"phase\": \"reference\",\n  \"sessions\": {sessions},\n  \"billed_testbed_seconds\": {total:.6},\n  \"rows\": {}\n}}\n",
                rows_json(&rows)
            );
            std::fs::write(dir.join("reference.json"), &json).expect("writes reference");
            print!("{json}");
            eprintln!("reference: {sessions} sessions, {total:.1} billed seconds");
        }
        "victim" => {
            for k in 0..sessions {
                let row = run_session(&supervisor, &spec, &dir, base_seed, k, true);
                eprintln!(
                    "victim: session {k} journaled ({} attempt(s), success={})",
                    row.attempts, row.success
                );
                if k + 1 == kill_after {
                    eprintln!("victim: simulating crash after {kill_after} session(s)");
                    // A hard abort — no destructors, no flushes beyond
                    // what the journal already made durable.
                    std::process::abort();
                }
            }
            eprintln!("victim: --kill-after {kill_after} never fired");
            std::process::exit(1);
        }
        "resume" => {
            let reference =
                std::fs::read_to_string(dir.join("reference.json")).expect("reference.json");
            let rows: Vec<SessionRow> = (0..sessions)
                .map(|k| run_session(&supervisor, &spec, &dir, base_seed, k, true))
                .collect();
            for (k, row) in rows.iter().enumerate() {
                let needle = format!(
                    "\"seed\": {}, \"success\": {}, \"attempts\": {}, \"faults_observed\": {}, \"testbed_seconds\": {:.6}, \"testbed_seconds_bits\": {}",
                    row.seed,
                    row.success,
                    row.attempts,
                    row.faults_observed,
                    row.testbed_seconds,
                    row.testbed_seconds.to_bits(),
                );
                assert!(
                    reference.contains(&needle),
                    "session {k} diverged from the clean reference: {needle}"
                );
            }
            let resumed = rows.iter().filter(|r| r.resumed_terminal).count();
            let restored: usize = rows.iter().map(|r| r.attempts_restored).sum();
            assert!(
                resumed >= expect_resumed,
                "only {resumed} session(s) resumed terminal, expected >= {expect_resumed}"
            );
            let fresh: f64 = rows.iter().map(|r| r.fresh_billed).sum();
            let reference_billed: f64 = reference
                .lines()
                .find_map(|l| {
                    l.trim()
                        .strip_prefix("\"billed_testbed_seconds\": ")
                        .and_then(|v| v.trim_end_matches(',').parse().ok())
                })
                .expect("reference billed seconds");
            if expect_resumed > 0 {
                assert!(
                    fresh < reference_billed,
                    "restart was not cheaper: {fresh} !< {reference_billed}"
                );
            }
            let json = format!(
                "{{\n  \"phase\": \"resume\",\n  \"sessions\": {sessions},\n  \"resumed_terminal\": {resumed},\n  \"attempts_restored\": {restored},\n  \"billed_testbed_seconds_reference\": {reference_billed:.6},\n  \"billed_testbed_seconds_fresh\": {fresh:.6},\n  \"rows\": {}\n}}\n",
                rows_json(&rows)
            );
            std::fs::write(dir.join("resume.json"), &json).expect("writes resume");
            print!("{json}");
            println!("CRASH_RESTART OK");
            eprintln!(
                "resume: {resumed}/{sessions} resumed terminal, {restored} attempt(s) restored, {fresh:.1} fresh vs {reference_billed:.1} reference seconds"
            );
        }
        other => {
            eprintln!("unknown --phase {other:?} (want reference|victim|resume)");
            std::process::exit(2);
        }
    }
}
