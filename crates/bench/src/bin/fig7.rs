//! Regenerates **Fig. 7** (the chat logs): Artisan's full design
//! dialogue on G-1 including the CL = 1 nF modification exchange, next
//! to the documented GPT-4 and Llama2 baseline logs.
//!
//! Run with: `cargo run --release -p artisan-bench --bin fig7`

use artisan_agents::{AgentConfig, ArtisanAgent};
use artisan_opt::{Gpt4Baseline, Llama2Baseline};
use artisan_sim::{Simulator, Spec};
use rand::SeedableRng;

fn main() {
    println!("================ A chat log example of Artisan ================\n");
    let mut agent = ArtisanAgent::untrained(AgentConfig::noiseless());
    let mut sim = Simulator::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let g1 = agent.design(&Spec::g1(), &mut sim, &mut rng);
    println!("{}", g1.transcript);

    println!("--- follow-up: the CL = 1 nF modification (Q9/A9) ---\n");
    let g5 = agent.design(&Spec::g5(), &mut sim, &mut rng);
    // The G-5 session shows the DFC recommendation and netlist.
    println!("{}", g5.transcript);

    println!("================ A chat log example of GPT-4 ================\n");
    let (gpt4_topo, gpt4_log) = Gpt4Baseline.design(&Spec::g1());
    for line in &gpt4_log {
        println!("{line}\n");
    }
    let mut sim = Simulator::new();
    if let Ok(r) = sim.analyze_topology(&gpt4_topo) {
        println!(
            "[simulator verdict on GPT-4's design: {} — spec {}]",
            r.performance,
            if Spec::g1().check(&r.performance).success() {
                "met"
            } else {
                "NOT met"
            }
        );
    }

    println!("\n================ A chat log example of Llama2 ================\n");
    let (llama_topo, llama_log) = Llama2Baseline.design(&Spec::g1());
    for line in &llama_log {
        println!("{line}\n");
    }
    let mut sim = Simulator::new();
    if let Ok(r) = sim.analyze_topology(&llama_topo) {
        println!(
            "[simulator verdict on Llama2's design: {} — spec {}]",
            r.performance,
            if Spec::g1().check(&r.performance).success() {
                "met"
            } else {
                "NOT met"
            }
        );
    }
}
