//! Regenerates **Fig. 6** (opamp design examples):
//!
//! - (a) a typical BOBO result — the best circuit a budgeted BO run
//!   finds on G-1, usually carrying uninterpretable series gm/RC
//!   combinations,
//! - (b) a typical RLBO result,
//! - (c) Artisan's behavioural-level NMC circuit,
//! - (d) the transistor-level schematic from the gm/Id mapping.
//!
//! Run with: `cargo run --release -p artisan-bench --bin fig6 [--quick]`

// Experiment driver: aborting on a failed setup step is the idiom here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use artisan_bench::quick_mode;
use artisan_circuit::describe;
use artisan_core::{Artisan, ArtisanOptions};
use artisan_gmid::{map_topology, LookupTable};
use artisan_opt::{Bobo, BoboConfig, Rlbo, RlboConfig};
use artisan_sim::{Simulator, Spec};
use rand::SeedableRng;

fn main() {
    let spec = Spec::g1();
    let (bobo_budget, rlbo_budget) = if quick_mode() { (60, 60) } else { (450, 500) };

    println!("=== Fig. 6(a): a typical BOBO circuit ===");
    let mut sim = Simulator::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let bobo = Bobo::new(BoboConfig {
        budget: bobo_budget,
        ..BoboConfig::default()
    })
    .run(&spec, &mut sim, &mut rng);
    if let Some(t) = &bobo.topology {
        print!("{}", t.elaborate().expect("valid").to_text());
        println!("(success = {})\n", bobo.success);
    }

    println!("=== Fig. 6(b): a typical RLBO circuit ===");
    let mut sim = Simulator::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let rlbo = Rlbo::new(RlboConfig {
        budget: rlbo_budget,
        ..RlboConfig::default()
    })
    .run(&spec, &mut sim, &mut rng);
    if let Some(t) = &rlbo.topology {
        print!("{}", t.elaborate().expect("valid").to_text());
        println!("(success = {})\n", rlbo.success);
    }

    println!("=== Fig. 6(c): Artisan's behavioural-level circuit ===");
    let mut artisan = Artisan::new(ArtisanOptions::fast());
    let outcome = artisan.design(&spec, 0);
    print!("{}", outcome.design.netlist_text);
    println!(
        "\ninterpretation: {}\n",
        describe::describe_topology(&outcome.design.topology)
    );

    println!("=== Fig. 6(d): the transistor-level schematic (gm/Id mapping) ===");
    print!(
        "{}",
        map_topology(&outcome.design.topology, &LookupTable::default_nmos()).to_spice()
    );
}
