//! Calibration probe: baseline success rates at full budget on every
//! Table 2 group. Not part of the paper's tables — used to verify that
//! the search-space realism puts BOBO/RLBO in the paper's success band.
//!
//! Run with: `cargo run --release -p artisan-bench --bin calibrate_baselines [--trials N]`

use artisan_bench::arg_or;
use artisan_opt::{Bobo, BoboConfig, Rlbo, RlboConfig};
use artisan_sim::{Simulator, Spec};
use rand::SeedableRng;

fn main() {
    let trials: u64 = arg_or("--trials", 4u64);
    for (name, spec) in Spec::table2() {
        let mut bobo_s = 0;
        let mut rlbo_s = 0;
        for seed in 0..trials {
            let mut sim = Simulator::new();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            if Bobo::new(BoboConfig::default())
                .run(&spec, &mut sim, &mut rng)
                .success
            {
                bobo_s += 1;
            }
            let mut sim = Simulator::new();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 100);
            if Rlbo::new(RlboConfig::default())
                .run(&spec, &mut sim, &mut rng)
                .success
            {
                rlbo_s += 1;
            }
        }
        println!("{name}: BOBO {bobo_s}/{trials}, RLBO {rlbo_s}/{trials}");
    }
}
