//! Emits `BENCH_sim.json`: machine-readable numbers for the parallel
//! simulation engine — assembly and solve throughput (cached G/C split
//! vs the legacy per-point element walk), whole-sweep throughput per
//! worker count, and scheduler session throughput per worker count,
//! each with its speedup over one worker.
//!
//! Run with:
//!   `cargo run --release -p artisan-bench --bin bench_report [--reps 40] [--sessions 8] [--out BENCH_sim.json]`
//!
//! `--quick` cuts the repetition budget 4× for CI smoke runs. The
//! multithreaded speedups are only meaningful on a multi-core host, so
//! the report records the host's `available_parallelism` alongside.

// Experiment driver: aborting on a failed setup step is the idiom here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use artisan_bench::{arg_or, quick_mode};
use artisan_circuit::Topology;
use artisan_math::lu::LuDecomposition;
use artisan_math::{Complex64, ThreadPool};
use artisan_resilience::{Scheduler, Supervisor};
use artisan_sim::ac::{sweep_with_pool, SweepConfig};
use artisan_sim::mna::MnaSystem;
use artisan_sim::{Simulator, Spec};
use std::f64::consts::PI;
use std::hint::black_box;
use std::time::Instant;

/// Times `routine` over `reps` repetitions and returns events/second,
/// where one repetition covers `events_per_rep` events.
fn rate<F: FnMut()>(reps: usize, events_per_rep: usize, mut routine: F) -> f64 {
    // Warm-up, not measured.
    routine();
    let start = Instant::now();
    for _ in 0..reps {
        routine();
    }
    let secs = start.elapsed().as_secs_f64();
    (reps * events_per_rep) as f64 / secs.max(1e-12)
}

fn main() {
    let divisor = if quick_mode() { 4 } else { 1 };
    let reps: usize = (arg_or("--reps", 40usize) / divisor).max(1);
    let n_sessions: usize = arg_or("--sessions", 8usize);
    let out_path: String = arg_or("--out", "BENCH_sim.json".to_string());

    let netlist = Topology::nmc_example().elaborate().expect("valid");
    let sys = MnaSystem::new(&netlist).expect("builds");
    let cfg = SweepConfig::default();
    let freqs = cfg.frequencies().expect("grid");
    let n_points = freqs.len();
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads_env = std::env::var(artisan_math::pool::THREADS_ENV).ok();

    // --- assembly: cached fused scale-add vs legacy element walk ---
    let asm_cached = rate(reps, n_points, || {
        for &f in &freqs {
            black_box(
                sys.assemble(Complex64::jomega(2.0 * PI * f))
                    .expect("assembles"),
            );
        }
    });
    let asm_legacy = rate(reps, n_points, || {
        for &f in &freqs {
            black_box(
                sys.assemble_legacy(Complex64::jomega(2.0 * PI * f))
                    .expect("assembles"),
            );
        }
    });

    // --- full solves: reused workspace vs walk + fresh LU per point ---
    let solve_cached = rate(reps, n_points, || {
        let mut ws = sys.workspace();
        for &f in &freqs {
            black_box(
                sys.transfer_with(Complex64::jomega(2.0 * PI * f), &mut ws)
                    .expect("solves"),
            );
        }
    });
    let solve_legacy = rate(reps, n_points, || {
        for &f in &freqs {
            let (y, rhs) = sys
                .assemble_legacy(Complex64::jomega(2.0 * PI * f))
                .expect("assembles");
            let lu = LuDecomposition::new(y).expect("factors");
            black_box(lu.solve(&rhs).expect("solves"));
        }
    });

    // --- whole sweep and scheduler batch, per worker count ---
    let worker_counts: Vec<usize> = {
        let mut w = vec![1, 2, 4, host_parallelism];
        w.sort_unstable();
        w.dedup();
        w
    };

    let sweep_rates: Vec<(usize, f64)> = worker_counts
        .iter()
        .map(|&workers| {
            let pool = ThreadPool::with_workers(workers);
            let r = rate(reps, n_points, || {
                black_box(sweep_with_pool(&sys, &cfg, &pool).expect("sweeps"));
            });
            (workers, r)
        })
        .collect();

    let session_reps = (reps / 8).max(1);
    let scheduler_rates: Vec<(usize, f64)> = worker_counts
        .iter()
        .map(|&workers| {
            let scheduler =
                Scheduler::with_pool(Supervisor::default(), ThreadPool::with_workers(workers));
            let r = rate(session_reps, n_sessions, || {
                let backends: Vec<Simulator> = (0..n_sessions).map(|_| Simulator::new()).collect();
                let sessions = scheduler.run_batch(&Spec::g1(), backends, 2024);
                assert!(sessions.iter().all(|s| s.report.success));
                black_box(sessions);
            });
            (workers, r)
        })
        .collect();

    let fmt_scaling = |rates: &[(usize, f64)], unit: &str| -> String {
        let base = rates.iter().find(|(w, _)| *w == 1).map_or(1.0, |&(_, r)| r);
        rates
            .iter()
            .map(|&(w, r)| {
                format!(
                    "    {{ \"workers\": {w}, \"{unit}\": {r:.1}, \"speedup_vs_1_thread\": {:.3} }}",
                    r / base
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };

    let json = format!(
        "{{\n  \"bench\": \"parallel simulation engine (NMC example, default sweep grid)\",\n  \"host\": {{ \"available_parallelism\": {host_parallelism}, \"artisan_threads_env\": {} }},\n  \"sweep_points\": {n_points},\n  \"reps\": {reps},\n  \"assembly\": {{\n    \"cached_points_per_sec\": {asm_cached:.1},\n    \"legacy_points_per_sec\": {asm_legacy:.1},\n    \"speedup_cached_vs_legacy\": {:.3}\n  }},\n  \"solve\": {{\n    \"cached_workspace_points_per_sec\": {solve_cached:.1},\n    \"legacy_alloc_points_per_sec\": {solve_legacy:.1},\n    \"speedup_cached_vs_legacy\": {:.3}\n  }},\n  \"sweep_threads\": [\n{}\n  ],\n  \"scheduler_sessions\": {n_sessions},\n  \"scheduler_threads\": [\n{}\n  ]\n}}\n",
        threads_env.map_or("null".to_string(), |v| format!("\"{v}\"")),
        asm_cached / asm_legacy,
        solve_cached / solve_legacy,
        fmt_scaling(&sweep_rates, "sweeps_points_per_sec"),
        fmt_scaling(&scheduler_rates, "sessions_per_sec"),
    );

    std::fs::write(&out_path, &json).expect("writes report");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
