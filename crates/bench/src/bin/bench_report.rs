//! Emits `BENCH_sim.json`: machine-readable numbers for the parallel
//! simulation engine — assembly and solve throughput (cached G/C split
//! vs the legacy per-point element walk), whole-sweep throughput per
//! worker count, and scheduler session throughput per worker count,
//! each with its speedup over one worker.
//!
//! Run with:
//!   `cargo run --release -p artisan-bench --bin bench_report [--reps 40] [--sessions 8] [--out BENCH_sim.json]`
//!
//! `--quick` cuts the repetition budget 4× for CI smoke runs. The
//! multithreaded speedups are only meaningful on a multi-core host, so
//! the report records the host's `available_parallelism` alongside.

// Experiment driver: aborting on a failed setup step is the idiom here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use artisan_bench::{arg_or, quick_mode};
use artisan_circuit::sample::{sample_topology, SampleRanges};
use artisan_circuit::Topology;
use artisan_math::lu::LuDecomposition;
use artisan_math::{Complex64, ThreadPool};
use artisan_resilience::{Scheduler, Supervisor};
use artisan_sim::ac::{sweep_with_pool, SweepConfig};
use artisan_sim::mna::MnaSystem;
use artisan_sim::{CachedSim, SimCache, Simulator, Spec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Times `routine` over `reps` repetitions and returns events/second,
/// where one repetition covers `events_per_rep` events.
fn rate<F: FnMut()>(reps: usize, events_per_rep: usize, mut routine: F) -> f64 {
    // Warm-up, not measured.
    routine();
    let start = Instant::now();
    for _ in 0..reps {
        routine();
    }
    let secs = start.elapsed().as_secs_f64();
    (reps * events_per_rep) as f64 / secs.max(1e-12)
}

fn main() {
    let divisor = if quick_mode() { 4 } else { 1 };
    let reps: usize = (arg_or("--reps", 40usize) / divisor).max(1);
    let n_sessions: usize = arg_or("--sessions", 8usize);
    let out_path: String = arg_or("--out", "BENCH_sim.json".to_string());

    let netlist = Topology::nmc_example().elaborate().expect("valid");
    let sys = MnaSystem::new(&netlist).expect("builds");
    let cfg = SweepConfig::default();
    let freqs = cfg.frequencies().expect("grid");
    let n_points = freqs.len();
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads_env = std::env::var(artisan_math::pool::THREADS_ENV).ok();

    // --- assembly: cached fused scale-add vs legacy element walk ---
    let asm_cached = rate(reps, n_points, || {
        for &f in &freqs {
            black_box(
                sys.assemble(Complex64::jomega(2.0 * PI * f))
                    .expect("assembles"),
            );
        }
    });
    let asm_legacy = rate(reps, n_points, || {
        for &f in &freqs {
            black_box(
                sys.assemble_legacy(Complex64::jomega(2.0 * PI * f))
                    .expect("assembles"),
            );
        }
    });

    // --- full solves: reused workspace vs walk + fresh LU per point ---
    let solve_cached = rate(reps, n_points, || {
        let mut ws = sys.workspace();
        for &f in &freqs {
            black_box(
                sys.transfer_with(Complex64::jomega(2.0 * PI * f), &mut ws)
                    .expect("solves"),
            );
        }
    });
    let solve_legacy = rate(reps, n_points, || {
        for &f in &freqs {
            let (y, rhs) = sys
                .assemble_legacy(Complex64::jomega(2.0 * PI * f))
                .expect("assembles");
            let lu = LuDecomposition::new(y).expect("factors");
            black_box(lu.solve(&rhs).expect("solves"));
        }
    });

    // --- whole sweep and scheduler batch, per worker count ---
    let worker_counts: Vec<usize> = {
        let mut w = vec![1, 2, 4, host_parallelism];
        w.sort_unstable();
        w.dedup();
        w
    };

    let sweep_rates: Vec<(usize, f64)> = worker_counts
        .iter()
        .map(|&workers| {
            let pool = ThreadPool::with_workers(workers);
            let r = rate(reps, n_points, || {
                black_box(sweep_with_pool(&sys, &cfg, &pool).expect("sweeps"));
            });
            (workers, r)
        })
        .collect();

    let session_reps = (reps / 8).max(1);
    let scheduler_rates: Vec<(usize, f64)> = worker_counts
        .iter()
        .map(|&workers| {
            let scheduler =
                Scheduler::with_pool(Supervisor::default(), ThreadPool::with_workers(workers));
            let r = rate(session_reps, n_sessions, || {
                let backends: Vec<Simulator> = (0..n_sessions).map(|_| Simulator::new()).collect();
                let sessions = scheduler.run_batch(&Spec::g1(), backends, 2024);
                assert!(sessions.iter().all(|s| s.report.success));
                black_box(sessions);
            });
            (workers, r)
        })
        .collect();

    // --- batched analyze_batch fan-out, per worker count ---
    // Distinct candidates, the sibling-scoring / optimizer-DoE shape:
    // the two recipe examples plus sampled random topologies.
    let batch_topos: Vec<Topology> = {
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = vec![Topology::nmc_example(), Topology::dfc_example()];
        t.extend((0..6).map(|_| sample_topology(&mut rng, &SampleRanges::default(), 10e-12)));
        t
    };
    let serial_reports: Vec<Option<artisan_sim::Performance>> = batch_topos
        .iter()
        .map(|t| {
            Simulator::new()
                .analyze_topology(t)
                .ok()
                .map(|r| r.performance)
        })
        .collect();
    let batch_rates: Vec<(usize, f64)> = worker_counts
        .iter()
        .map(|&workers| {
            let pool = ThreadPool::with_workers(workers);
            // Bit-identity guard: the fan-out must reproduce the serial
            // reports exactly before its throughput means anything.
            let check: Vec<Option<artisan_sim::Performance>> = Simulator::new()
                .analyze_batch_with_pool(&batch_topos, &pool)
                .into_iter()
                .map(|r| r.ok().map(|rep| rep.performance))
                .collect();
            assert_eq!(check, serial_reports, "batch diverged at {workers} workers");
            let r = rate(reps, batch_topos.len(), || {
                let mut sim = Simulator::new();
                black_box(sim.analyze_batch_with_pool(&batch_topos, &pool));
            });
            (workers, r)
        })
        .collect();

    // --- content-addressed cache on a repeated-netlist workload ---
    // The same supervised G-1 session run n_sessions times: first
    // uncached (every analysis pays full testbed cost), then with one
    // shared cache (later sessions hit). Reports must be identical;
    // only the billed seconds drop.
    let supervisor = Supervisor::default();
    let session_perf = |report: &artisan_resilience::SessionReport| {
        report
            .outcome
            .as_ref()
            .and_then(|o| o.report.as_ref())
            .map(|r| r.performance)
    };
    let mut uncached_seconds = 0.0;
    let mut uncached_perfs = Vec::new();
    for _ in 0..n_sessions {
        let mut sim = Simulator::new();
        let report = supervisor.run(&Spec::g1(), &mut sim, 2024);
        assert!(report.success, "uncached cache-bench session failed");
        uncached_seconds += report.testbed_seconds;
        uncached_perfs.push(session_perf(&report));
    }
    let cache = SimCache::shared(4096);
    let mut cached_seconds = 0.0;
    let mut cached_perfs = Vec::new();
    let mut cached_hits = 0usize;
    for _ in 0..n_sessions {
        let mut sim = CachedSim::new(Simulator::new(), Arc::clone(&cache));
        let report = supervisor.run(&Spec::g1(), &mut sim, 2024);
        assert!(report.success, "cached cache-bench session failed");
        cached_seconds += report.testbed_seconds;
        cached_perfs.push(session_perf(&report));
        cached_hits += report.cache_hits;
    }
    assert_eq!(
        cached_perfs, uncached_perfs,
        "cache changed a session's reported design"
    );
    let cache_stats = cache.stats();
    assert!(cache_stats.hits > 0, "repeated workload never hit");
    assert!(
        cached_seconds < uncached_seconds,
        "cache did not reduce billed seconds"
    );
    assert_eq!(cached_hits as u64, cache_stats.hits);

    let fmt_scaling = |rates: &[(usize, f64)], unit: &str| -> String {
        let base = rates.iter().find(|(w, _)| *w == 1).map_or(1.0, |&(_, r)| r);
        rates
            .iter()
            .map(|&(w, r)| {
                format!(
                    "    {{ \"workers\": {w}, \"{unit}\": {r:.1}, \"speedup_vs_1_thread\": {:.3} }}",
                    r / base
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };

    let json = format!(
        "{{\n  \"bench\": \"parallel simulation engine (NMC example, default sweep grid)\",\n  \"host\": {{ \"available_parallelism\": {host_parallelism}, \"artisan_threads_env\": {} }},\n  \"sweep_points\": {n_points},\n  \"reps\": {reps},\n  \"assembly\": {{\n    \"cached_points_per_sec\": {asm_cached:.1},\n    \"legacy_points_per_sec\": {asm_legacy:.1},\n    \"speedup_cached_vs_legacy\": {:.3}\n  }},\n  \"solve\": {{\n    \"cached_workspace_points_per_sec\": {solve_cached:.1},\n    \"legacy_alloc_points_per_sec\": {solve_legacy:.1},\n    \"speedup_cached_vs_legacy\": {:.3}\n  }},\n  \"sweep_threads\": [\n{}\n  ],\n  \"batch_candidates\": {},\n  \"batch_threads\": [\n{}\n  ],\n  \"scheduler_sessions\": {n_sessions},\n  \"scheduler_threads\": [\n{}\n  ],\n  \"sim_cache\": {{\n    \"workload\": \"{n_sessions} identical supervised G-1 sessions, one shared cache\",\n    \"billed_testbed_seconds_uncached\": {uncached_seconds:.1},\n    \"billed_testbed_seconds_cached\": {cached_seconds:.1},\n    \"billed_seconds_saved\": {:.1},\n    \"hits\": {},\n    \"misses\": {},\n    \"hit_rate\": {:.3},\n    \"reports_identical\": true\n  }}\n}}\n",
        threads_env.map_or("null".to_string(), |v| format!("\"{v}\"")),
        asm_cached / asm_legacy,
        solve_cached / solve_legacy,
        fmt_scaling(&sweep_rates, "sweeps_points_per_sec"),
        batch_topos.len(),
        fmt_scaling(&batch_rates, "batched_analyses_per_sec"),
        fmt_scaling(&scheduler_rates, "sessions_per_sec"),
        uncached_seconds - cached_seconds,
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.hit_rate(),
    );

    std::fs::write(&out_path, &json).expect("writes report");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
