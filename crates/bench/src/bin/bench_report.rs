//! Emits `BENCH_sim.json`: machine-readable numbers for the parallel
//! simulation engine — assembly and solve throughput (cached G/C split
//! vs the legacy per-point element walk), whole-sweep throughput per
//! worker count, scheduler session throughput per worker count (each
//! with its speedup over one worker), and the PVT corner engine's
//! grid throughput against a naive per-corner analyze loop, with the
//! shared-symbolic, verdict-cache, and kill-switch contracts asserted
//! inline.
//!
//! Run with:
//!   `cargo run --release -p artisan-bench --bin bench_report [--reps 40] [--sessions 8] [--out BENCH_sim.json]`
//!
//! `--quick` cuts the repetition budget 4× for CI smoke runs. The
//! multithreaded speedups are only meaningful on a multi-core host, so
//! the report records the host's `available_parallelism` alongside.

// Experiment driver: aborting on a failed setup step is the idiom here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use artisan_bench::{arg_or, netgen, quick_mode};
use artisan_circuit::sample::{mutate_netlist, sample_topology, SampleRanges};
use artisan_circuit::{Netlist, Topology};
use artisan_lint::Linter;
use artisan_math::lu::LuDecomposition;
use artisan_math::{Complex64, ThreadPool};
use artisan_resilience::{
    FaultPlan, FaultySim, JournalRecord, Scheduler, SessionJournal, Supervisor,
};
use artisan_sim::ac::{sweep_with_pool, SweepConfig};
use artisan_sim::cache::persist::snapshot_dir_from_env;
use artisan_sim::cost::CostModel;
use artisan_sim::fingerprint::config_salt;
use artisan_sim::mna::{MnaMode, MnaSystem};
use artisan_sim::{AnalysisConfig, CachedSim, ScreenedSim, SimBackend, SimCache, Simulator, Spec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::f64::consts::PI;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Heap-allocation counter behind the zero-allocation assertion on the
/// warmed sparse hot loop. Delegates straight to the system allocator;
/// the count is a relaxed side effect.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: forwards every call unchanged to `System`, which upholds the
// `GlobalAlloc` contract; the counter increment has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Times `routine` over `reps` repetitions and returns events/second,
/// where one repetition covers `events_per_rep` events.
fn rate<F: FnMut()>(reps: usize, events_per_rep: usize, mut routine: F) -> f64 {
    // Warm-up, not measured.
    routine();
    let start = Instant::now();
    for _ in 0..reps {
        routine();
    }
    let secs = start.elapsed().as_secs_f64();
    (reps * events_per_rep) as f64 / secs.max(1e-12)
}

fn main() {
    let divisor = if quick_mode() { 4 } else { 1 };
    let reps: usize = (arg_or("--reps", 40usize) / divisor).max(1);
    let n_sessions: usize = arg_or("--sessions", 8usize);
    let out_path: String = arg_or("--out", "BENCH_sim.json".to_string());

    let netlist = Topology::nmc_example().elaborate().expect("valid");
    let sys = MnaSystem::new(&netlist).expect("builds");
    let cfg = SweepConfig::default();
    let freqs = cfg.frequencies().expect("grid");
    let n_points = freqs.len();
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads_env = std::env::var(artisan_math::pool::THREADS_ENV).ok();

    // --- assembly: cached fused scale-add vs legacy element walk ---
    let asm_cached = rate(reps, n_points, || {
        for &f in &freqs {
            black_box(
                sys.assemble(Complex64::jomega(2.0 * PI * f))
                    .expect("assembles"),
            );
        }
    });
    let asm_legacy = rate(reps, n_points, || {
        for &f in &freqs {
            black_box(
                sys.assemble_legacy(Complex64::jomega(2.0 * PI * f))
                    .expect("assembles"),
            );
        }
    });

    // --- full solves: reused workspace vs walk + fresh LU per point ---
    let solve_cached = rate(reps, n_points, || {
        let mut ws = sys.workspace();
        for &f in &freqs {
            black_box(
                sys.transfer_with(Complex64::jomega(2.0 * PI * f), &mut ws)
                    .expect("solves"),
            );
        }
    });
    let solve_legacy = rate(reps, n_points, || {
        for &f in &freqs {
            let (y, rhs) = sys
                .assemble_legacy(Complex64::jomega(2.0 * PI * f))
                .expect("assembles");
            let lu = LuDecomposition::new(y).expect("factors");
            black_box(lu.solve(&rhs).expect("solves"));
        }
    });

    // --- whole sweep and scheduler batch, per worker count ---
    let worker_counts: Vec<usize> = {
        let mut w = vec![1, 2, 4, host_parallelism];
        w.sort_unstable();
        w.dedup();
        w
    };

    let sweep_rates: Vec<(usize, f64)> = worker_counts
        .iter()
        .map(|&workers| {
            let pool = ThreadPool::with_workers(workers);
            let r = rate(reps, n_points, || {
                black_box(sweep_with_pool(&sys, &cfg, &pool).expect("sweeps"));
            });
            (workers, r)
        })
        .collect();

    let session_reps = (reps / 8).max(1);
    let scheduler_rates: Vec<(usize, f64)> = worker_counts
        .iter()
        .map(|&workers| {
            let scheduler =
                Scheduler::with_pool(Supervisor::default(), ThreadPool::with_workers(workers));
            let r = rate(session_reps, n_sessions, || {
                let backends: Vec<Simulator> = (0..n_sessions).map(|_| Simulator::new()).collect();
                let sessions = scheduler.run_batch(&Spec::g1(), backends, 2024);
                assert!(sessions.iter().all(|s| s.report.success));
                black_box(sessions);
            });
            (workers, r)
        })
        .collect();

    // --- batched analyze_batch fan-out, per worker count ---
    // Distinct candidates, the sibling-scoring / optimizer-DoE shape:
    // the two recipe examples plus sampled random topologies.
    let batch_topos: Vec<Topology> = {
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = vec![Topology::nmc_example(), Topology::dfc_example()];
        t.extend((0..6).map(|_| sample_topology(&mut rng, &SampleRanges::default(), 10e-12)));
        t
    };
    let serial_reports: Vec<Option<artisan_sim::Performance>> = batch_topos
        .iter()
        .map(|t| {
            Simulator::new()
                .analyze_topology(t)
                .ok()
                .map(|r| r.performance)
        })
        .collect();
    let batch_rates: Vec<(usize, f64)> = worker_counts
        .iter()
        .map(|&workers| {
            let pool = ThreadPool::with_workers(workers);
            // Bit-identity guard: the fan-out must reproduce the serial
            // reports exactly before its throughput means anything.
            let check: Vec<Option<artisan_sim::Performance>> = Simulator::new()
                .analyze_batch_with_pool(&batch_topos, &pool)
                .into_iter()
                .map(|r| r.ok().map(|rep| rep.performance))
                .collect();
            assert_eq!(check, serial_reports, "batch diverged at {workers} workers");
            let r = rate(reps, batch_topos.len(), || {
                let mut sim = Simulator::new();
                black_box(sim.analyze_batch_with_pool(&batch_topos, &pool));
            });
            (workers, r)
        })
        .collect();

    // --- content-addressed cache on a repeated-netlist workload ---
    // The same supervised G-1 session run n_sessions times: first
    // uncached (every analysis pays full testbed cost), then with one
    // shared cache (later sessions hit). Reports must be identical;
    // only the billed seconds drop.
    let supervisor = Supervisor::default();
    let session_perf = |report: &artisan_resilience::SessionReport| {
        report
            .outcome
            .as_ref()
            .and_then(|o| o.report.as_ref())
            .map(|r| r.performance)
    };
    let mut uncached_seconds = 0.0;
    let mut uncached_perfs = Vec::new();
    for _ in 0..n_sessions {
        let mut sim = Simulator::new();
        let report = supervisor.run(&Spec::g1(), &mut sim, 2024);
        assert!(report.success, "uncached cache-bench session failed");
        uncached_seconds += report.testbed_seconds;
        uncached_perfs.push(session_perf(&report));
    }
    let cache = SimCache::shared(4096);
    let mut cached_seconds = 0.0;
    let mut cached_perfs = Vec::new();
    let mut cached_hits = 0usize;
    for _ in 0..n_sessions {
        let mut sim = CachedSim::new(Simulator::new(), Arc::clone(&cache));
        let report = supervisor.run(&Spec::g1(), &mut sim, 2024);
        assert!(report.success, "cached cache-bench session failed");
        cached_seconds += report.testbed_seconds;
        cached_perfs.push(session_perf(&report));
        cached_hits += report.cache_hits;
    }
    assert_eq!(
        cached_perfs, uncached_perfs,
        "cache changed a session's reported design"
    );
    let cache_stats = cache.stats();
    assert!(cache_stats.hits > 0, "repeated workload never hit");
    assert!(
        cached_seconds < uncached_seconds,
        "cache did not reduce billed seconds"
    );
    assert_eq!(cached_hits as u64, cache_stats.hits);

    // --- persistent warm start: snapshot round-trip, second process ---
    // The same repeated workload, but the cache survives as a
    // versioned snapshot. One leg runs against a cache that may be
    // preloaded from `ARTISAN_SIM_CACHE_DIR` (the CI warm job's second
    // process starts here non-empty); the snapshot is then serialized,
    // reloaded in-process exactly as a new process would, and the
    // workload reruns on the loaded copy. Reports must be identical at
    // the binary level; only billing may change, and only downward.
    let persist_salt = config_salt(&AnalysisConfig::default());
    let run_workload = |cache: &Arc<SimCache>| {
        let mut seconds = 0.0;
        let mut perfs = Vec::new();
        let mut first_session_hits = 0usize;
        for s in 0..n_sessions {
            let mut sim =
                CachedSim::new(Simulator::new(), Arc::clone(cache)).with_salt(persist_salt);
            let report = supervisor.run(&Spec::g1(), &mut sim, 2024);
            assert!(report.success, "warm-start bench session failed");
            seconds += report.testbed_seconds;
            perfs.push(session_perf(&report));
            if s == 0 {
                first_session_hits = report.cache_hits;
            }
        }
        (seconds, perfs, first_session_hits)
    };
    let (env_cache, preload) = SimCache::from_env(4096, persist_salt);
    if let Some(warning) = &preload.warning {
        eprintln!("snapshot preload warning: {warning}");
    }
    let preloaded_entries = preload.entries_loaded;
    let (cold_seconds, cold_perfs, cold_first_hits) = run_workload(&env_cache);
    assert_eq!(
        cold_perfs, uncached_perfs,
        "warm-start workload diverged from the uncached reference"
    );
    if preloaded_entries > 0 {
        // A process warm-started from disk must hit from session one.
        assert!(
            cold_first_hits > 0,
            "preloaded {preloaded_entries} entries but the first session never hit"
        );
    }
    let snapshot = env_cache.snapshot_bytes(persist_salt);
    let (loaded, load_outcome) = SimCache::from_snapshot_bytes(&snapshot, 4096, persist_salt);
    assert!(
        load_outcome.warning.is_none(),
        "snapshot rejected: {:?}",
        load_outcome.warning
    );
    assert_eq!(load_outcome.entries_loaded, env_cache.len());
    assert_eq!(
        loaded.snapshot_bytes(persist_salt),
        snapshot,
        "save → load → save is not a byte-level fixed point"
    );
    let warm_cache = Arc::new(loaded);
    let (warm_seconds, warm_perfs, warm_first_hits) = run_workload(&warm_cache);
    assert_eq!(
        warm_perfs, cold_perfs,
        "snapshot warm start changed a session's reported design"
    );
    assert!(
        warm_first_hits > 0,
        "snapshot-loaded cache never hit in session one"
    );
    let warm_stats = warm_cache.stats();
    let warm_hit_rate = warm_stats.hit_rate();
    assert!(
        warm_hit_rate >= 0.875,
        "warm hit rate {warm_hit_rate:.3} below 0.875: {warm_stats}"
    );
    if preloaded_entries == 0 {
        // A genuinely cold first leg pays for every first simulation;
        // the warm leg must bill strictly less.
        assert!(
            warm_seconds < cold_seconds,
            "warm {warm_seconds} !< cold {cold_seconds}"
        );
    } else {
        assert!(
            warm_seconds <= cold_seconds + 1e-9,
            "warm {warm_seconds} > preloaded cold {cold_seconds}"
        );
    }

    // Persist for the next process and drop a stats artifact next to
    // the snapshot when the env directory is configured.
    if let Some(dir) = snapshot_dir_from_env() {
        let saved = env_cache
            .save_to_env_dir(persist_salt)
            .expect("env dir is set")
            .expect("snapshot save failed");
        eprintln!(
            "saved {} cache entries ({} bytes) to {}",
            saved.entries_saved,
            saved.bytes,
            dir.display()
        );
        let env_stats = env_cache.stats();
        let stats_json = format!(
            "{{\n  \"preloaded_entries\": {preloaded_entries},\n  \"entries_saved\": {},\n  \"snapshot_bytes\": {},\n  \"hits\": {},\n  \"misses\": {},\n  \"coalesced\": {},\n  \"hit_rate\": {:.3}\n}}\n",
            saved.entries_saved,
            saved.bytes,
            env_stats.hits,
            env_stats.misses,
            env_stats.coalesced,
            env_stats.hit_rate(),
        );
        std::fs::write(dir.join("cache_stats.json"), stats_json).expect("writes cache stats");
    }

    // --- single-flight: concurrent misses on one fingerprint ---
    // N threads race the same topology against one empty shared cache.
    // Whatever the interleaving, exactly one inner simulation runs (the
    // single miss); every other thread is served by the in-flight cell
    // (coalesced) or by the cache it filled (hit).
    let sf_threads = 4usize;
    let sf_cache = SimCache::shared(64);
    let sf_topo = Topology::nmc_example();
    let sf_reports: Vec<artisan_sim::Performance> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sf_threads)
            .map(|_| {
                let cache = Arc::clone(&sf_cache);
                let topo = &sf_topo;
                scope.spawn(move || {
                    let mut sim = CachedSim::new(Simulator::new(), cache);
                    sim.analyze_topology(topo).expect("analyzes").performance
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("single-flight thread panicked"))
            .collect()
    });
    assert!(
        sf_reports.windows(2).all(|w| w[0] == w[1]),
        "racing threads disagreed on the report"
    );
    let sf_stats = sf_cache.stats();
    assert_eq!(
        sf_stats.misses, 1,
        "more than one inner simulation ran: {sf_stats}"
    );
    assert_eq!(
        sf_stats.hits + sf_stats.coalesced,
        (sf_threads - 1) as u64,
        "served count off: {sf_stats}"
    );

    // --- ERC screening: doomed candidates at screen cost, not sim cost ---
    // A mixed candidate corpus, the join-phase shape: the legal recipe
    // examples and sampled legal topologies, each base followed by
    // randomly mutated (often structurally broken) neighbours, plus two
    // hand-written doomed netlists (a reference-free island and a
    // severed signal path) the screen is guaranteed to catch. The same
    // corpus runs through the bare simulator and through the screened
    // stack; every surviving report must be identical, and the billed
    // testbed seconds must come out strictly lower.
    let screen_corpus: Vec<Netlist> = {
        let mut rng = StdRng::seed_from_u64(11);
        let ranges = SampleRanges::default();
        let mut legal: Vec<Netlist> = vec![
            Topology::nmc_example().elaborate().expect("valid"),
            Topology::dfc_example().elaborate().expect("valid"),
        ];
        legal.extend((0..6).map(|_| {
            sample_topology(&mut rng, &ranges, 10e-12)
                .elaborate()
                .expect("legal sample elaborates")
        }));
        let mut corpus = Vec::new();
        for base in &legal {
            corpus.push(base.clone());
            for _ in 0..3 {
                corpus.push(mutate_netlist(&mut rng, base));
            }
        }
        corpus.push(
            Netlist::parse(
                "* island\nG1 out 0 in 0 1m\nR1 out 0 1k\nR2 n1 n2 1k\nC2 n1 n2 1p\nCL out 0 10p\n.end\n",
            )
            .expect("island netlist parses"),
        );
        corpus.push(
            Netlist::parse(
                "* severed\nR1 in 0 1k\nG1 out 0 n1 0 1m\nR2 out 0 1k\nR3 n1 0 1k\nCL out 0 10p\n.end\n",
            )
            .expect("severed netlist parses"),
        );
        corpus
    };

    let linter = Linter::errors_only();
    let lint_rate = rate(reps, screen_corpus.len(), || {
        for n in &screen_corpus {
            black_box(linter.lint(n));
        }
    });

    let cost_model = CostModel::default();
    let mut bare_sim = Simulator::new();
    let bare_decisions: Vec<Option<artisan_sim::Performance>> = screen_corpus
        .iter()
        .map(|n| bare_sim.analyze_netlist(n).ok().map(|r| r.performance))
        .collect();
    let unscreened_seconds = bare_sim.ledger().testbed_seconds(&cost_model);

    let verdict_cache = SimCache::shared(4096);
    let mut screened_sim = ScreenedSim::new(Simulator::new()).with_cache(verdict_cache);
    let screened_decisions: Vec<Option<artisan_sim::Performance>> = screen_corpus
        .iter()
        .map(|n| screened_sim.analyze_netlist(n).ok().map(|r| r.performance))
        .collect();
    let screened_seconds = screened_sim.ledger().testbed_seconds(&cost_model);
    assert_eq!(
        screened_decisions, bare_decisions,
        "screening changed a surviving report"
    );
    let screened_out = screened_sim.screened_out();
    assert!(
        screened_out >= 2,
        "the hand-written doomed candidates were not screened"
    );
    assert!(
        screened_seconds < unscreened_seconds,
        "screening did not reduce billed seconds: {screened_seconds} !< {unscreened_seconds}"
    );
    let screened_out_rate = screened_out as f64 / screen_corpus.len() as f64;

    // --- sparse MNA core: dense/sparse crossover on netgen ladders ---
    // Solve throughput (assemble + factor + solve per point, reused
    // workspace) forced dense vs forced sparse on the behavioural gain
    // ladders, at dimensions below, at, and far above the crossover.
    // Repetitions shrink with dimension so the dense O(dim³) reference
    // legs stay bounded.
    let sparse_cfg = SweepConfig {
        f_start: 1.0,
        f_stop: 1e8,
        points_per_decade: 8,
    };
    let sparse_freqs = sparse_cfg.frequencies().expect("grid");
    let sparse_rows: Vec<(usize, f64, f64, bool)> = netgen::CROSSOVER_DIMS
        .iter()
        .map(|&dim| {
            let ladder = netgen::ladder(dim);
            let dense_sys = MnaSystem::with_mode(&ladder, MnaMode::Dense).expect("dense builds");
            let sparse_sys = MnaSystem::with_mode(&ladder, MnaMode::Sparse).expect("sparse builds");
            // Agreement guard: throughput means nothing unless both
            // modes produce the same transfer function.
            {
                let mut wd = dense_sys.workspace();
                let mut wsp = sparse_sys.workspace();
                for &f in &sparse_freqs {
                    let s = Complex64::jomega(2.0 * PI * f);
                    let hd = dense_sys.transfer_with(s, &mut wd).expect("dense solves");
                    let hs = sparse_sys
                        .transfer_with(s, &mut wsp)
                        .expect("sparse solves");
                    assert!(
                        (hd - hs).abs() <= 1e-9 * hd.abs().max(1e-300),
                        "dim {dim}, f {f}: dense {hd:?} vs sparse {hs:?}"
                    );
                }
            }
            let leg_reps = (reps * 8 / dim.max(8)).max(1);
            let mut wd = dense_sys.workspace();
            let dense_rate = rate(leg_reps, sparse_freqs.len(), || {
                for &f in &sparse_freqs {
                    black_box(
                        dense_sys
                            .transfer_with(Complex64::jomega(2.0 * PI * f), &mut wd)
                            .expect("solves"),
                    );
                }
            });
            let mut wsp = sparse_sys.workspace();
            let sparse_rate = rate(leg_reps, sparse_freqs.len(), || {
                for &f in &sparse_freqs {
                    black_box(
                        sparse_sys
                            .transfer_with(Complex64::jomega(2.0 * PI * f), &mut wsp)
                            .expect("solves"),
                    );
                }
            });
            let auto_sparse = MnaSystem::new(&ladder).expect("auto builds").is_sparse();
            (dim, dense_rate, sparse_rate, auto_sparse)
        })
        .collect();
    for &(dim, dense_rate, sparse_rate, auto_sparse) in &sparse_rows {
        if dim <= artisan_sim::SPARSE_MIN_DIM {
            // Below the crossover the auto path stays dense — the
            // pre-sparse hot path, so small circuits cannot regress.
            assert!(
                !auto_sparse || !artisan_sim::sparse_enabled_from_env(),
                "dim {dim} auto-selected sparse below the crossover"
            );
        } else {
            assert!(
                sparse_rate >= 5.0 * dense_rate,
                "dim {dim}: sparse {sparse_rate:.0}/s is not ≥5× dense {dense_rate:.0}/s"
            );
        }
    }

    // Zero allocations and exact symbolic reuse on the warmed sparse
    // hot loop: after the first sweep lazily builds the scratch, a full
    // second sweep must allocate nothing and run exactly one numeric
    // factorization per point against the same symbolic analysis.
    let hot_sys =
        MnaSystem::with_mode(&netgen::ladder(120), MnaMode::Sparse).expect("hot ladder builds");
    let hot_symbolic = Arc::clone(hot_sys.sparse_symbolic().expect("sparse symbolic"));
    let mut hot_ws = hot_sys.workspace();
    for &f in &sparse_freqs {
        black_box(
            hot_sys
                .transfer_with(Complex64::jomega(2.0 * PI * f), &mut hot_ws)
                .expect("solves"),
        );
    }
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let factors_before = hot_symbolic.numeric_factor_count();
    for &f in &sparse_freqs {
        black_box(
            hot_sys
                .transfer_with(Complex64::jomega(2.0 * PI * f), &mut hot_ws)
                .expect("solves"),
        );
    }
    let hot_loop_allocations = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let hot_loop_factors = hot_symbolic.numeric_factor_count() - factors_before;
    assert_eq!(
        hot_loop_allocations, 0,
        "warmed sparse hot loop allocated {hot_loop_allocations} times"
    );
    assert_eq!(
        hot_loop_factors,
        sparse_freqs.len() as u64,
        "numeric factor ledger drifted: one factorization per point expected"
    );

    // Kill switch: `ARTISAN_SPARSE=0` must reproduce the default-path
    // results — bit-identical AnalysisReports on the candidate corpus
    // (small systems, dense either way by the crossover rule) and
    // tolerance-identical sweeps on a ladder the auto path solves
    // sparsely.
    let saved_sparse_env = std::env::var(artisan_sim::SPARSE_ENV).ok();
    std::env::remove_var(artisan_sim::SPARSE_ENV);
    let corpus_reports_on: Vec<Option<artisan_sim::Performance>> = batch_topos
        .iter()
        .map(|t| {
            Simulator::new()
                .analyze_topology(t)
                .ok()
                .map(|r| r.performance)
        })
        .collect();
    let lad50 = netgen::ladder(50);
    let auto_on = MnaSystem::new(&lad50).expect("builds");
    assert!(
        auto_on.is_sparse(),
        "dim-50 ladder should auto-select sparse"
    );
    let sweep_on =
        sweep_with_pool(&auto_on, &sparse_cfg, &ThreadPool::with_workers(1)).expect("sweeps");
    std::env::set_var(artisan_sim::SPARSE_ENV, "0");
    let corpus_reports_off: Vec<Option<artisan_sim::Performance>> = batch_topos
        .iter()
        .map(|t| {
            Simulator::new()
                .analyze_topology(t)
                .ok()
                .map(|r| r.performance)
        })
        .collect();
    let auto_off = MnaSystem::new(&lad50).expect("builds");
    assert!(!auto_off.is_sparse(), "kill switch did not force dense");
    let sweep_off =
        sweep_with_pool(&auto_off, &sparse_cfg, &ThreadPool::with_workers(1)).expect("sweeps");
    match saved_sparse_env {
        Some(v) => std::env::set_var(artisan_sim::SPARSE_ENV, v),
        None => std::env::remove_var(artisan_sim::SPARSE_ENV),
    }
    assert_eq!(
        corpus_reports_on, corpus_reports_off,
        "kill switch changed a candidate-corpus report"
    );
    assert_eq!(sweep_on.len(), sweep_off.len());
    for (a, b) in sweep_on.iter().zip(&sweep_off) {
        assert!(
            (a.h - b.h).abs() <= 1e-9 * a.h.abs().max(1e-300),
            "kill switch drifted the ladder sweep at f = {}: {:?} vs {:?}",
            a.freq,
            a.h,
            b.h
        );
    }
    let kill_switch_reports_identical = true;

    // --- durable session journals: append overhead + crash resume ---
    // The same batch of flaky supervised sessions three ways: detached
    // (no journal, the reference), journaled from scratch (measures the
    // write-ahead append overhead), and journaled again after one
    // session's journal is cut back to its first attempt record — the
    // exact on-disk state a crash mid-session leaves behind (every
    // append is an atomic whole-file rewrite, so a crash always leaves
    // a clean record prefix). The resumed leg must reproduce every
    // report field-for-field while billing strictly fewer fresh testbed
    // seconds than the clean leg.
    let journal_dir =
        std::env::temp_dir().join(format!("artisan-bench-journal-{}", std::process::id()));
    std::fs::remove_dir_all(&journal_dir).ok();
    std::fs::create_dir_all(&journal_dir).expect("journal dir");
    let j_sessions = n_sessions.clamp(2, 4);
    let j_scheduler = Scheduler::with_pool(Supervisor::default(), ThreadPool::with_workers(2));
    let j_backends = || -> Vec<FaultySim<Simulator>> {
        (0..j_sessions)
            .map(|k| FaultySim::new(Simulator::new(), FaultPlan::flaky(1000 + k as u64, 0.3)))
            .collect()
    };
    let t_plain = Instant::now();
    let j_plain = j_scheduler.run_batch(&Spec::g1(), j_backends(), 4242);
    let plain_wall = t_plain.elapsed().as_secs_f64();
    let clean_billed: f64 = j_plain
        .iter()
        .map(|s| s.backend.ledger().testbed_seconds(&cost_model))
        .sum();
    let t_journaled = Instant::now();
    let j_first = j_scheduler.run_batch_journaled(&Spec::g1(), j_backends(), 4242, &journal_dir, 0);
    let journaled_wall = t_journaled.elapsed().as_secs_f64();
    for (k, w) in j_first.warnings() {
        eprintln!("journal warning (session {k}): {w}");
    }
    for (a, b) in j_first.sessions.iter().zip(&j_plain) {
        assert_eq!(
            a.report, b.report,
            "journaling changed session {}",
            a.session
        );
    }
    let journal_appends: u64 = j_first.journals.iter().map(|j| j.appends).sum();
    let journal_bytes: u64 = j_first.journals.iter().map(|j| j.bytes_written).sum();
    let journal_attempts: usize = j_first.sessions.iter().map(|s| s.report.attempts).sum();
    let append_overhead_secs =
        (journaled_wall - plain_wall).max(0.0) / (journal_appends.max(1) as f64);

    // Crash the session with the most attempts: keep only its first
    // attempt record (public-API rewrite, same bytes a mid-run kill
    // leaves), so the resume leg both restores attempts and re-runs a
    // genuine tail.
    let victim = j_first
        .sessions
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| s.report.attempts)
        .map(|(k, _)| k)
        .expect("batch is non-empty");
    let victim_path = j_first.journals[victim].path.clone();
    let victim_seed = j_first.sessions[victim].seed;
    let (full, full_load) =
        SessionJournal::open(&victim_path, j_first.plan_fingerprint, victim_seed);
    assert!(
        full_load.terminal,
        "finished session's journal lost its verdict"
    );
    let kept = full
        .attempt_records()
        .next()
        .expect("finished session journaled at least one attempt")
        .clone();
    std::fs::remove_file(&victim_path).expect("removes victim journal");
    let (mut cut, _) = SessionJournal::open(&victim_path, j_first.plan_fingerprint, victim_seed);
    cut.append(JournalRecord::Attempt(kept))
        .expect("rewrites the crash-state journal");

    let j_resumed =
        j_scheduler.run_batch_journaled(&Spec::g1(), j_backends(), 4242, &journal_dir, 0);
    for (k, w) in j_resumed.warnings() {
        eprintln!("journal warning (resume, session {k}): {w}");
    }
    assert!(
        j_resumed.warnings().is_empty(),
        "resume leg rejected a journal"
    );
    for (a, b) in j_resumed.sessions.iter().zip(&j_plain) {
        assert_eq!(
            a.report, b.report,
            "resumed session {} diverged from the clean reference",
            a.session
        );
    }
    assert_eq!(
        j_resumed.resumed_terminal(),
        j_sessions - 1,
        "only the crashed session should re-run"
    );
    let attempts_restored = j_resumed.attempts_restored();
    assert!(attempts_restored >= 1, "resume restored no attempts");
    let resumed_billed: f64 = j_resumed
        .sessions
        .iter()
        .map(|s| s.backend.ledger().testbed_seconds(&cost_model))
        .sum();
    assert!(
        resumed_billed < clean_billed,
        "resume was not cheaper: {resumed_billed} !< {clean_billed}"
    );
    std::fs::remove_dir_all(&journal_dir).ok();

    // --- PVT corner engine: batched grid vs naive per-corner analyze ---
    // The 27-corner default grid on the dim-80 loaded ladder (the load
    // axis needs an explicit `CL` to scale), swept over a band matched
    // to the ladder's crossing region — the workload a sign-off corner
    // sweep actually runs. The naive reference runs a full fresh
    // analysis per corner — admission gate, new MNA system and symbolic
    // factorization, pole/zero extraction, full sweep. The engine path
    // pays the nominal analysis once, then re-measures only the AC
    // margins per corner against the nominal topology's shared symbolic
    // LU with early-exit sweeps, fanned over the pool.
    let corner_grid = artisan_sim::CornerGrid::default();
    let corner_points = corner_grid.corners();
    let corner_count = corner_points.len();
    let corner_netlist = netgen::loaded_ladder(80);
    // The ladder's stage poles sit near 8 MHz and its unity crossing
    // near 16 MHz; [1e4, 1e8] Hz at the default density covers the flat
    // band, the roll-off, and the crossing for every corner.
    let corner_config = AnalysisConfig {
        sweep: SweepConfig {
            f_start: 1.0e4,
            f_stop: 1.0e8,
            ..SweepConfig::default()
        },
        ..AnalysisConfig::default()
    };
    let corner_cl = corner_netlist
        .find("CL")
        .expect("loaded ladder has CL")
        .value();
    let nominal_report = Simulator::with_config(corner_config)
        .analyze_netlist(&corner_netlist)
        .expect("nominal loaded ladder analyzes");
    let nominal_power = nominal_report.performance.power;
    let corner_donor = MnaSystem::new(&corner_netlist).expect("corner donor builds");
    let corner_pool = ThreadPool::from_env();

    // Exactly one symbolic factorization per topology: every corner
    // variant adopts the donor's symbolic analysis (same Arc), and all
    // of a grid's numeric refactors flow through that single symbolic's
    // reuse counter. (Skipped under ARTISAN_SPARSE=0, where dim 50 runs
    // dense and there is no symbolic to share.)
    let corner_symbolic_shared = match corner_donor.sparse_symbolic() {
        Some(donor_symbolic) => {
            let donor_symbolic = Arc::clone(donor_symbolic);
            for corner in &corner_points {
                let scaled = corner.apply(&corner_netlist);
                let sys = MnaSystem::new_sharing_symbolic(&scaled, &corner_donor)
                    .expect("corner variant shares the donor symbolic");
                assert!(
                    sys.sparse_symbolic()
                        .is_some_and(|s| Arc::ptr_eq(s, &donor_symbolic)),
                    "corner {corner:?} grew its own symbolic factorization"
                );
            }
            let factors_before = donor_symbolic.numeric_factor_count();
            let probe = artisan_sim::corners::evaluate_grid_with_pool(
                &corner_config,
                &corner_netlist,
                corner_cl,
                nominal_power,
                &corner_grid,
                &corner_donor,
                &corner_pool,
            );
            assert!(
                probe.all_passed(),
                "default grid failed on the ladder: {probe:?}"
            );
            // Early-exit sweeps stop past the unity crossing, so the
            // exact per-corner solve count is data-dependent; every
            // corner still factors at least its DC point and the
            // crossing bracket through the one shared symbolic.
            let grid_factors = donor_symbolic.numeric_factor_count() - factors_before;
            assert!(
                grid_factors >= (corner_count * 4) as u64,
                "grid numeric work bypassed the shared symbolic: {grid_factors} factors"
            );
            true
        }
        None => {
            assert!(
                !artisan_sim::sparse_enabled_from_env(),
                "dim-80 donor lost its symbolic with sparse enabled"
            );
            false
        }
    };

    let corner_reps = (reps / 8).max(2);
    let naive_corner_rate = rate(corner_reps, corner_count, || {
        for corner in &corner_points {
            let scaled = corner.apply(&corner_netlist);
            black_box(
                Simulator::with_config(corner_config)
                    .analyze_netlist(&scaled)
                    .expect("naive corner analyzes"),
            );
        }
    });
    let engine_corner_rate = rate(corner_reps, corner_count, || {
        black_box(artisan_sim::corners::evaluate_grid_with_pool(
            &corner_config,
            &corner_netlist,
            corner_cl,
            nominal_power,
            &corner_grid,
            &corner_donor,
            &corner_pool,
        ));
    });
    let corner_speedup = engine_corner_rate / naive_corner_rate;
    // The ≥5× headline is claimed for the sparse tier (shared symbolic
    // LU); a forced-dense run still reports its measured ratio but the
    // dense sweep dominates both paths and the floor does not apply.
    if corner_symbolic_shared {
        assert!(
            corner_speedup >= 5.0,
            "corner engine {engine_corner_rate:.1}/s is not ≥5× naive {naive_corner_rate:.1}/s"
        );
    }

    // Cached worst-case verdicts: a warm CornerSim sharing the cold
    // run's cache serves the identical verdict while billing zero
    // corner sims.
    let corner_cache = SimCache::shared(1024);
    let mut cold_corner_sim =
        artisan_sim::CornerSim::new(Simulator::with_config(corner_config), corner_grid.clone())
            .with_config(corner_config)
            .with_cache(Arc::clone(&corner_cache));
    let cold_corner_report = cold_corner_sim
        .analyze_netlist(&corner_netlist)
        .expect("cold corner analysis");
    let cold_corner_sims = cold_corner_sim.ledger().corner_sims();
    assert_eq!(
        cold_corner_sims, corner_count as u64,
        "cold run billed the whole grid"
    );
    let mut warm_corner_sim =
        artisan_sim::CornerSim::new(Simulator::with_config(corner_config), corner_grid.clone())
            .with_config(corner_config)
            .with_cache(Arc::clone(&corner_cache));
    let warm_corner_report = warm_corner_sim
        .analyze_netlist(&corner_netlist)
        .expect("warm corner analysis");
    let warm_corner_sims = warm_corner_sim.ledger().corner_sims();
    assert_eq!(warm_corner_sims, 0, "warm run re-evaluated a cached grid");
    let cold_wc = cold_corner_report.worst_case.expect("cold verdict");
    let warm_wc = warm_corner_report.worst_case.expect("warm verdict");
    assert_eq!(cold_wc, warm_wc, "cached verdict drifted from the cold one");

    // Kill switch: `ARTISAN_CORNERS=0` must reproduce the bare
    // simulator bit-for-bit — no verdict, no corner billing.
    let saved_corners_env = std::env::var(artisan_sim::CORNERS_ENV).ok();
    std::env::set_var(artisan_sim::CORNERS_ENV, "0");
    let mut off_sim = artisan_sim::CornerSim::from_env(
        Simulator::with_config(corner_config),
        corner_grid.clone(),
    );
    let off_report = off_sim
        .analyze_netlist(&corner_netlist)
        .expect("kill-switch analysis");
    match saved_corners_env {
        Some(v) => std::env::set_var(artisan_sim::CORNERS_ENV, v),
        None => std::env::remove_var(artisan_sim::CORNERS_ENV),
    }
    assert!(
        off_report.worst_case.is_none(),
        "kill switch leaked a verdict"
    );
    assert_eq!(off_sim.ledger().corner_sims(), 0);
    assert_eq!(
        off_report.performance, nominal_report.performance,
        "kill switch changed the nominal report"
    );
    let corners_kill_switch_identical = true;

    let sparse_rows_json = sparse_rows
        .iter()
        .map(|&(dim, dense_rate, sparse_rate, auto_sparse)| {
            format!(
                "    {{ \"dim\": {dim}, \"dense_solves_per_sec\": {dense_rate:.1}, \"sparse_solves_per_sec\": {sparse_rate:.1}, \"speedup_sparse_vs_dense\": {:.3}, \"auto_mode\": \"{}\" }}",
                sparse_rate / dense_rate,
                if auto_sparse { "sparse" } else { "dense" }
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let speedup_at_dim50 = sparse_rows
        .iter()
        .find(|&&(dim, ..)| dim == 50)
        .map_or(0.0, |&(_, d, s, _)| s / d);

    let fmt_scaling = |rates: &[(usize, f64)], unit: &str| -> String {
        let base = rates.iter().find(|(w, _)| *w == 1).map_or(1.0, |&(_, r)| r);
        rates
            .iter()
            .map(|&(w, r)| {
                format!(
                    "    {{ \"workers\": {w}, \"{unit}\": {r:.1}, \"speedup_vs_1_thread\": {:.3} }}",
                    r / base
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };

    let json = format!(
        "{{\n  \"bench\": \"parallel simulation engine (NMC example, default sweep grid)\",\n  \"host\": {{ \"available_parallelism\": {host_parallelism}, \"artisan_threads_env\": {} }},\n  \"sweep_points\": {n_points},\n  \"reps\": {reps},\n  \"assembly\": {{\n    \"cached_points_per_sec\": {asm_cached:.1},\n    \"legacy_points_per_sec\": {asm_legacy:.1},\n    \"speedup_cached_vs_legacy\": {:.3}\n  }},\n  \"solve\": {{\n    \"cached_workspace_points_per_sec\": {solve_cached:.1},\n    \"legacy_alloc_points_per_sec\": {solve_legacy:.1},\n    \"speedup_cached_vs_legacy\": {:.3}\n  }},\n  \"sweep_threads\": [\n{}\n  ],\n  \"batch_candidates\": {},\n  \"batch_threads\": [\n{}\n  ],\n  \"scheduler_sessions\": {n_sessions},\n  \"scheduler_threads\": [\n{}\n  ],\n  \"sim_cache\": {{\n    \"workload\": \"{n_sessions} identical supervised G-1 sessions, one shared cache\",\n    \"billed_testbed_seconds_uncached\": {uncached_seconds:.1},\n    \"billed_testbed_seconds_cached\": {cached_seconds:.1},\n    \"billed_seconds_saved\": {:.1},\n    \"hits\": {},\n    \"misses\": {},\n    \"hit_rate\": {:.3},\n    \"reports_identical\": true\n  }},\n  \"warm_start\": {{\n    \"preloaded_entries\": {preloaded_entries},\n    \"snapshot_entries\": {},\n    \"snapshot_bytes\": {},\n    \"round_trip_identical\": true,\n    \"billed_testbed_seconds_cold\": {cold_seconds:.1},\n    \"billed_testbed_seconds_warm\": {warm_seconds:.1},\n    \"warm_hit_rate\": {warm_hit_rate:.3},\n    \"reports_identical\": true\n  }},\n  \"single_flight\": {{\n    \"threads\": {sf_threads},\n    \"inner_simulations\": {},\n    \"served_without_simulating\": {}\n  }},\n  \"journal\": {{\n    \"workload\": \"{j_sessions} flaky supervised G-1 sessions, crash-cut to one attempt then resumed\",\n    \"sessions\": {j_sessions},\n    \"attempts\": {journal_attempts},\n    \"appends\": {journal_appends},\n    \"bytes_per_append\": {:.1},\n    \"append_overhead_seconds_per_append\": {append_overhead_secs:.6},\n    \"billed_testbed_seconds_clean\": {clean_billed:.1},\n    \"billed_testbed_seconds_resumed\": {resumed_billed:.1},\n    \"attempts_restored\": {attempts_restored},\n    \"resumed_terminal\": {},\n    \"resume_strictly_cheaper\": true,\n    \"reports_identical\": true\n  }},\n  \"sparse\": {{\n    \"netlists\": \"behavioural gain ladders (netgen), forced dense vs forced sparse\",\n    \"grid_points\": {},\n    \"dims\": [\n{sparse_rows_json}\n  ],\n    \"speedup_at_dim50\": {speedup_at_dim50:.3},\n    \"hot_loop_allocations\": {hot_loop_allocations},\n    \"numeric_factors_per_sweep\": {hot_loop_factors},\n    \"symbolic_reuse_ok\": true,\n    \"kill_switch_reports_identical\": {kill_switch_reports_identical}\n  }},\n  \"screening\": {{\n    \"corpus_netlists\": {},\n    \"lint_throughput_netlists_per_sec\": {lint_rate:.1},\n    \"screened_out\": {screened_out},\n    \"screened_out_rate\": {screened_out_rate:.3},\n    \"billed_testbed_seconds_unscreened\": {unscreened_seconds:.1},\n    \"billed_testbed_seconds_screened\": {screened_seconds:.1},\n    \"billed_seconds_saved\": {:.1},\n    \"surviving_reports_identical\": true\n  }},\n  \"corners\": {{\n    \"workload\": \"27-corner default PVT grid, dim-80 loaded ladder, 1e4-1e8 Hz sweep at default density\",\n    \"grid_corners\": {corner_count},\n    \"naive_corner_analyses_per_sec\": {naive_corner_rate:.2},\n    \"engine_corner_evals_per_sec\": {engine_corner_rate:.2},\n    \"speedup_engine_vs_naive\": {corner_speedup:.3},\n    \"corner_symbolic_shared\": {corner_symbolic_shared},\n    \"cold_corner_sims_billed\": {cold_corner_sims},\n    \"warm_corner_sims_billed\": {warm_corner_sims},\n    \"worst_case_identical_cold_vs_warm\": true,\n    \"kill_switch_reports_identical\": {corners_kill_switch_identical}\n  }}\n}}\n",
        threads_env.map_or("null".to_string(), |v| format!("\"{v}\"")),
        asm_cached / asm_legacy,
        solve_cached / solve_legacy,
        fmt_scaling(&sweep_rates, "sweeps_points_per_sec"),
        batch_topos.len(),
        fmt_scaling(&batch_rates, "batched_analyses_per_sec"),
        fmt_scaling(&scheduler_rates, "sessions_per_sec"),
        uncached_seconds - cached_seconds,
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.hit_rate(),
        load_outcome.entries_loaded,
        snapshot.len(),
        sf_stats.misses,
        sf_stats.hits + sf_stats.coalesced,
        journal_bytes as f64 / journal_appends.max(1) as f64,
        j_resumed.resumed_terminal(),
        sparse_freqs.len(),
        screen_corpus.len(),
        unscreened_seconds - screened_seconds,
    );

    std::fs::write(&out_path, &json).expect("writes report");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
