//! Regenerates **Fig. 4** (the hierarchical design-process modeling):
//! the top-level ToT decision trace and the bottom-level CoT eight-step
//! flow, printed from a live G-1 design session.
//!
//! Run with: `cargo run --release -p artisan-bench --bin fig4`

use artisan_agents::prompter::{DesignStep, Prompter};
use artisan_agents::{AgentConfig, ArtisanAgent};
use artisan_sim::{Simulator, Spec};
use rand::SeedableRng;

fn main() {
    println!("=== top level: ToT decision points ===");
    println!("decision 1: architecture selection from the specs");
    println!("decision 2: architecture modification from simulation feedback\n");

    println!("=== bottom level: the CoT design flow (NMC) ===");
    for (k, step) in DesignStep::ALL.iter().enumerate() {
        println!(
            "step {}: {:<20} — {}",
            k + 1,
            step.name(),
            Prompter::question_for(*step)
        );
    }

    println!("\n=== live trace on G-1 ===");
    let mut agent = ArtisanAgent::untrained(AgentConfig::noiseless());
    let mut sim = Simulator::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let outcome = agent.design(&Spec::g1(), &mut sim, &mut rng);
    println!("{}", outcome.tot_trace);
    println!(
        "CoT executed {} exchanges over {} iteration(s); success = {}",
        outcome.transcript.exchange_count(),
        outcome.iterations,
        outcome.success
    );
}
