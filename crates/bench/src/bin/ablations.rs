//! Ablation studies called out in `DESIGN.md` §3:
//!
//! 1. **ToT modification loop on/off** — noisy Artisan's success rate per
//!    group with zero vs one feedback iteration,
//! 2. **Butterworth vs naive pole placement** — phase margin of the NMC
//!    recipe against a single-pole-ignorant allocation (`gm3 = 2π·GBW·CL`),
//! 3. **DAPT on/off** — perplexity of held-out opamp text under the
//!    domain-adapted vs an off-domain language model,
//! 4. **Augmentation on/off** — distinct-document diversity of the
//!    NetlistTuple split.
//!
//! Run with: `cargo run --release -p artisan-bench --bin ablations [--trials 10]`

// Experiment driver: aborting on a failed setup step is the idiom here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use artisan_agents::artisan_llm::NoiseModel;
use artisan_agents::{AgentConfig, ArtisanAgent};
use artisan_bench::arg_or;
use artisan_circuit::design::{nmc_topology, DesignTarget};
use artisan_circuit::units::{Ohms, Siemens};
use artisan_dataset::{DatasetConfig, OpampDataset};
use artisan_llm::DomainLm;
use artisan_sim::{Simulator, Spec};
use rand::SeedableRng;
use std::f64::consts::PI;

fn main() {
    let trials: u64 = arg_or("--trials", 10u64);

    println!("== Ablation 1: ToT modification loop ==");
    for iterations in [0usize, 1] {
        let config = AgentConfig {
            noise: NoiseModel::paper_default(),
            max_iterations: iterations,
            ..AgentConfig::noiseless()
        };
        print!("max_iterations = {iterations}: ");
        let mut agent = ArtisanAgent::untrained(config);
        for (name, spec) in Spec::table2() {
            let mut s = 0;
            for seed in 0..trials {
                let mut sim = Simulator::new();
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed * 31 + 7);
                if agent.design(&spec, &mut sim, &mut rng).success {
                    s += 1;
                }
            }
            print!("{name} {s}/{trials}  ");
        }
        println!();
    }

    println!("\n== Ablation 2: Butterworth vs naive pole placement (G-1) ==");
    let target = DesignTarget {
        gbw_hz: 1.05e6,
        cl: 10e-12,
        rl: 1e6,
        gain_db: 85.0,
        power_budget_w: 250e-6,
    };
    let mut sim = Simulator::new();
    let butterworth = nmc_topology(&target);
    let report = sim.analyze_topology(&butterworth).expect("analyzes");
    println!(
        "Butterworth (gm3 = 8π·GBW·CL + safety): {}",
        report.performance
    );
    let mut naive = butterworth.clone();
    let naive_gm3 = 2.0 * PI * target.gbw_hz * target.cl;
    naive.skeleton.stage3.gm = Siemens(naive_gm3);
    naive.skeleton.stage3.ro = Ohms(80.0 / naive_gm3);
    match sim.analyze_topology(&naive) {
        Ok(r) => println!(
            "naive (gm3 = 2π·GBW·CL):               {} (stable = {})",
            r.performance, r.stable
        ),
        Err(e) => println!("naive: simulation failed: {e}"),
    }

    println!("\n== Ablation 3: DAPT (perplexity under the domain-adapted LM) ==");
    // Perplexities are only comparable under one tokenizer, so the probe
    // holds the model fixed and varies the text: after DAPT the model
    // should find held-out opamp prose far more predictable than
    // off-domain prose.
    let ds = OpampDataset::build(&DatasetConfig::default(), 2024);
    let in_domain = "the nested miller compensation capacitor controls the dominant pole \
                     of the three stage operational amplifier";
    let off_domain = "the recipe simmers tomatoes garlic and basil for twenty minutes \
                      before the pasta is folded into the sauce";
    let mut lm = DomainLm::new(1500, 3);
    lm.pretrain(&ds.pretraining_documents());
    println!(
        "held-out opamp text: {:.1}   off-domain text: {:.1}",
        lm.perplexity(in_domain).expect("non-empty"),
        lm.perplexity(off_domain).expect("non-empty"),
    );

    println!("\n== Ablation 4: augmentation on/off (NetlistTuple diversity) ==");
    for copies in [0usize, 1, 2] {
        let cfg = DatasetConfig {
            augment_copies: copies,
            ..DatasetConfig::tiny()
        };
        let ds = OpampDataset::build(&cfg, 5);
        let distinct: std::collections::BTreeSet<&String> = ds.netlist_tuple_docs.iter().collect();
        println!(
            "augment_copies = {copies}: {} docs, {} distinct",
            ds.netlist_tuple_docs.len(),
            distinct.len()
        );
    }
}
