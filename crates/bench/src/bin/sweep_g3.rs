//! Calibration probe for the high-GBW (G-3) NMC variant: find the
//! pole-ratio / compensation-fraction combination with the best worst-case
//! margin across Gain, GBW, PM, and Power.
//!
//! Run with: `cargo run --release -p artisan-bench --bin sweep_g3`

// Experiment driver: aborting on a failed setup step is the idiom here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use artisan_circuit::units::{Farads, Siemens};
use artisan_circuit::{
    ConnectionParams, ConnectionType, Placement, Position, Skeleton, StageParams, Topology,
};
use artisan_sim::{Simulator, Spec};

use std::f64::consts::PI;

fn main() {
    let mut sim = Simulator::new();
    let _spec = Spec::g3();
    let mut rows: Vec<(f64, String)> = Vec::new();
    for gbw in [5.5e6, 6.0e6, 6.5e6, 7.0e6] {
        for k3 in [2.5, 3.0, 3.5, 4.0] {
            for cm1f in [0.08, 0.12, 0.15, 0.2] {
                for cm2f in [0.04, 0.06, 0.08, 0.12] {
                    let cl = 10e-12;
                    let gm3 = 2.0 * k3 * PI * gbw * cl;
                    let cm1 = cm1f * cl;
                    let cm2 = cm2f * cl;
                    let gm1 = 2.0 * PI * gbw * cm1;
                    let gm2 = gm3 * cm2 / (2.0 * cl);
                    let sk = Skeleton::new(
                        StageParams::from_gm_and_gain(gm1, 150.0),
                        StageParams::from_gm_and_gain(gm2, 100.0),
                        StageParams::from_gm_and_gain(gm3, 80.0),
                        1e6,
                        cl,
                    );
                    let mut t = Topology::new(sk);
                    t.place(Placement::new(
                        Position::N1ToOut,
                        ConnectionType::MillerCapacitor,
                        ConnectionParams {
                            c: Some(Farads(cm1)),
                            r: None,
                            gm: None,
                        },
                    ))
                    .expect("legal");
                    t.place(Placement::new(
                        Position::N2ToOut,
                        ConnectionType::MillerCapacitor,
                        ConnectionParams {
                            c: Some(Farads(cm2)),
                            gm: Some(Siemens(0.0)).filter(|_| false),
                            r: None,
                        },
                    ))
                    .expect("legal");
                    if let Ok(r) = sim.analyze_topology(&t) {
                        let p = &r.performance;
                        if !r.stable {
                            continue;
                        }
                        // Worst normalized margin: how much multiplicative
                        // noise the design tolerates.
                        let m_pm = (p.pm.value() - 55.0) / 55.0;
                        let m_gbw = (p.gbw.value() - 5e6) / 5e6;
                        let m_pow = (250e-6 - p.power.value()) / 250e-6;
                        let m_gain = (p.gain.value() - 85.0) / 85.0;
                        let worst = m_pm.min(m_gbw).min(m_pow).min(m_gain);
                        rows.push((
                            worst,
                            format!("gbw={gbw:.1e} k3={k3} cm1f={cm1f} cm2f={cm2f} -> {} worst-margin {worst:.3}", p),
                        ));
                    }
                }
            }
        }
    }
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    for (_, line) in rows.iter().take(5) {
        println!("{line}");
    }
}
