//! Simulator kernels: full topology analysis (the Table 3 inner loop),
//! a single AC sweep, and pole/zero extraction.

use artisan_circuit::Topology;
use artisan_sim::ac::{sweep, SweepConfig};
use artisan_sim::mna::MnaSystem;
use artisan_sim::poles::{pole_zero, PoleZeroConfig};
use artisan_sim::Simulator;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_analyze(c: &mut Criterion) {
    let nmc = Topology::nmc_example();
    let dfc = Topology::dfc_example();
    let mut sim = Simulator::new();
    c.bench_function("analyze_topology/nmc", |b| {
        b.iter(|| black_box(sim.analyze_topology(black_box(&nmc)).expect("analyzes")))
    });
    c.bench_function("analyze_topology/dfc_1nF", |b| {
        b.iter(|| black_box(sim.analyze_topology(black_box(&dfc)).expect("analyzes")))
    });
}

fn bench_sweep(c: &mut Criterion) {
    let netlist = Topology::nmc_example().elaborate().expect("valid");
    let sys = MnaSystem::new(&netlist).expect("builds");
    c.bench_function("ac_sweep/440pts", |b| {
        b.iter(|| black_box(sweep(&sys, &SweepConfig::default()).expect("sweeps")))
    });
}

fn bench_poles(c: &mut Criterion) {
    let netlist = Topology::nmc_example().elaborate().expect("valid");
    let sys = MnaSystem::new(&netlist).expect("builds");
    c.bench_function("pole_zero/nmc", |b| {
        b.iter(|| {
            black_box(pole_zero(&sys, &netlist, &PoleZeroConfig::default()).expect("extracts"))
        })
    });
}

criterion_group!(benches, bench_analyze, bench_sweep, bench_poles);
criterion_main!(benches);
