//! Polynomial root finding (Durand–Kerner with Newton polishing) across
//! the degrees circuit determinants produce.

use artisan_math::{Complex64, Polynomial};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_roots(c: &mut Criterion) {
    for degree in [3usize, 6, 10] {
        let roots: Vec<Complex64> = (0..degree)
            .map(|k| Complex64::new(-(10f64.powi(k as i32 % 7 + 1)), (k as f64) * 3.0))
            .collect();
        let poly = Polynomial::from_roots(&roots);
        c.bench_function(&format!("durand_kerner/deg{degree}"), |b| {
            b.iter(|| black_box(poly.roots(1e-10, 4000).expect("converges")))
        });
    }
}

criterion_group!(benches, bench_roots);
criterion_main!(benches);
