//! Dataset construction (the Table 1 pipeline): NetlistTuple sampling +
//! annotation, DesignQA rendering, augmentation, and a full tiny build.

use artisan_circuit::sample::{sample_topology, SampleRanges};
use artisan_circuit::NetlistTuple;
use artisan_dataset::{augment, design_qa, DatasetConfig, OpampDataset};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_dataset(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset");
    group.sample_size(20);

    group.bench_function("netlist_tuple/sample_and_annotate", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        b.iter(|| {
            let topo = sample_topology(&mut rng, &SampleRanges::default(), 10e-12);
            black_box(NetlistTuple::from_topology(&topo))
        })
    });

    group.bench_function("design_qa/render_document", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        b.iter(|| {
            let target = design_qa::sample_target(&mut rng);
            black_box(design_qa::nmc_design_document(&target))
        })
    });

    group.bench_function("augment/paraphrase_x3", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let doc = "The opamp uses a large Miller capacitor. The designer controls \
                   the dominant pole. This approach improves the phase margin.";
        b.iter(|| black_box(augment::augment(doc, 3, &mut rng)))
    });

    group.bench_function("build/tiny_config", |b| {
        b.iter(|| black_box(OpampDataset::build(&DatasetConfig::tiny(), 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_dataset);
criterion_main!(benches);
