//! Gaussian-process kernels — the BOBO inner loop's cost drivers: fit
//! (Cholesky) and posterior prediction at the sizes the sliding window
//! produces.

use artisan_opt::gp::{GaussianProcess, GpHyperParams};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn make_data(n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().map(|v| (4.0 * v).sin()).sum::<f64>())
        .collect();
    (xs, ys)
}

fn bench_gp(c: &mut Criterion) {
    for n in [50usize, 160] {
        let (xs, ys) = make_data(n, 34);
        c.bench_function(&format!("gp/fit_n{n}_d34"), |b| {
            b.iter(|| {
                black_box(
                    GaussianProcess::fit(black_box(&xs), black_box(&ys), GpHyperParams::default())
                        .expect("fits"),
                )
            })
        });
        let gp = GaussianProcess::fit(&xs, &ys, GpHyperParams::default()).expect("fits");
        let query = vec![0.5; 34];
        c.bench_function(&format!("gp/predict_n{n}_d34"), |b| {
            b.iter(|| black_box(gp.predict(black_box(&query))))
        });
    }
}

criterion_group!(benches, bench_gp);
criterion_main!(benches);
