//! Language-model substrate kernels: BPE training/encoding, n-gram
//! perplexity, and retrieval queries.

use artisan_dataset::corpus::generate_corpus;
use artisan_llm::{BpeTokenizer, NgramLm, TfIdfIndex};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_llm(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let docs = generate_corpus(&mut rng, 30);
    let refs: Vec<&str> = docs.iter().map(String::as_str).collect();

    let mut group = c.benchmark_group("llm");
    group.sample_size(10);
    group.bench_function("bpe/train_30docs_1k_vocab", |b| {
        b.iter(|| black_box(BpeTokenizer::train(black_box(&refs), 1000)))
    });

    let tok = BpeTokenizer::train(&refs, 1000);
    group.bench_function("bpe/encode_doc", |b| {
        b.iter(|| black_box(tok.encode(black_box(&docs[0]))))
    });

    let mut lm = NgramLm::new(3, tok.vocab_size() + 1);
    for d in &docs {
        lm.observe(&tok.encode(d));
    }
    let probe = tok.encode(&docs[1]);
    group.bench_function("ngram/perplexity_doc", |b| {
        b.iter(|| black_box(lm.perplexity(black_box(&probe))))
    });

    let mut idx = TfIdfIndex::new();
    for d in &docs {
        idx.add_document(d);
    }
    idx.finalize();
    group.bench_function("tfidf/query_top5", |b| {
        b.iter(|| black_box(idx.query("miller compensation dominant pole", 5)))
    });
    group.finish();
}

criterion_group!(benches, bench_llm);
criterion_main!(benches);
