//! The parallel simulation engine's kernels: cached G/C-split assembly
//! vs the legacy per-point element walk, workspace-reusing solves vs
//! per-point allocation, and the AC sweep at several worker counts.

use artisan_circuit::Topology;
use artisan_math::lu::LuDecomposition;
use artisan_math::{Complex64, ThreadPool};
use artisan_sim::ac::{sweep_with_pool, SweepConfig};
use artisan_sim::mna::MnaSystem;
use criterion::{criterion_group, criterion_main, Criterion};
use std::f64::consts::PI;
use std::hint::black_box;

fn nmc_system() -> (MnaSystem, Vec<f64>) {
    let netlist = Topology::nmc_example().elaborate().expect("valid");
    let sys = MnaSystem::new(&netlist).expect("builds");
    let freqs = SweepConfig::default().frequencies().expect("grid");
    (sys, freqs)
}

/// Pure assembly: Y(s) + rhs(s) over the whole default grid, cached
/// fused scale-add vs the legacy element walk.
fn bench_assembly(c: &mut Criterion) {
    let (sys, freqs) = nmc_system();
    c.bench_function("assemble/cached_gc_split", |b| {
        b.iter(|| {
            for &f in &freqs {
                black_box(
                    sys.assemble(Complex64::jomega(2.0 * PI * f))
                        .expect("assembles"),
                );
            }
        })
    });
    c.bench_function("assemble/legacy_walk", |b| {
        b.iter(|| {
            for &f in &freqs {
                black_box(
                    sys.assemble_legacy(Complex64::jomega(2.0 * PI * f))
                        .expect("assembles"),
                );
            }
        })
    });
}

/// Full per-point solves over the grid: one reused workspace vs the
/// legacy walk + a fresh LU allocation per point.
fn bench_solve(c: &mut Criterion) {
    let (sys, freqs) = nmc_system();
    c.bench_function("sweep_solve/cached_workspace", |b| {
        b.iter(|| {
            let mut ws = sys.workspace();
            for &f in &freqs {
                black_box(
                    sys.transfer_with(Complex64::jomega(2.0 * PI * f), &mut ws)
                        .expect("solves"),
                );
            }
        })
    });
    c.bench_function("sweep_solve/legacy_alloc_per_point", |b| {
        b.iter(|| {
            for &f in &freqs {
                let (y, rhs) = sys
                    .assemble_legacy(Complex64::jomega(2.0 * PI * f))
                    .expect("assembles");
                let lu = LuDecomposition::new(y).expect("factors");
                black_box(lu.solve(&rhs).expect("solves"));
            }
        })
    });
}

/// The whole sweep (solves + phase unwrap) at pinned worker counts.
fn bench_sweep_workers(c: &mut Criterion) {
    let (sys, _) = nmc_system();
    let cfg = SweepConfig::default();
    for workers in [1usize, 2, 4] {
        let pool = ThreadPool::with_workers(workers);
        c.bench_function(&format!("ac_sweep/workers_{workers}"), |b| {
            b.iter(|| black_box(sweep_with_pool(&sys, &cfg, &pool).expect("sweeps")))
        });
    }
}

criterion_group!(benches, bench_assembly, bench_solve, bench_sweep_workers);
criterion_main!(benches);
