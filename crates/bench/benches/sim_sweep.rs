//! The parallel simulation engine's kernels: cached G/C-split assembly
//! vs the legacy per-point element walk, workspace-reusing solves vs
//! per-point allocation, the AC sweep at several worker counts, the
//! batched candidate fan-out vs the serial analysis loop, and the
//! content-addressed cache (miss vs hit).

use artisan_bench::netgen;
use artisan_circuit::sample::{sample_topology, SampleRanges};
use artisan_circuit::Topology;
use artisan_math::lu::LuDecomposition;
use artisan_math::{Complex64, ThreadPool};
use artisan_sim::ac::{sweep_with_pool, SweepConfig};
use artisan_sim::mna::{MnaMode, MnaSystem};
use artisan_sim::{CachedSim, SimBackend, SimCache, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;
use std::hint::black_box;
use std::sync::Arc;

fn nmc_system() -> (MnaSystem, Vec<f64>) {
    let netlist = Topology::nmc_example().elaborate().expect("valid");
    let sys = MnaSystem::new(&netlist).expect("builds");
    let freqs = SweepConfig::default().frequencies().expect("grid");
    (sys, freqs)
}

/// Pure assembly: Y(s) + rhs(s) over the whole default grid, cached
/// fused scale-add vs the legacy element walk.
fn bench_assembly(c: &mut Criterion) {
    let (sys, freqs) = nmc_system();
    c.bench_function("assemble/cached_gc_split", |b| {
        b.iter(|| {
            for &f in &freqs {
                black_box(
                    sys.assemble(Complex64::jomega(2.0 * PI * f))
                        .expect("assembles"),
                );
            }
        })
    });
    c.bench_function("assemble/legacy_walk", |b| {
        b.iter(|| {
            for &f in &freqs {
                black_box(
                    sys.assemble_legacy(Complex64::jomega(2.0 * PI * f))
                        .expect("assembles"),
                );
            }
        })
    });
}

/// Full per-point solves over the grid: one reused workspace vs the
/// legacy walk + a fresh LU allocation per point.
fn bench_solve(c: &mut Criterion) {
    let (sys, freqs) = nmc_system();
    c.bench_function("sweep_solve/cached_workspace", |b| {
        b.iter(|| {
            let mut ws = sys.workspace();
            for &f in &freqs {
                black_box(
                    sys.transfer_with(Complex64::jomega(2.0 * PI * f), &mut ws)
                        .expect("solves"),
                );
            }
        })
    });
    c.bench_function("sweep_solve/legacy_alloc_per_point", |b| {
        b.iter(|| {
            for &f in &freqs {
                let (y, rhs) = sys
                    .assemble_legacy(Complex64::jomega(2.0 * PI * f))
                    .expect("assembles");
                let lu = LuDecomposition::new(y).expect("factors");
                black_box(lu.solve(&rhs).expect("solves"));
            }
        })
    });
}

/// The whole sweep (solves + phase unwrap) at pinned worker counts.
fn bench_sweep_workers(c: &mut Criterion) {
    let (sys, _) = nmc_system();
    let cfg = SweepConfig::default();
    for workers in [1usize, 2, 4] {
        let pool = ThreadPool::with_workers(workers);
        c.bench_function(&format!("ac_sweep/workers_{workers}"), |b| {
            b.iter(|| black_box(sweep_with_pool(&sys, &cfg, &pool).expect("sweeps")))
        });
    }
}

/// The candidate batch (sibling-scoring / optimizer-DoE shape): the
/// serial analysis loop vs `analyze_batch` at pinned worker counts.
fn bench_batch_workers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut topos = vec![Topology::nmc_example(), Topology::dfc_example()];
    topos.extend((0..6).map(|_| sample_topology(&mut rng, &SampleRanges::default(), 10e-12)));
    c.bench_function("analyze_batch/serial_loop", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            for t in &topos {
                black_box(sim.analyze_topology(t).ok());
            }
        })
    });
    for workers in [1usize, 2, 4] {
        let pool = ThreadPool::with_workers(workers);
        c.bench_function(&format!("analyze_batch/workers_{workers}"), |b| {
            b.iter(|| {
                let mut sim = Simulator::new();
                black_box(sim.analyze_batch_with_pool(&topos, &pool));
            })
        });
    }
}

/// The sparse MNA tier on the netgen gain ladders: forced dense vs
/// forced sparse per-point solves across the dense/sparse crossover
/// (dim 8 stays dense territory; 50 and 120 are where the CSR +
/// symbolic-LU path pays).
fn bench_sparse_crossover(c: &mut Criterion) {
    let freqs = SweepConfig {
        f_start: 1.0,
        f_stop: 1e8,
        points_per_decade: 8,
    }
    .frequencies()
    .expect("grid");
    for dim in [8usize, 50, 120] {
        let ladder = netgen::ladder(dim);
        for (label, mode) in [("dense", MnaMode::Dense), ("sparse", MnaMode::Sparse)] {
            let sys = MnaSystem::with_mode(&ladder, mode).expect("builds");
            let mut ws = sys.workspace();
            c.bench_function(&format!("sparse_crossover/dim_{dim}/{label}"), |b| {
                b.iter(|| {
                    for &f in &freqs {
                        black_box(
                            sys.transfer_with(Complex64::jomega(2.0 * PI * f), &mut ws)
                                .expect("solves"),
                        );
                    }
                })
            });
        }
    }
}

/// The content-addressed cache: a full analysis (miss) vs a memoized
/// hand-back (hit) of the identical topology.
fn bench_sim_cache(c: &mut Criterion) {
    let topo = Topology::nmc_example();
    c.bench_function("sim_cache/miss_full_analysis", |b| {
        b.iter(|| {
            let mut sim = CachedSim::new(Simulator::new(), SimCache::shared(16));
            black_box(sim.analyze_topology(&topo).expect("analyzes"));
        })
    });
    let cache = SimCache::shared(16);
    let mut warm = CachedSim::new(Simulator::new(), Arc::clone(&cache));
    warm.analyze_topology(&topo).expect("warms the cache");
    c.bench_function("sim_cache/hit_memoized", |b| {
        b.iter(|| {
            black_box(warm.analyze_topology(&topo).expect("hits"));
        })
    });
    assert!(cache.stats().hits > 0, "hit leg never hit the cache");
}

/// The persistent snapshot: serializing a populated cache to the
/// version-1 byte format and restoring it, as the warm-start path does
/// once per process.
fn bench_snapshot(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let cache = SimCache::shared(256);
    let mut sim = CachedSim::new(Simulator::new(), Arc::clone(&cache));
    let mut filled = 0usize;
    while filled < 32 {
        let topo = sample_topology(&mut rng, &SampleRanges::default(), 10e-12);
        if sim.analyze_topology(&topo).is_ok() {
            filled += 1;
        }
    }
    let entries = cache.len();
    assert!(entries > 0, "snapshot bench cache stayed empty");
    c.bench_function("snapshot/save_bytes", |b| {
        b.iter(|| black_box(cache.snapshot_bytes(0)))
    });
    let bytes = cache.snapshot_bytes(0);
    c.bench_function("snapshot/load_bytes", |b| {
        b.iter(|| {
            let (loaded, outcome) = SimCache::from_snapshot_bytes(&bytes, 256, 0);
            assert!(outcome.warning.is_none());
            black_box(loaded);
        })
    });
}

criterion_group!(
    benches,
    bench_assembly,
    bench_solve,
    bench_sweep_workers,
    bench_batch_workers,
    bench_sparse_crossover,
    bench_sim_cache,
    bench_snapshot
);
criterion_main!(benches);
