//! The DesignQA dataset (§3.3.2): eight-step design documents in
//! question–answer format.
//!
//! The paper engages human experts to annotate design documents, then
//! trains Artisan-LLM to answer each step's question. Here the documents
//! are rendered from the analytic recipes of `artisan-circuit::design` —
//! the same textbook knowledge the experts encode — over a sampled range
//! of design targets, so every answer is numerically grounded.

use artisan_circuit::design::{dfc_parameters, nmc_parameters, DesignTarget};
use artisan_circuit::value::format_si;
use rand::Rng;

/// One question–answer pair of a design document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QaPair {
    /// The prompter's question.
    pub question: String,
    /// Artisan-LLM's target answer.
    pub answer: String,
}

impl QaPair {
    /// Creates a pair.
    pub fn new(question: impl Into<String>, answer: impl Into<String>) -> Self {
        QaPair {
            question: question.into(),
            answer: answer.into(),
        }
    }

    /// Renders as training text.
    pub fn to_training_text(&self) -> String {
        format!(
            "### Question\n{}\n### Answer\n{}",
            self.question, self.answer
        )
    }
}

/// Renders the full eight-step NMC design document for one target
/// (Fig. 4's CoT flow; compare the Fig. 7 chat log).
pub fn nmc_design_document(target: &DesignTarget) -> Vec<QaPair> {
    let p = nmc_parameters(target);
    let cl = format_si(target.cl);
    let gbw = format_si(target.gbw_hz);
    vec![
        QaPair::new(
            format!(
                "Please design an opamp meeting the following specs: gain >{:.0}dB, \
                 GBW >{gbw}Hz, PM >55 degrees, power <{}W with capacitive load CL = {cl}F. \
                 Which architecture should be used?",
                target.gain_db,
                format_si(target.power_budget_w),
            ),
            "In this situation, you can use the classic nested Miller compensation (NMC) \
             architecture because it offers a good trade-off between gain, stability and \
             power for moderate capacitive loads. In the NMC architecture, two nested \
             Miller capacitors, Cm1 and Cm2, control the dominant and non-dominant poles, \
             respectively.",
        ),
        QaPair::new(
            "Based on the process, please analyze the zero-pole distributions.",
            "Under the Miller effect of compensation capacitors Cm1 and Cm2, the transfer \
             function has a dominant pole p1 = 1/(2*pi*Cm1*gm2*gm3*Ro1*Ro2*(Ro3||RL)), a \
             first non-dominant pole set by gm2/Cm2, and an output pole set by gm3/CL. \
             There is also a right-half-plane zero from the feedforward path through Cm1.",
        ),
        QaPair::new(
            "How should these poles be allocated in an NMC opamp?",
            "We set p1 < GBW < p2 < p3 to build a single-pole system within the frequency \
             range from 0 to GBW. Since Av = gm1*gm2*gm3*Ro1*Ro2*(Ro3||RL), we have \
             GBW = Av*p1 = gm1/(2*pi*Cm1). According to the Butterworth methodology, we set \
             GBW:p2:p3 = 1:2:4 to ensure a maximally flat response with about 60 degrees of \
             phase margin.",
        ),
        QaPair::new(
            "Please solve the main design parameters from these equations.",
            format!(
                "From the Butterworth allocation with GBW = {gbw}Hz and CL = {cl}F: \
                 gm3 = 8*pi*GBW*CL = {}S. Taking Cm1 = {}F and Cm2 = {}F, we get \
                 gm1 = gm3*Cm1/(4*CL) = {}S and gm2 = gm3*Cm2/(2*CL) = {}S.",
                format_si(p.gm3.value()),
                format_si(p.cm1.value()),
                format_si(p.cm2.value()),
                format_si(p.gm1.value()),
                format_si(p.gm2.value()),
            ),
        ),
        QaPair::new(
            "How should the stage gains be allocated to meet the DC gain spec?",
            format!(
                "The DC gain is the product of the stage intrinsic gains. For a {:.0}dB \
                 requirement, allocate intrinsic gains so their product exceeds the spec \
                 with margin — a cascoded first stage when the requirement is above 105dB, \
                 a simple mirror-loaded stage otherwise.",
                target.gain_db,
            ),
        ),
        QaPair::new(
            "Please verify the static power against the budget.",
            format!(
                "With the gm/Id methodology at gm/Id = 15, the bias current is \
                 (2*gm1 + gm2 + gm3)/15 including the input mirror branch, and power is \
                 1.8V times 1.3 bias overhead times that current. For these parameters the \
                 estimate is {}W against the {}W budget.",
                format_si(1.8 * 1.3 * (2.0 * p.gm1.value() + p.gm2.value() + p.gm3.value()) / 15.0),
                format_si(target.power_budget_w),
            ),
        ),
        QaPair::new(
            "Design completed. Please give the final netlist.",
            format!(
                "The final behavioural netlist instantiates three VCCS stages with \
                 gm1 = {}S, gm2 = {}S, gm3 = {}S, the nested Miller capacitors \
                 Cm1 = {}F (output to first-stage output) and Cm2 = {}F (output to \
                 second-stage output), and the load RL = {}Ohm, CL = {cl}F.",
                format_si(p.gm1.value()),
                format_si(p.gm2.value()),
                format_si(p.gm3.value()),
                format_si(p.cm1.value()),
                format_si(p.cm2.value()),
                format_si(target.rl),
            ),
        ),
        QaPair::new(
            "How is the design verified?",
            "Run an AC analysis: read the DC gain at low frequency, find the unity-gain \
             crossing for GBW, read the phase margin at the crossing, and compute static \
             power from the bias currents. All four metrics must clear the specification \
             strictly.",
        ),
    ]
}

/// Renders the large-load modification document (the Q9/A9 exchange).
pub fn dfc_modification_document(target: &DesignTarget) -> Vec<QaPair> {
    let p = dfc_parameters(target);
    vec![
        QaPair::new(
            format!(
                "When CL = {}F, the NMC design suffers from excessive output-stage \
                 power or instability. How should the topology be modified?",
                format_si(target.cl),
            ),
            format!(
                "The NMC architecture fails to drive the large CL because the output-stage \
                 transconductance must scale linearly with the load. We can add a \
                 damping-factor-control (DFC) block with a gain stage gm4 = {}S and a \
                 feedback capacitor Cm3 = {}F at the first-stage output. The DFC block \
                 functions as a frequency-dependent capacitor that damps the non-dominant \
                 complex pole pair. Besides, the inner-loop Miller compensation capacitor \
                 Cm2 should be cancelled because the damping path replaces its role. The \
                 output stage then only needs gm3 = {}S, independent of CL.",
                format_si(p.gm4.value()),
                format_si(p.cm3.value()),
                format_si(p.gm3.value()),
            ),
        ),
        QaPair::new(
            "Please give the modified netlist.",
            format!(
                "The modified netlist keeps the single outer Miller capacitor \
                 Cm1 = {}F, removes Cm2, and attaches the DFC block (gm4 = {}S, \
                 Cm3 = {}F) at the first-stage output; the stages become gm1 = {}S, \
                 gm2 = {}S, gm3 = {}S.",
                format_si(p.cm1.value()),
                format_si(p.gm4.value()),
                format_si(p.cm3.value()),
                format_si(p.gm1.value()),
                format_si(p.gm2.value()),
                format_si(p.gm3.value()),
            ),
        ),
    ]
}

/// Samples a design target in the Table 2 envelope.
pub fn sample_target<R: Rng + ?Sized>(rng: &mut R) -> DesignTarget {
    let cl = [10e-12, 10e-12, 10e-12, 100e-12, 1e-9][rng.gen_range(0..5)];
    DesignTarget {
        gbw_hz: artisan_circuit::sample::log_uniform(rng, 0.5e6, 8e6),
        cl,
        rl: 1e6,
        gain_db: [85.0, 95.0, 110.0][rng.gen_range(0..3)],
        power_budget_w: [50e-6, 250e-6][rng.gen_range(0..2)],
    }
}

/// Generates `count` full design documents (NMC plus, for large loads,
/// the DFC modification), flattened to QA pairs.
pub fn generate_design_qa<R: Rng + ?Sized>(rng: &mut R, count: usize) -> Vec<QaPair> {
    let mut out = Vec::new();
    for _ in 0..count {
        let target = sample_target(rng);
        out.extend(nmc_design_document(&target));
        if target.cl > 100e-12 {
            out.extend(dfc_modification_document(&target));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g1() -> DesignTarget {
        DesignTarget {
            gbw_hz: 1e6,
            cl: 10e-12,
            rl: 1e6,
            gain_db: 85.0,
            power_budget_w: 250e-6,
        }
    }

    #[test]
    fn nmc_document_has_eight_steps() {
        let doc = nmc_design_document(&g1());
        assert_eq!(doc.len(), 8);
        assert!(doc[0].answer.contains("nested Miller"));
        assert!(doc[2].answer.contains("1:2:4"));
        // The worked example's numbers appear in the parameter step
        // (gm1 = 25.1 µS from gm1 = 2π·GBW·Cm1; gm3 carries the recipe's
        // pole-spread safety boost on top of 251.2 µS).
        assert!(doc[3].answer.contains("25.1"), "{}", doc[3].answer);
        assert!(doc[3].answer.contains("Cm1 = 4pF"), "{}", doc[3].answer);
        assert!(doc[6].answer.contains("netlist"));
    }

    #[test]
    fn dfc_document_prescribes_modification() {
        let target = DesignTarget { cl: 1e-9, ..g1() };
        let doc = dfc_modification_document(&target);
        assert_eq!(doc.len(), 2);
        assert!(doc[0].answer.contains("damping-factor-control"));
        assert!(doc[0].answer.contains("Cm2 should be cancelled"));
    }

    #[test]
    fn generated_qa_is_seeded_and_sized() {
        let a = generate_design_qa(&mut StdRng::seed_from_u64(1), 10);
        let b = generate_design_qa(&mut StdRng::seed_from_u64(1), 10);
        assert_eq!(a, b);
        assert!(a.len() >= 80); // ≥ 8 pairs per document
    }

    #[test]
    fn training_text_layout() {
        let t = QaPair::new("q?", "a.").to_training_text();
        assert!(t.contains("### Question"));
        assert!(t.contains("### Answer"));
    }

    #[test]
    fn large_load_documents_include_modification() {
        let mut rng = StdRng::seed_from_u64(9);
        let pairs = generate_design_qa(&mut rng, 40);
        assert!(
            pairs
                .iter()
                .any(|p| p.answer.contains("damping-factor-control")),
            "no DFC documents sampled"
        );
    }
}
