//! Table 1 regeneration: sample and token accounting per dataset split.
//!
//! Token counts use a BPE tokenizer trained on a sample of the corpus —
//! the same accounting unit as the paper's "Tokens (M)" column. Because
//! the generators run at a configurable scale factor, the table reports
//! both the measured counts and the full-scale extrapolation.

use crate::builder::{DatasetConfig, OpampDataset};
use artisan_llm::BpeTokenizer;
use std::fmt;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Split name ("Collected corpus", "NetlistTuple", …).
    pub name: &'static str,
    /// Training stage ("Pre-training" or "Fine-tuning").
    pub stage: &'static str,
    /// Measured sample count at the build scale.
    pub samples: usize,
    /// Measured token count at the build scale.
    pub tokens: usize,
}

/// The assembled Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Rows in paper order.
    pub rows: Vec<DatasetStats>,
    /// The scale divisor relative to the paper's counts.
    pub scale: usize,
}

impl Table1 {
    /// Builds the dataset at `1/scale` of the paper's size and measures
    /// it.
    pub fn measure(scale: usize, seed: u64) -> Table1 {
        let config = DatasetConfig::paper_scaled(scale);
        let ds = OpampDataset::build(&config, seed);

        // Train the token accountant on a corpus sample.
        let sample: Vec<&str> = ds.corpus.iter().take(20).map(String::as_str).collect();
        let tok = BpeTokenizer::train(&sample, 2000);

        let count_docs =
            |docs: &[String]| -> usize { docs.iter().map(|d| tok.count_tokens(d)).sum() };
        let corpus_tokens = count_docs(&ds.corpus);
        let tuple_tokens = count_docs(&ds.netlist_tuple_docs);
        let alpaca_tokens: usize = ds
            .alpaca
            .iter()
            .map(|(q, a)| tok.count_tokens(q) + tok.count_tokens(a))
            .sum();
        let qa_tokens: usize = ds
            .design_qa
            .iter()
            .map(|p| tok.count_tokens(&p.to_training_text()))
            .sum();

        Table1 {
            rows: vec![
                DatasetStats {
                    name: "Collected corpus",
                    stage: "Pre-training",
                    samples: ds.corpus.len(),
                    tokens: corpus_tokens,
                },
                DatasetStats {
                    name: "NetlistTuple",
                    stage: "Pre-training",
                    samples: ds.netlist_tuple_docs.len(),
                    tokens: tuple_tokens,
                },
                DatasetStats {
                    name: "Alpaca dataset",
                    stage: "Fine-tuning",
                    samples: ds.alpaca.len(),
                    tokens: alpaca_tokens,
                },
                DatasetStats {
                    name: "DesignQA",
                    stage: "Fine-tuning",
                    samples: ds.design_qa.len(),
                    tokens: qa_tokens,
                },
            ],
            scale,
        }
    }

    /// Total samples/tokens for one stage.
    pub fn stage_total(&self, stage: &str) -> (usize, usize) {
        self.rows
            .iter()
            .filter(|r| r.stage == stage)
            .fold((0, 0), |(s, t), r| (s + r.samples, t + r.tokens))
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 1 (measured at 1/{} of the paper's scale; extrapolated in parentheses)",
            self.scale
        )?;
        writeln!(
            f,
            "{:<14} {:<18} {:>12} {:>16}",
            "Stage", "Name", "Samples", "Tokens"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:<18} {:>6} ({:>6}k) {:>8} ({:>5}M)",
                r.stage,
                r.name,
                r.samples,
                r.samples * self.scale / 1000,
                r.tokens,
                r.tokens * self.scale / 1_000_000,
            )?;
        }
        for stage in ["Pre-training", "Fine-tuning"] {
            let (s, t) = self.stage_total(stage);
            writeln!(
                f,
                "{:<14} {:<18} {:>6} ({:>6}k) {:>8} ({:>5}M)",
                stage,
                "Total",
                s,
                s * self.scale / 1000,
                t,
                t * self.scale / 1_000_000,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_rows_and_positive_counts() {
        let t = Table1::measure(2000, 7);
        assert_eq!(t.rows.len(), 4);
        for r in &t.rows {
            assert!(r.samples > 0, "{} empty", r.name);
            assert!(r.tokens > 0, "{} token-less", r.name);
        }
    }

    #[test]
    fn stage_totals_add_up() {
        let t = Table1::measure(2000, 7);
        let (ps, pt) = t.stage_total("Pre-training");
        assert_eq!(ps, t.rows[0].samples + t.rows[1].samples);
        assert_eq!(pt, t.rows[0].tokens + t.rows[1].tokens);
    }

    #[test]
    fn corpus_dominates_pretraining_tokens() {
        // Table 1's shape: the collected corpus carries most pre-training
        // tokens (142 M of 165 M).
        let t = Table1::measure(1000, 7);
        assert!(t.rows[0].tokens > t.rows[1].tokens);
    }

    #[test]
    fn display_renders_all_rows() {
        let t = Table1::measure(4000, 7);
        let s = t.to_string();
        for needle in [
            "Collected corpus",
            "NetlistTuple",
            "Alpaca",
            "DesignQA",
            "Total",
        ] {
            assert!(s.contains(needle), "missing {needle}:\n{s}");
        }
    }

    #[test]
    fn measurement_is_deterministic() {
        assert_eq!(Table1::measure(4000, 3), Table1::measure(4000, 3));
    }
}
