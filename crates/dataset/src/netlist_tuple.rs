//! The NetlistTuple dataset generator (§3.2.2).
//!
//! Samples legal topologies from the 25-type design space, elaborates
//! them, and pairs each netlist with its rule-based structural
//! description — the bidirectional representation the Artisan-LLM aligns
//! on.

use artisan_circuit::sample::{sample_topology, SampleRanges};
use artisan_circuit::NetlistTuple;
use rand::Rng;

/// Generates `count` netlist tuples. Load capacitances are drawn from
/// the testbench-relevant range (1 pF – 1 nF, log-uniform).
pub fn generate_tuples<R: Rng + ?Sized>(rng: &mut R, count: usize) -> Vec<NetlistTuple> {
    let ranges = SampleRanges::default();
    (0..count)
        .map(|_| {
            let cl = artisan_circuit::sample::log_uniform(rng, 1e-12, 1e-9);
            let topo = sample_topology(rng, &ranges, cl);
            NetlistTuple::from_topology(&topo)
        })
        .collect()
}

/// Renders tuples as pre-training documents (description + netlist).
pub fn tuples_as_documents(tuples: &[NetlistTuple]) -> Vec<String> {
    tuples.iter().map(|t| t.to_training_text()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tuples_have_both_halves() {
        let mut rng = StdRng::seed_from_u64(3);
        let tuples = generate_tuples(&mut rng, 25);
        assert_eq!(tuples.len(), 25);
        for t in &tuples {
            assert!(t.netlist_text().contains("G1"));
            assert!(t.description().contains("three-stage"));
        }
    }

    #[test]
    fn documents_render_training_layout() {
        let mut rng = StdRng::seed_from_u64(4);
        let docs = tuples_as_documents(&generate_tuples(&mut rng, 5));
        for d in &docs {
            assert!(d.contains("### Circuit description"));
            assert!(d.contains("### Netlist"));
        }
    }

    #[test]
    fn sampling_is_diverse() {
        let mut rng = StdRng::seed_from_u64(5);
        let tuples = generate_tuples(&mut rng, 50);
        let distinct: std::collections::BTreeSet<&str> =
            tuples.iter().map(|t| t.description()).collect();
        assert!(distinct.len() > 40, "only {} distinct", distinct.len());
    }
}
