//! Rule-based data augmentation — the substitute for the paper's
//! ChatGPT-API rephrasing (§3.4, "Data argumentation").
//!
//! Two seeded transformations diversify the templated text without
//! touching its technical content:
//!
//! 1. **synonym substitution** over a domain-safe lexicon,
//! 2. **sentence reordering** of interior sentences (first and last stay
//!    put, preserving discourse structure).

use rand::seq::SliceRandom;
use rand::Rng;

/// Domain-safe synonym groups: any member may replace any other.
const SYNONYMS: &[&[&str]] = &[
    &["opamp", "operational amplifier", "amplifier"],
    &["uses", "employs", "adopts"],
    &["large", "big", "substantial"],
    &["small", "little", "compact"],
    &["controls", "sets", "governs"],
    &["improves", "enhances", "boosts"],
    &["requirement", "specification", "target"],
    &["widely", "commonly", "frequently"],
    &["approach", "technique", "method"],
    &["designer", "engineer"],
];

/// Applies synonym substitution with probability `rate` per replaceable
/// word.
#[allow(clippy::expect_used)] // the const synonym groups are non-empty
pub fn substitute_synonyms<R: Rng + ?Sized>(text: &str, rate: f64, rng: &mut R) -> String {
    let mut out: Vec<String> = Vec::new();
    for word in text.split(' ') {
        let lower = word.to_lowercase();
        let stripped: String = lower
            .trim_end_matches(|c: char| !c.is_alphanumeric())
            .to_string();
        let mut replaced = None;
        if rng.gen_bool(rate.clamp(0.0, 1.0)) {
            for group in SYNONYMS {
                if group.contains(&stripped.as_str()) {
                    let pick = group.choose(rng).expect("non-empty group");
                    if *pick != stripped {
                        let tail: String = lower.chars().skip(stripped.len()).collect();
                        replaced = Some(format!("{pick}{tail}"));
                    }
                    break;
                }
            }
        }
        out.push(replaced.unwrap_or_else(|| word.to_string()));
    }
    out.join(" ")
}

/// Shuffles the interior sentences of a document (split on `. `).
pub fn reorder_sentences<R: Rng + ?Sized>(text: &str, rng: &mut R) -> String {
    let mut sentences: Vec<&str> = text.split(". ").collect();
    if sentences.len() > 3 {
        let len = sentences.len();
        let interior = &mut sentences[1..len - 1];
        interior.shuffle(rng);
    }
    sentences.join(". ")
}

/// Produces `copies` augmented variants of a document (the original is
/// not included).
pub fn augment<R: Rng + ?Sized>(text: &str, copies: usize, rng: &mut R) -> Vec<String> {
    (0..copies)
        .map(|_| {
            let reordered = reorder_sentences(text, rng);
            substitute_synonyms(&reordered, 0.5, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const DOC: &str = "The opamp uses a large Miller capacitor. \
                       The designer controls the dominant pole. \
                       This approach improves the phase margin. \
                       The requirement is widely met.";

    #[test]
    fn synonyms_change_words_but_preserve_length_in_words() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = substitute_synonyms(DOC, 1.0, &mut rng);
        // "operational amplifier" may add words; compare sets loosely:
        assert_ne!(out, DOC);
        assert!(out.contains("pole")); // technical nouns untouched
    }

    #[test]
    fn zero_rate_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(substitute_synonyms(DOC, 0.0, &mut rng), DOC);
    }

    #[test]
    fn reorder_keeps_first_and_last() {
        let mut rng = StdRng::seed_from_u64(7);
        let out = reorder_sentences(DOC, &mut rng);
        assert!(out.starts_with("The opamp uses"));
        assert!(out.ends_with("widely met."));
        // Same sentence multiset.
        let mut a: Vec<&str> = DOC.split(". ").collect();
        let mut b: Vec<&str> = out.split(". ").collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn augmentation_diversifies() {
        let mut rng = StdRng::seed_from_u64(2);
        let variants = augment(DOC, 10, &mut rng);
        assert_eq!(variants.len(), 10);
        let distinct: std::collections::BTreeSet<&String> = variants.iter().collect();
        assert!(distinct.len() >= 8, "only {} distinct", distinct.len());
    }

    #[test]
    fn augmentation_is_seeded() {
        let a = augment(DOC, 3, &mut StdRng::seed_from_u64(3));
        let b = augment(DOC, 3, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn short_documents_are_not_reordered() {
        let mut rng = StdRng::seed_from_u64(4);
        let short = "One sentence. Two sentences. Three.";
        assert_eq!(reorder_sentences(short, &mut rng), short);
    }
}
