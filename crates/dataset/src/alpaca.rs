//! General instruction-following data — the stand-in for the 52 K Alpaca
//! pairs the paper mixes into fine-tuning to preserve chat ability.

use rand::seq::SliceRandom;
use rand::Rng;

const TASKS: &[(&str, &str)] = &[
    (
        "Explain the difference between a resistor and a capacitor.",
        "A resistor dissipates energy and has a frequency-independent impedance, while a \
         capacitor stores energy in an electric field and its impedance falls with frequency.",
    ),
    (
        "Summarize what an operational amplifier does.",
        "An operational amplifier amplifies the voltage difference between its two inputs \
         with very high gain, and is usually used with negative feedback.",
    ),
    (
        "List three factors to consider when choosing a power supply voltage.",
        "Device breakdown limits, required output swing, and the power budget.",
    ),
    (
        "Rewrite this sentence to be more formal: the circuit blew up.",
        "The circuit experienced a catastrophic failure.",
    ),
    (
        "Give a one-sentence definition of feedback.",
        "Feedback returns a fraction of a system's output to its input to control the \
         overall behaviour.",
    ),
    (
        "What is the purpose of a testbench?",
        "A testbench applies controlled stimuli to a circuit and measures its responses so \
         that behaviour can be verified against the specification.",
    ),
    (
        "Translate the requirement 'low power' into a measurable constraint.",
        "Specify a maximum static power draw in microwatts at the nominal supply voltage.",
    ),
    (
        "Name two trade-offs in analog design.",
        "Gain versus bandwidth, and speed versus power consumption.",
    ),
];

/// Generates `count` instruction pairs by sampling (with replacement)
/// from the task pool and numbering the variants for diversity.
#[allow(clippy::expect_used)] // the const task pool is non-empty
pub fn generate_alpaca<R: Rng + ?Sized>(rng: &mut R, count: usize) -> Vec<(String, String)> {
    (0..count)
        .map(|k| {
            let (q, a) = TASKS.choose(rng).expect("non-empty task pool");
            // Number the instruction to keep samples distinct, the way
            // instruction datasets vary phrasing across examples.
            (format!("Task {k}: {q}"), (*a).to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let pairs = generate_alpaca(&mut rng, 30);
        assert_eq!(pairs.len(), 30);
        for (q, a) in &pairs {
            assert!(!q.is_empty() && !a.is_empty());
        }
    }

    #[test]
    fn samples_are_distinct_by_numbering() {
        let mut rng = StdRng::seed_from_u64(0);
        let pairs = generate_alpaca(&mut rng, 10);
        let qs: std::collections::BTreeSet<&String> = pairs.iter().map(|(q, _)| q).collect();
        assert_eq!(qs.len(), 10);
    }
}
