//! Construction of the opamp dataset of §3.4 (Table 1).
//!
//! The paper assembles four data sources:
//!
//! | Split | Source | Samples | Tokens |
//! |---|---|---|---|
//! | pre-training | collected analog corpus | 225 k | 142 M |
//! | pre-training | NetlistTuple | 13 k | 23 M |
//! | fine-tuning | Alpaca instruction data | 52 k | 9 M |
//! | fine-tuning | DesignQA | 14 k | 16 M |
//!
//! Each source is reproduced by a seeded generator (see `DESIGN.md`'s
//! substitution table — the web-scraped corpus and the human-annotated
//! design documents become template-based generators encoding the same
//! domain knowledge):
//!
//! - [`corpus`] — analog-circuit prose in forum/tutorial/textbook
//!   registers,
//! - [`netlist_tuple`] — sampled topologies with rule-based structural
//!   annotations (the generator of §3.2.2),
//! - [`design_qa`] — eight-step design documents in QA format rendered
//!   from the analytic recipes (the encoded human expertise of §3.3.2),
//! - [`alpaca`] — general instruction-following pairs,
//! - [`augment`] — the ChatGPT-rephrasing substitute: a seeded rule-based
//!   paraphraser,
//! - [`stats`] — sample/token accounting that regenerates Table 1 at a
//!   configurable scale factor.
//!
//! # Example
//!
//! ```
//! use artisan_dataset::{DatasetConfig, OpampDataset};
//!
//! let ds = OpampDataset::build(&DatasetConfig::tiny(), 42);
//! assert!(ds.pretraining_docs() > 0);
//! assert!(ds.design_qa_pairs() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;

pub mod alpaca;
pub mod augment;
pub mod corpus;
pub mod design_qa;
pub mod netlist_tuple;
pub mod stats;

pub use builder::{DatasetConfig, OpampDataset};
pub use design_qa::QaPair;
pub use stats::{DatasetStats, Table1};
