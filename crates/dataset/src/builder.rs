use crate::alpaca::generate_alpaca;
use crate::augment::augment;
use crate::corpus::generate_corpus;
use crate::design_qa::{generate_design_qa, QaPair};
use crate::netlist_tuple::{generate_tuples, tuples_as_documents};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sizing of the four dataset sources, in raw sample counts.
///
/// The paper's full-scale counts (Table 1) are 225 k corpus documents,
/// 13 k NetlistTuples, 52 k Alpaca pairs, and 14 k DesignQA samples;
/// [`DatasetConfig::paper_scaled`] divides them by a scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetConfig {
    /// Collected-corpus documents (before augmentation).
    pub corpus_docs: usize,
    /// NetlistTuple samples (before augmentation).
    pub netlist_tuples: usize,
    /// Alpaca instruction pairs.
    pub alpaca_pairs: usize,
    /// DesignQA documents (each expands to ≥ 8 QA pairs).
    pub design_docs: usize,
    /// Augmented copies per NetlistTuple/DesignQA sample (the ChatGPT
    /// rephrasing factor; 0 disables augmentation).
    pub augment_copies: usize,
}

impl DatasetConfig {
    /// Table 1 counts divided by `scale` (minimum 1 sample per source).
    ///
    /// # Panics
    ///
    /// Panics when `scale` is zero.
    pub fn paper_scaled(scale: usize) -> Self {
        assert!(scale > 0, "scale must be positive");
        DatasetConfig {
            corpus_docs: (225_000 / scale).max(1),
            netlist_tuples: (13_000 / scale).max(1),
            alpaca_pairs: (52_000 / scale).max(1),
            design_docs: (14_000 / scale / 8).max(1),
            augment_copies: 1,
        }
    }

    /// A tiny configuration for unit tests and examples.
    pub fn tiny() -> Self {
        DatasetConfig {
            corpus_docs: 8,
            netlist_tuples: 6,
            alpaca_pairs: 10,
            design_docs: 3,
            augment_copies: 1,
        }
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        // 1/1000 of Table 1 — builds in well under a second.
        DatasetConfig::paper_scaled(1000)
    }
}

/// The assembled opamp dataset: pre-training documents and fine-tuning
/// QA pairs, mirroring Table 1's split.
#[derive(Debug, Clone)]
pub struct OpampDataset {
    /// Collected-corpus documents (pre-training).
    pub corpus: Vec<String>,
    /// NetlistTuple documents, including augmented copies (pre-training).
    pub netlist_tuple_docs: Vec<String>,
    /// Alpaca instruction pairs (fine-tuning).
    pub alpaca: Vec<(String, String)>,
    /// DesignQA pairs, including augmented copies (fine-tuning).
    pub design_qa: Vec<QaPair>,
}

impl OpampDataset {
    /// Builds the dataset deterministically from a seed.
    pub fn build(config: &DatasetConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let corpus = generate_corpus(&mut rng, config.corpus_docs);

        let tuples = generate_tuples(&mut rng, config.netlist_tuples);
        let mut netlist_tuple_docs = tuples_as_documents(&tuples);
        if config.augment_copies > 0 {
            let originals = netlist_tuple_docs.clone();
            for doc in &originals {
                netlist_tuple_docs.extend(augment(doc, config.augment_copies, &mut rng));
            }
        }

        let alpaca = generate_alpaca(&mut rng, config.alpaca_pairs);

        let mut design_qa = generate_design_qa(&mut rng, config.design_docs);
        if config.augment_copies > 0 {
            let originals = design_qa.clone();
            for pair in &originals {
                for a in augment(&pair.answer, config.augment_copies, &mut rng) {
                    design_qa.push(QaPair::new(pair.question.clone(), a));
                }
            }
        }

        OpampDataset {
            corpus,
            netlist_tuple_docs,
            alpaca,
            design_qa,
        }
    }

    /// All pre-training documents (corpus + NetlistTuple).
    pub fn pretraining_documents(&self) -> Vec<&str> {
        self.corpus
            .iter()
            .map(String::as_str)
            .chain(self.netlist_tuple_docs.iter().map(String::as_str))
            .collect()
    }

    /// All fine-tuning QA pairs (DesignQA + Alpaca), as `(q, a)` string
    /// slices.
    pub fn fine_tuning_pairs(&self) -> Vec<(&str, &str)> {
        self.design_qa
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .chain(self.alpaca.iter().map(|(q, a)| (q.as_str(), a.as_str())))
            .collect()
    }

    /// Number of pre-training documents.
    pub fn pretraining_docs(&self) -> usize {
        self.corpus.len() + self.netlist_tuple_docs.len()
    }

    /// Number of DesignQA pairs.
    pub fn design_qa_pairs(&self) -> usize {
        self.design_qa.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = OpampDataset::build(&DatasetConfig::tiny(), 1);
        let b = OpampDataset::build(&DatasetConfig::tiny(), 1);
        assert_eq!(a.corpus, b.corpus);
        assert_eq!(a.design_qa, b.design_qa);
        let c = OpampDataset::build(&DatasetConfig::tiny(), 2);
        assert_ne!(a.corpus, c.corpus);
    }

    #[test]
    fn augmentation_doubles_tuple_docs() {
        let cfg = DatasetConfig {
            augment_copies: 1,
            ..DatasetConfig::tiny()
        };
        let ds = OpampDataset::build(&cfg, 3);
        assert_eq!(ds.netlist_tuple_docs.len(), 2 * cfg.netlist_tuples);
        let no_aug = OpampDataset::build(
            &DatasetConfig {
                augment_copies: 0,
                ..cfg
            },
            3,
        );
        assert_eq!(no_aug.netlist_tuple_docs.len(), cfg.netlist_tuples);
    }

    #[test]
    fn paper_scaled_ratios_match_table1() {
        let cfg = DatasetConfig::paper_scaled(1000);
        assert_eq!(cfg.corpus_docs, 225);
        assert_eq!(cfg.netlist_tuples, 13);
        assert_eq!(cfg.alpaca_pairs, 52);
        // 14 k QA samples ≈ 14k/8 documents of ≥ 8 pairs each.
        assert_eq!(cfg.design_docs, 1);
    }

    #[test]
    fn splits_feed_the_right_stages() {
        let ds = OpampDataset::build(&DatasetConfig::tiny(), 4);
        assert_eq!(
            ds.pretraining_documents().len(),
            ds.corpus.len() + ds.netlist_tuple_docs.len()
        );
        assert_eq!(
            ds.fine_tuning_pairs().len(),
            ds.design_qa.len() + ds.alpaca.len()
        );
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        DatasetConfig::paper_scaled(0);
    }
}
