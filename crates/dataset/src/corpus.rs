//! The "collected analog circuit corpus" generator.
//!
//! The paper scrapes 142 M tokens of forum posts, tutorials, and papers.
//! This generator reproduces that source as seeded template prose in the
//! same three registers, built from a sentence pool that covers the
//! domain facts the rest of the pipeline relies on (compensation theory,
//! pole allocation, stage design, gm/Id practice).

use rand::seq::SliceRandom;
use rand::Rng;

/// Topic slots spliced into sentence templates.
const ARCHITECTURES: &[&str] = &[
    "nested Miller compensation",
    "damping-factor-control compensation",
    "single Miller compensation",
    "feedforward compensation",
    "multipath Miller compensation",
    "nested Gm-C compensation",
];

const METRICS: &[&str] = &[
    "DC gain",
    "gain-bandwidth product",
    "phase margin",
    "power consumption",
    "slew rate",
    "output swing",
];

const COMPONENTS: &[&str] = &[
    "Miller capacitor",
    "nulling resistor",
    "feedforward transconductance stage",
    "tail current source",
    "current-mirror load",
    "damping-factor-control block",
];

/// Sentence templates; `{a}` = architecture, `{m}` = metric,
/// `{c}` = component, `{n}` = a small number.
const SENTENCES: &[&str] = &[
    "The {a} architecture is widely used in three-stage operational amplifiers.",
    "A larger {c} improves the {m} at the cost of bandwidth.",
    "In {a}, the dominant pole is set by the outer {c}.",
    "Designers usually check the {m} first when the load capacitance increases.",
    "The Butterworth response places the poles at ratios of one to two to four relative to the unity-gain frequency.",
    "With a {n} pF load, the {a} approach achieves a {m} above the specification.",
    "The {c} creates a left-half-plane zero that can cancel the first non-dominant pole.",
    "When the {m} degrades, adding a {c} is a common remedy.",
    "The gm over Id methodology sizes each transistor from its inversion coefficient.",
    "A three-stage amplifier cascades an inverting input stage, a non-inverting second stage, and an inverting output stage.",
    "The unity-gain frequency equals the first-stage transconductance divided by the outer Miller capacitance.",
    "For very large capacitive loads, the {a} technique damps the non-dominant complex pole pair.",
    "Phase margin above {n} degrees keeps the step response well behaved.",
    "The output stage transconductance must scale with the load capacitance in plain nested Miller compensation.",
    "Weak inversion biasing maximizes transconductance efficiency for low-power designs.",
    "The {m} of a multistage amplifier depends on the product of the stage intrinsic gains.",
    "Simulation with an accurate small-signal model verifies the {m} before layout.",
    "Forum consensus holds that the {c} should be placed across the last two stages.",
    "A common mistake is to oversize the {c}, which wastes {m}.",
    "The transfer function of the {a} opamp has three poles and up to two zeros.",
];

/// Document registers — the three source styles the paper collects.
const PREFIXES: &[&str] = &[
    "Tutorial: understanding multistage amplifier compensation.",
    "Forum thread: help with my three-stage opamp design.",
    "Paper excerpt: frequency compensation techniques revisited.",
];

/// Generates one corpus document of roughly `sentences` sentences.
#[allow(clippy::expect_used)] // the const template pools are non-empty
pub fn generate_document<R: Rng + ?Sized>(rng: &mut R, sentences: usize) -> String {
    let mut doc = String::from(*PREFIXES.choose(rng).expect("non-empty prefix pool"));
    doc.push(' ');
    for _ in 0..sentences {
        let template = SENTENCES.choose(rng).expect("non-empty sentence pool");
        let sentence = template
            .replace("{a}", ARCHITECTURES.choose(rng).expect("pool"))
            .replace("{m}", METRICS.choose(rng).expect("pool"))
            .replace("{c}", COMPONENTS.choose(rng).expect("pool"))
            .replace("{n}", &rng.gen_range(5..1000).to_string());
        doc.push_str(&sentence);
        doc.push(' ');
    }
    doc.trim_end().to_string()
}

/// Generates `count` corpus documents with 20–40 sentences each —
/// matching the paper's ≈ 630 tokens/sample average.
pub fn generate_corpus<R: Rng + ?Sized>(rng: &mut R, count: usize) -> Vec<String> {
    (0..count)
        .map(|_| {
            let n = rng.gen_range(20..=40);
            generate_document(rng, n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn documents_are_nonempty_domain_prose() {
        let mut rng = StdRng::seed_from_u64(1);
        let docs = generate_corpus(&mut rng, 20);
        assert_eq!(docs.len(), 20);
        for d in &docs {
            assert!(d.split_whitespace().count() > 100, "too short: {d}");
        }
        // Domain vocabulary must appear across the corpus.
        let all = docs.join(" ");
        for needle in ["Miller", "pole", "transconductance", "opamp"] {
            assert!(all.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn generation_is_seeded() {
        let a = generate_corpus(&mut StdRng::seed_from_u64(5), 3);
        let b = generate_corpus(&mut StdRng::seed_from_u64(5), 3);
        assert_eq!(a, b);
        let c = generate_corpus(&mut StdRng::seed_from_u64(6), 3);
        assert_ne!(a, c);
    }

    #[test]
    fn slots_are_filled() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let d = generate_document(&mut rng, 10);
            assert!(!d.contains("{a}") && !d.contains("{m}") && !d.contains("{c}"));
            assert!(!d.contains("{n}"));
        }
    }
}
